"""Declarative fault injection for scenario runs.

A :class:`FaultSchedule` is a list of timed fault events — node
crashes and recoveries, link degradation (loss rate or capacity),
control-plane loss windows, and packet-loss bursts.  The
:class:`FaultInjector` arms the schedule on a simulator and translates
each event into the corresponding hooks on the MAC substrate, the node
stacks, the traffic sources, and the GMP engine.

``repro.faults.invariants`` provides the end-of-run packet-conservation
audit; ``repro.faults.spec`` parses the compact CLI fault syntax.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import FlowAudit, InvariantReport, audit_run
from repro.faults.schedule import (
    ControlLoss,
    FaultEvent,
    FaultSchedule,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    PacketLossBurst,
)
from repro.faults.spec import parse_fault_spec

__all__ = [
    "ControlLoss",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FlowAudit",
    "InvariantReport",
    "LinkDegrade",
    "LinkRestore",
    "NodeCrash",
    "NodeRecover",
    "PacketLossBurst",
    "audit_run",
    "parse_fault_spec",
]
