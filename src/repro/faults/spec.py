"""Compact textual fault syntax for the command line.

A spec is a semicolon-separated list of events::

    crash:NODE@T          node crash at time T
    recover:NODE@T        node recovery
    degrade:I-J@T:loss=P  link loss probability (and/or cap=PPS)
    restore:I-J@T         remove link impairments
    ctrl:P@T1-T2          drop GMP control requests with prob. P
    burst:I-J@T1-T2:loss=P  transient loss burst, auto-restored

Example::

    crash:1@20;recover:1@40;degrade:2-3@10:loss=0.5,cap=120;ctrl:0.5@10-30
"""

from __future__ import annotations

from repro.errors import FaultError
from repro.faults.schedule import (
    ControlLoss,
    FaultEvent,
    FaultSchedule,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    PacketLossBurst,
)


def _number(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise FaultError(f"bad {what} {text!r} in fault spec") from None


def _node(text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise FaultError(f"bad node id {text!r} in fault spec") from None


def _link(text: str) -> tuple[int, int]:
    i, sep, j = text.partition("-")
    if not sep:
        raise FaultError(f"bad link {text!r} in fault spec (expected I-J)")
    return (_node(i), _node(j))


def _window(text: str) -> tuple[float, float]:
    start, sep, end = text.partition("-")
    if not sep:
        raise FaultError(f"bad window {text!r} in fault spec (expected T1-T2)")
    return (_number(start, "window start"), _number(end, "window end"))


def _params(text: str) -> dict[str, float]:
    values: dict[str, float] = {}
    for item in text.split(","):
        key, sep, value = item.partition("=")
        if not sep:
            raise FaultError(f"bad parameter {item!r} in fault spec")
        values[key.strip()] = _number(value, key.strip())
    return values


def _parse_one(entry: str) -> FaultEvent:
    kind, sep, rest = entry.partition(":")
    if not sep:
        raise FaultError(f"bad fault entry {entry!r} (expected kind:...)")
    kind = kind.strip()
    if kind in ("crash", "recover"):
        target, sep, when = rest.partition("@")
        if not sep:
            raise FaultError(f"bad fault entry {entry!r} (expected node@T)")
        node = _node(target)
        at = _number(when, "time")
        return NodeCrash(at=at, node=node) if kind == "crash" else NodeRecover(
            at=at, node=node
        )
    if kind == "restore":
        target, sep, when = rest.partition("@")
        if not sep:
            raise FaultError(f"bad fault entry {entry!r} (expected I-J@T)")
        return LinkRestore(at=_number(when, "time"), link=_link(target))
    if kind == "degrade":
        target, sep, tail = rest.partition("@")
        if not sep:
            raise FaultError(
                f"bad fault entry {entry!r} (expected I-J@T:loss=P)"
            )
        when, sep, params = tail.partition(":")
        if not sep:
            raise FaultError(
                f"bad fault entry {entry!r}: degrade needs :loss= and/or :cap="
            )
        values = _params(params)
        unknown = set(values) - {"loss", "cap"}
        if unknown:
            raise FaultError(
                f"unknown degrade parameters {sorted(unknown)} in {entry!r}"
            )
        return LinkDegrade(
            at=_number(when, "time"),
            link=_link(target),
            loss_rate=values.get("loss"),
            capacity_pps=values.get("cap"),
        )
    if kind == "ctrl":
        prob_text, sep, window_text = rest.partition("@")
        if not sep:
            raise FaultError(f"bad fault entry {entry!r} (expected P@T1-T2)")
        start, end = _window(window_text)
        return ControlLoss(
            at=start, until=end, drop_prob=_number(prob_text, "probability")
        )
    if kind == "burst":
        target, sep, tail = rest.partition("@")
        if not sep:
            raise FaultError(
                f"bad fault entry {entry!r} (expected I-J@T1-T2:loss=P)"
            )
        window_text, sep, params = tail.partition(":")
        if not sep:
            raise FaultError(f"bad fault entry {entry!r}: burst needs :loss=")
        values = _params(params)
        if set(values) != {"loss"}:
            raise FaultError(f"burst takes exactly loss=P, got {params!r}")
        start, end = _window(window_text)
        return PacketLossBurst(
            at=start, until=end, link=_link(target), loss_rate=values["loss"]
        )
    raise FaultError(
        f"unknown fault kind {kind!r} (expected crash, recover, degrade, "
        "restore, ctrl, or burst)"
    )


def parse_fault_spec(spec: str) -> FaultSchedule:
    """Parse the CLI fault syntax into a validated schedule.

    Raises:
        FaultError: on any syntax or validation error.
    """
    entries = [entry.strip() for entry in spec.split(";") if entry.strip()]
    if not entries:
        raise FaultError("empty fault spec")
    return FaultSchedule([_parse_one(entry) for entry in entries])
