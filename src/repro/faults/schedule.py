"""Fault event types and the validated schedule container.

All events are frozen dataclasses keyed by an absolute simulation time
``at``.  A :class:`FaultSchedule` validates the combination — times,
probability ranges, and crash/recover pairing per node — once at
construction, so a malformed scenario fails before the simulation
starts rather than mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultError
from repro.topology.network import Link


@dataclass(frozen=True)
class FaultEvent:
    """Base: something happens at simulation time ``at``."""

    at: float


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Node ``node`` fails: radio dies mid-frame, buffered packets are
    lost, its traffic sources stop offering."""

    node: int


@dataclass(frozen=True)
class NodeRecover(FaultEvent):
    """Node ``node`` reboots with empty queues and resumes service."""

    node: int


@dataclass(frozen=True)
class LinkDegrade(FaultEvent):
    """The wireless link ``link`` degrades in both directions.

    At least one of ``loss_rate`` (per-packet loss probability) and
    ``capacity_pps`` (rate ceiling, honored only by rate-based
    substrates) must be given.
    """

    link: Link
    loss_rate: float | None = None
    capacity_pps: float | None = None


@dataclass(frozen=True)
class LinkRestore(FaultEvent):
    """Remove every injected impairment from ``link`` (both directions)."""

    link: Link


@dataclass(frozen=True)
class ControlLoss(FaultEvent):
    """Between ``at`` and ``until``, each GMP rate-adjustment request
    is lost in transit with probability ``drop_prob``."""

    until: float = 0.0
    drop_prob: float = 0.0


@dataclass(frozen=True)
class PacketLossBurst(FaultEvent):
    """Transient loss burst on ``link`` (both directions) from ``at``
    to ``until``; the link is restored to lossless afterwards."""

    until: float = 0.0
    link: Link = (0, 0)
    loss_rate: float = 0.0


class FaultSchedule:
    """An immutable, validated collection of fault events.

    Iteration yields events in time order (ties broken by declaration
    order, so a crash listed before a recovery at the same instant is
    applied first).

    Raises:
        FaultError: on negative times, probabilities outside [0, 1],
            empty windows, a `LinkDegrade` with nothing to degrade,
            unbalanced crash/recover sequences for a node, or two
            windowed faults (control loss, loss bursts on one link)
            whose windows overlap.
    """

    def __init__(self, events: list[FaultEvent] | tuple[FaultEvent, ...] = ()) -> None:
        self._events = tuple(events)
        for event in self._events:
            self._validate_event(event)
        self._validate_crash_pairing()
        self._validate_window_overlap()

    @staticmethod
    def _validate_event(event: FaultEvent) -> None:
        if not isinstance(event, FaultEvent):
            raise FaultError(f"not a FaultEvent: {event!r}")
        if event.at < 0:
            raise FaultError(f"fault time must be >= 0: {event}")
        if isinstance(event, LinkDegrade):
            if event.loss_rate is None and event.capacity_pps is None:
                raise FaultError(
                    f"LinkDegrade needs loss_rate and/or capacity_pps: {event}"
                )
            if event.loss_rate is not None and not 0.0 <= event.loss_rate <= 1.0:
                raise FaultError(f"loss_rate must be in [0, 1]: {event}")
            if event.capacity_pps is not None and event.capacity_pps <= 0:
                raise FaultError(f"capacity_pps must be positive: {event}")
        if isinstance(event, ControlLoss):
            if not 0.0 <= event.drop_prob <= 1.0:
                raise FaultError(f"drop_prob must be in [0, 1]: {event}")
            if event.until <= event.at:
                raise FaultError(f"empty control-loss window: {event}")
        if isinstance(event, PacketLossBurst):
            if not 0.0 <= event.loss_rate <= 1.0:
                raise FaultError(f"loss_rate must be in [0, 1]: {event}")
            if event.until <= event.at:
                raise FaultError(f"empty loss-burst window: {event}")

    def _validate_crash_pairing(self) -> None:
        down: set[int] = set()
        for event in self.in_order():
            if isinstance(event, NodeCrash):
                if event.node in down:
                    raise FaultError(
                        f"node {event.node} crashes at t={event.at:g} while "
                        "already down (overlapping crash windows)"
                    )
                down.add(event.node)
            elif isinstance(event, NodeRecover):
                if event.node not in down:
                    raise FaultError(
                        f"node {event.node} recovers at t={event.at:g} "
                        "without a preceding crash"
                    )
                down.discard(event.node)

    def _validate_window_overlap(self) -> None:
        """Reject windowed faults whose windows overlap on one target.

        The injector applies each window by setting state at ``at`` and
        clearing it at ``until``; two overlapping windows on the same
        target would silently clobber each other (the first ``until``
        clears the second window's effect), so the combination is a
        spec error, not a workload.
        """
        control: list[ControlLoss] = []
        bursts: dict[Link, list[PacketLossBurst]] = {}
        for event in self.in_order():
            if isinstance(event, ControlLoss):
                control.append(event)
            elif isinstance(event, PacketLossBurst):
                i, j = event.link
                key = (i, j) if i <= j else (j, i)
                bursts.setdefault(key, []).append(event)

        def check(windows: list, target: str) -> None:
            for first, second in zip(windows, windows[1:]):
                if second.at < first.until:
                    raise FaultError(
                        f"overlapping {target} windows: "
                        f"[{first.at:g}, {first.until:g}) and "
                        f"[{second.at:g}, {second.until:g})"
                    )

        check(control, "control-loss")
        for key, events in sorted(bursts.items()):
            check(events, f"loss-burst ({key[0]}-{key[1]})")

    def validate_within(self, duration: float) -> None:
        """Reject events at or windows extending past ``duration``.

        A fault scheduled beyond the run's end silently never fires —
        almost always a misconfigured scenario (e.g. a recovery the
        resilience metrics would wait for in vain) — so the scenario
        runner calls this once the run length is known.

        Raises:
            FaultError: naming the first offending event.
        """
        for event in self.in_order():
            if event.at > duration:
                raise FaultError(
                    f"fault at t={event.at:g} lies beyond the run "
                    f"duration {duration:g}: {event}"
                )
            until = getattr(event, "until", None)
            if until is not None and until > duration:
                raise FaultError(
                    f"fault window [{event.at:g}, {until:g}) extends past "
                    f"the run duration {duration:g}: {event}"
                )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self.in_order())

    def in_order(self) -> list[FaultEvent]:
        """Events sorted by time (stable on ties)."""
        return sorted(self._events, key=lambda event: event.at)

    def crashed_nodes(self) -> set[int]:
        """Nodes the schedule ever crashes (recovered or not)."""
        return {
            event.node for event in self._events if isinstance(event, NodeCrash)
        }

    def nodes_down_at_end(self) -> set[int]:
        """Nodes still down once every event has fired."""
        down: set[int] = set()
        for event in self.in_order():
            if isinstance(event, NodeCrash):
                down.add(event.node)
            elif isinstance(event, NodeRecover):
                down.discard(event.node)
        return down
