"""End-of-run invariant audit.

Packet conservation per flow: every packet a source successfully
injected must be accounted for exactly once —

    injected = delivered + buffer_drops + mac_drops + crash_losses
               + in_flight

where *in_flight* counts packets still sitting in some queue or held
inside the MAC when the run stopped.  A nonzero residual means a layer
is silently dropping or duplicating packets.

The strict balance holds on the fluid substrate.  The packet-level DCF
can legitimately *duplicate* a delivery (a lost ACK makes the sender
retransmit a packet the receiver already accepted), so the scenario
runner enables the strict check by default only on ``fluid``; the
non-strict audit still verifies that no counter is negative and that
no rate or occupancy went below zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvariantError
from repro.flows.flow import FlowSet
from repro.flows.traffic import TrafficSource
from repro.mac.base import MacLayer
from repro.stack import NodeStack


@dataclass
class FlowAudit:
    """Per-flow conservation ledger."""

    flow_id: int
    injected: int = 0
    delivered: int = 0
    buffer_drops: int = 0
    mac_drops: int = 0
    crash_losses: int = 0
    in_flight: int = 0

    @property
    def residual(self) -> int:
        """``injected - (delivered + all losses + in_flight)``; zero
        when conservation holds."""
        return self.injected - (
            self.delivered
            + self.buffer_drops
            + self.mac_drops
            + self.crash_losses
            + self.in_flight
        )


@dataclass
class InvariantReport:
    """Outcome of :func:`audit_run`.

    Attributes:
        flows: per-flow ledgers.
        negative_values: human-readable descriptions of negative
            rates/occupancies/counters found.
        strict: whether conservation residuals count as violations.
    """

    flows: dict[int, FlowAudit] = field(default_factory=dict)
    negative_values: list[str] = field(default_factory=list)
    strict: bool = True

    def violations(self) -> list[str]:
        """Every violated invariant, as one message each."""
        found = list(self.negative_values)
        if self.strict:
            for flow_id in sorted(self.flows):
                audit = self.flows[flow_id]
                if audit.residual != 0:
                    found.append(
                        f"flow {flow_id}: conservation residual "
                        f"{audit.residual} (injected={audit.injected}, "
                        f"delivered={audit.delivered}, "
                        f"buffer_drops={audit.buffer_drops}, "
                        f"mac_drops={audit.mac_drops}, "
                        f"crash_losses={audit.crash_losses}, "
                        f"in_flight={audit.in_flight})"
                    )
        return found

    @property
    def ok(self) -> bool:
        """True when no invariant is violated."""
        return not self.violations()

    def check(self) -> None:
        """Raise :class:`InvariantError` listing every violation."""
        found = self.violations()
        if found:
            raise InvariantError(
                "invariant audit failed: " + "; ".join(found)
            )


def audit_run(
    *,
    flows: FlowSet,
    sources: dict[int, TrafficSource],
    stacks: dict[int, NodeStack],
    mac: MacLayer,
    rates: dict[int, float] | None = None,
    strict: bool = True,
) -> InvariantReport:
    """Audit one finished run for conservation and sign invariants.

    Args:
        flows: the scenario's flows.
        sources: traffic sources by flow id.
        stacks: node stacks by node id.
        mac: the MAC substrate (its held packets count as in-flight).
        rates: optional measured per-flow rates to sign-check.
        strict: enforce exact per-flow conservation (fluid substrate).
    """
    report = InvariantReport(strict=strict)
    for flow in flows:
        report.flows[flow.flow_id] = FlowAudit(flow_id=flow.flow_id)

    for flow_id, source in sources.items():
        audit = report.flows.setdefault(flow_id, FlowAudit(flow_id=flow_id))
        audit.injected = source.admitted
        for name in ("generated", "admitted", "rejected", "limited"):
            value = getattr(source, name)
            if value < 0:
                report.negative_values.append(
                    f"flow {flow_id}: source counter {name} = {value}"
                )

    # In-flight packets, deduplicated by object identity: the same
    # Packet object can be visible twice (e.g. held by a DCF sender
    # *and* already admitted downstream after an ACK loss), and a
    # MAC-held packet whose ``delivered_at`` is set already counts in
    # the delivered column.
    seen: set[int] = set()
    pending = []
    for stack in stacks.values():
        pending.extend(stack.buffer.queued_packets())
    pending.extend(mac.packets_in_flight())
    for packet in pending:
        if id(packet) in seen or packet.delivered_at is not None:
            continue
        seen.add(id(packet))
        audit = report.flows.setdefault(
            packet.flow_id, FlowAudit(flow_id=packet.flow_id)
        )
        audit.in_flight += 1

    for node_id, stack in stacks.items():
        if stack.buffer.backlog() < 0:  # pragma: no cover - deques cannot
            report.negative_values.append(f"node {node_id}: negative backlog")
        for flow_id, count in stack.delivered.items():
            report.flows.setdefault(
                flow_id, FlowAudit(flow_id=flow_id)
            ).delivered += count
        for flow_id, count in stack.buffer.drops_by_flow.items():
            report.flows.setdefault(
                flow_id, FlowAudit(flow_id=flow_id)
            ).buffer_drops += count
        for flow_id, count in stack.mac_drop_flows.items():
            report.flows.setdefault(
                flow_id, FlowAudit(flow_id=flow_id)
            ).mac_drops += count
        for flow_id, count in stack.crash_losses.items():
            report.flows.setdefault(
                flow_id, FlowAudit(flow_id=flow_id)
            ).crash_losses += count
        for a_link, airtime in mac.occupancy_snapshot(node_id).items():
            if airtime < 0:
                report.negative_values.append(
                    f"node {node_id}: negative occupancy {airtime} on {a_link}"
                )

    if rates is not None:
        for flow_id, rate in rates.items():
            if rate < 0:
                report.negative_values.append(
                    f"flow {flow_id}: negative rate {rate}"
                )

    return report
