"""Arms a :class:`FaultSchedule` on a live scenario.

The injector is constructed by the scenario runner after the whole
stack exists, and translates each scheduled fault into the layer hooks
introduced for it:

* node crash → ``mac.set_node_down`` (radio dies, in-flight frame is
  abandoned), ``stack.crash`` (queued packets perish, accounted per
  flow), traffic sources at the node pause, and GMP is told so the
  node's measurements go stale immediately;
* node recovery → the reverse, with empty queues;
* link degradation → loss rate and/or capacity ceiling applied in both
  directions (a wireless link fades for both endpoints);
* control loss → a drop-probability window on GMP's rate-adjustment
  requests;
* loss burst → a degrade that automatically restores at the window end.

Every applied fault is appended to :attr:`FaultInjector.fault_log` as
``(time, description)`` for post-run inspection.
"""

from __future__ import annotations

from repro.core.protocol import GmpProtocol
from repro.errors import FaultError
from repro.faults.schedule import (
    ControlLoss,
    FaultSchedule,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    PacketLossBurst,
)
from repro.flows.traffic import TrafficSource
from repro.mac.base import MacLayer
from repro.sim.kernel import Simulator
from repro.stack import NodeStack
from repro.topology.network import Link


class FaultInjector:
    """Binds a schedule to the assembled scenario objects.

    Args:
        sim: simulation kernel.
        schedule: the validated fault schedule.
        mac: the MAC substrate (must implement the fault hooks the
            schedule actually uses).
        stacks: node stacks by node id.
        sources: traffic sources by flow id.
        gmp: the GMP engine, or None for baseline protocols.
    """

    def __init__(
        self,
        sim: Simulator,
        schedule: FaultSchedule,
        *,
        mac: MacLayer,
        stacks: dict[int, NodeStack],
        sources: dict[int, TrafficSource],
        gmp: GmpProtocol | None = None,
    ) -> None:
        self.sim = sim
        self.schedule = schedule
        self.mac = mac
        self.stacks = stacks
        self.sources = sources
        self.gmp = gmp
        self.fault_log: list[tuple[float, str]] = []
        self._armed = False

    # --- static validation against this scenario --------------------------------

    def _validate(self) -> None:
        for event in self.schedule:
            self._validate_one(event)

    def _validate_one(self, event: object) -> None:
        if isinstance(event, (NodeCrash, NodeRecover)):
            if event.node not in self.stacks:
                raise FaultError(
                    f"fault targets unknown node {event.node}: {event}"
                )
        if isinstance(event, (LinkDegrade, LinkRestore, PacketLossBurst)):
            for end in event.link:
                if end not in self.stacks:
                    raise FaultError(
                        f"fault targets unknown node {end}: {event}"
                    )
        if isinstance(event, LinkDegrade) and event.capacity_pps is not None:
            if type(self.mac).set_link_capacity is MacLayer.set_link_capacity:
                raise FaultError(
                    f"{type(self.mac).__name__} cannot degrade link "
                    f"capacity (packet-level substrate); use a loss "
                    f"rate instead: {event}"
                )
        if isinstance(event, ControlLoss) and self.gmp is None:
            raise FaultError(
                f"ControlLoss requires the GMP protocol engine: {event}"
            )

    # --- arming --------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every fault event on the simulator.

        Raises:
            FaultError: if the schedule references unknown nodes, needs
                hooks the substrate lacks, or the injector was already
                armed.
        """
        if self._armed:
            raise FaultError("fault schedule already armed")
        self._validate()
        self._armed = True
        for event in self.schedule.in_order():
            if isinstance(event, NodeCrash):
                self._arm_one(event.at, "fault.crash", self._crash, event.node)
            elif isinstance(event, NodeRecover):
                self._arm_one(event.at, "fault.recover", self._recover, event.node)
            elif isinstance(event, LinkDegrade):
                self._arm_one(
                    event.at,
                    "fault.degrade",
                    self._degrade,
                    event.link,
                    event.loss_rate,
                    event.capacity_pps,
                )
            elif isinstance(event, LinkRestore):
                self._arm_one(event.at, "fault.restore", self._restore, event.link)
            elif isinstance(event, ControlLoss):
                self._arm_one(
                    event.at,
                    "fault.ctrl",
                    self._control_loss,
                    event.drop_prob,
                    event.until,
                )
            elif isinstance(event, PacketLossBurst):
                self._arm_one(
                    event.at,
                    "fault.burst",
                    self._degrade,
                    event.link,
                    event.loss_rate,
                    None,
                )
                self._arm_one(event.until, "fault.burst", self._restore, event.link)
            else:  # pragma: no cover - schedule validation rejects these
                raise FaultError(f"unhandled fault event: {event}")

    def _arm_one(self, at: float, tag: str, handler, *args) -> None:
        self.sim.call_at(at, lambda: handler(*args), tag=tag)

    # --- live injection -------------------------------------------------------------

    def inject(self, event: object) -> str:
        """Apply one fault event immediately (service-mode control plane).

        The event's ``at`` field is ignored — it fires now, from
        whatever context called this (a kernel callback or a monitor
        tick).  Windowed events (:class:`PacketLossBurst`) schedule
        their own restore at ``event.until``.

        Returns:
            The human-readable fault-log line that was recorded.

        Raises:
            FaultError: if the event references unknown nodes, needs
                hooks the substrate lacks, or its window lies in the
                past.
        """
        self._validate_one(event)
        if isinstance(event, NodeCrash):
            self._crash(event.node)
        elif isinstance(event, NodeRecover):
            self._recover(event.node)
        elif isinstance(event, LinkDegrade):
            self._degrade(event.link, event.loss_rate, event.capacity_pps)
        elif isinstance(event, LinkRestore):
            self._restore(event.link)
        elif isinstance(event, ControlLoss):
            if event.until <= self.sim.now:
                raise FaultError(
                    f"control-loss window ends in the past: {event}"
                )
            self._control_loss(event.drop_prob, event.until)
        elif isinstance(event, PacketLossBurst):
            if event.until <= self.sim.now:
                raise FaultError(f"loss-burst window ends in the past: {event}")
            self._degrade(event.link, event.loss_rate, None)
            self._arm_one(event.until, "fault.burst", self._restore, event.link)
        else:
            raise FaultError(f"unhandled fault event: {event!r}")
        return self.fault_log[-1][1]

    def _log(self, text: str) -> None:
        self.fault_log.append((self.sim.now, text))

    # --- handlers ---------------------------------------------------------------------

    def _sources_at(self, node: int) -> list[TrafficSource]:
        return [
            source
            for source in self.sources.values()
            if source.flow.source == node
        ]

    def _crash(self, node: int) -> None:
        mac_lost = self.mac.set_node_down(node, True)
        self.stacks[node].crash(mac_lost)
        for source in self._sources_at(node):
            source.pause()
        if self.gmp is not None:
            self.gmp.on_node_down(node)
        self._log(f"crash node {node} ({len(mac_lost)} in-flight packets lost)")

    def _recover(self, node: int) -> None:
        self.mac.set_node_down(node, False)
        self.stacks[node].recover()
        for source in self._sources_at(node):
            source.resume()
        if self.gmp is not None:
            self.gmp.on_node_up(node)
        self._log(f"recover node {node}")

    def _degrade(
        self, a_link: Link, loss_rate: float | None, capacity: float | None
    ) -> None:
        i, j = a_link
        if loss_rate is not None:
            self.mac.set_link_loss(i, j, loss_rate)
            self.mac.set_link_loss(j, i, loss_rate)
        if capacity is not None:
            self.mac.set_link_capacity(i, j, capacity)
            self.mac.set_link_capacity(j, i, capacity)
        parts = []
        if loss_rate is not None:
            parts.append(f"loss={loss_rate:g}")
        if capacity is not None:
            parts.append(f"cap={capacity:g}pps")
        self._log(f"degrade link {i}-{j} ({', '.join(parts)})")

    def _restore(self, a_link: Link) -> None:
        i, j = a_link
        self.mac.set_link_loss(i, j, 0.0)
        self.mac.set_link_loss(j, i, 0.0)
        if type(self.mac).set_link_capacity is not MacLayer.set_link_capacity:
            self.mac.set_link_capacity(i, j, None)
            self.mac.set_link_capacity(j, i, None)
        self._log(f"restore link {i}-{j}")

    def _control_loss(self, drop_prob: float, until: float) -> None:
        assert self.gmp is not None  # _validate guarantees this
        self.gmp.set_control_loss(drop_prob, until)
        self._log(
            f"control loss p={drop_prob:g} until t={until:g}"
        )
