"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, running a kernel that has
    already been stopped, or re-entrant ``run`` calls.
    """


class TopologyError(ReproError):
    """The wireless topology is malformed or a query referenced a
    non-existent node or link."""


class RoutingError(ReproError):
    """No route exists, or a routing table would contain a cycle."""


class FlowError(ReproError):
    """A flow specification is invalid (bad endpoints, non-positive
    weight or desired rate, duplicate flow identifier)."""


class MacError(ReproError):
    """The MAC layer was driven incorrectly (e.g. a transmission was
    started while another one is in progress on the same radio)."""


class BufferError_(ReproError):
    """A queueing policy was misused (unknown destination queue,
    negative capacity, dequeue from an empty policy)."""


class ProtocolError(ReproError):
    """The GMP protocol state machine received inconsistent input."""


class AnalysisError(ReproError):
    """An analysis routine received degenerate input (e.g. empty flow
    set for a fairness index, infeasible maxmin program)."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class FaultError(ReproError):
    """A fault schedule is malformed or an injection targets something
    the chosen substrate cannot fail (unknown node, capacity
    degradation on the packet-level DCF, overlapping crash windows)."""


class InvariantError(ReproError):
    """An end-of-run invariant audit failed (packet conservation broken
    or a negative rate/occupancy was observed)."""


class ChurnError(ReproError):
    """A churn specification is malformed or the churn engine was
    driven against a scenario it cannot churn (e.g. the static 2PP
    allocation, or a topology with no routable node pair)."""


class FuzzError(ReproError):
    """The scenario fuzzer was misconfigured (bad budget, malformed
    repro spec, unknown planted bug)."""
