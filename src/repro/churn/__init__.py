"""Dynamic workloads: flow churn over a running scenario.

The paper's GMP protocol is an *online* algorithm — flows come and go
and the rate allocation must re-converge around every change.  This
package makes that a first-class workload:

* :mod:`repro.churn.spec` — the churn specification (Poisson arrivals
  with exponential or heavy-tailed Pareto holding times, phase
  switching traffic, an adversarial arrival scheduler) plus the
  deterministic *trace builder* that expands a spec into a concrete
  sequence of flow arrival/departure events through
  :class:`~repro.sim.rng.RngRegistry` streams — same seed, same trace,
  replayable byte for byte;
* :mod:`repro.churn.adversary` — the adversarial scheduler, which
  phase-locks arrival bursts to the GMP measurement period to maximize
  rate oscillation of the standing flows (in the spirit of the
  Max-Weight adversarial-arrival literature: the *pattern*, not the
  rate, is what breaks distributed schedulers);
* :mod:`repro.churn.engine` — the runtime engine that arms a trace on
  a live scenario: arrivals register new flows with GMP (grand virtual
  network grafting, source registration), departures tear them down
  again and audit that nothing leaked.

``run_scenario(..., churn=...)`` wires all of this together; see
``docs/FAULTS.md`` ("Dynamic workloads & fuzzing").
"""

from repro.churn.engine import ChurnEngine, ChurnReport
from repro.churn.spec import (
    ChurnSpec,
    ChurnTrace,
    FlowArrival,
    FlowDeparture,
    build_trace,
    parse_churn_spec,
    routable_pairs,
)

__all__ = [
    "ChurnEngine",
    "ChurnReport",
    "ChurnSpec",
    "ChurnTrace",
    "FlowArrival",
    "FlowDeparture",
    "build_trace",
    "parse_churn_spec",
    "routable_pairs",
]
