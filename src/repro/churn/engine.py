"""The churn engine: drive a trace against a live scenario.

The engine is armed by the scenario runner after the full stack is
assembled (sources, fault injector, protocol).  It expands the spec
into a trace and schedules one kernel event per arrival/departure:

* **arrival** — build the traffic source (through a runner-supplied
  factory so churned flows get the same admit/on-generate wiring as
  static ones), register the flow with GMP (grand-virtual-network
  graft + source registration) or plainly with the flow set, and start
  offering packets.  A flow arriving at a crashed node starts paused;
  the fault injector resumes it on recovery because it shares the
  engine's ``sources`` dict.
* **departure** — permanently stop the source, tear the flow out of
  GMP, and run the post-departure state audit.  Any residue the audit
  reports is collected into the :class:`ChurnReport` — the
  ``gmp_residue`` fuzz oracle fails on a nonempty collection.

Departed sources stay in the shared ``sources`` dict with frozen
counters: the end-of-run packet-conservation audit seeds its ledgers
from that dict, so a departed flow's packets remain accounted for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.churn.spec import ChurnSpec, ChurnTrace, FlowArrival, build_trace
from repro.core.protocol import GmpProtocol
from repro.errors import ChurnError
from repro.flows.flow import Flow, FlowSet
from repro.flows.traffic import TrafficSource
from repro.routing.table import RouteSet
from repro.sim.kernel import Simulator
from repro.stack import NodeStack


@dataclass
class ChurnReport:
    """What the churn engine did during one run.

    Attributes:
        spec_text: the compact textual form of the churn spec.
        arrivals: flows that actually joined mid-run.
        departures: flows that left before the run ended.
        skipped_at_cap: arrivals suppressed by ``max_flows``.
        lifetimes: flow id → (arrival time, departure-or-end time) for
            every flow the engine touched (churned arrivals, plus
            static flows it retired under ``include_static``).
        residues: flow id → post-departure audit findings; empty for a
            clean run, nonempty exactly when GMP state leaked.
    """

    spec_text: str
    arrivals: int = 0
    departures: int = 0
    skipped_at_cap: int = 0
    lifetimes: dict[int, tuple[float, float]] = field(default_factory=dict)
    residues: dict[int, list[str]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no departure left state behind."""
        return not self.residues


class ChurnEngine:
    """Schedules and executes one churn trace on an assembled stack.

    Args:
        sim: simulation kernel.
        spec: the churn process, or ``None`` for a command-driven
            engine (service mode): no trace is built and :meth:`arm`
            is forbidden; arrivals/departures come exclusively through
            :meth:`inject_arrival` / :meth:`inject_departure`.
        routes: routing tables (trace candidate pairs).
        flows: the run's *live* flow set (shared with GMP).
        all_flows: registry of every flow that ever existed this run;
            the runner measures/samples from it because departed flows
            leave the live set.
        stacks: node stacks by id (crash-awareness at arrival).
        sources: the run's traffic sources by flow id — the same dict
            the fault injector holds, so recovery resumes churned
            sources too.  The engine only ever adds entries.
        make_source: factory building a started-but-unstarted source
            for a churned flow with the run's admit/on-generate wiring.
        gmp: the GMP engine when the run uses it; None for baselines.
        period: GMP measurement period (adversary phase lock).
    """

    def __init__(
        self,
        sim: Simulator,
        spec: ChurnSpec | None,
        *,
        routes: RouteSet,
        flows: FlowSet,
        all_flows: dict[int, Flow],
        stacks: dict[int, NodeStack],
        sources: dict[int, TrafficSource],
        make_source: Callable[[Flow], TrafficSource],
        gmp: GmpProtocol | None = None,
        period: float = 2.0,
        duration: float = 0.0,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.routes = routes
        self.flows = flows
        self.all_flows = all_flows
        self.stacks = stacks
        self.sources = sources
        self.make_source = make_source
        self.gmp = gmp
        self.period = period
        self.trace: ChurnTrace | None = None
        self._duration = duration
        self._arrivals = 0
        self._departures = 0
        self._lifetimes: dict[int, list[float]] = {}
        self._residues: dict[int, list[str]] = {}

    def arm(self, duration: float) -> ChurnTrace:
        """Build the trace for ``duration`` and schedule its events.

        Raises:
            ChurnError: when armed twice, when the engine is
                command-driven (no spec), or the spec cannot produce a
                trace on this topology.
        """
        if self.spec is None:
            raise ChurnError("command-driven churn engine has no trace to arm")
        if self.trace is not None:
            raise ChurnError("churn engine already armed")
        self._duration = duration
        self.trace = build_trace(
            self.spec,
            routes=self.routes,
            flows=self.flows,
            duration=duration,
            rng=self.sim.rng,
            period=self.period,
        )
        for event in self.trace.events:
            if isinstance(event, FlowArrival):
                self.sim.call_at(
                    event.at,
                    lambda flow=event.flow: self.inject_arrival(flow),
                    tag="churn.arrive",
                )
            else:
                self.sim.call_at(
                    event.at,
                    lambda flow_id=event.flow_id: self.inject_departure(flow_id),
                    tag="churn.depart",
                )
        return self.trace

    # --- event handlers ---------------------------------------------------------
    # Public on purpose: the service-mode control plane grafts live
    # flow arrivals/departures through the exact same code path the
    # churn trace uses, so command-driven and trace-driven flows are
    # indistinguishable to GMP, the audits, and the measurements.

    def inject_arrival(self, flow: Flow) -> None:
        """Graft ``flow`` into the live run right now.

        Raises:
            ChurnError: when the flow id is already live or the flow's
                endpoints have no stack in this scenario.
        """
        if flow.flow_id in self.sources:
            raise ChurnError(f"flow {flow.flow_id} already exists in this run")
        if flow.source not in self.stacks or flow.destination not in self.stacks:
            raise ChurnError(
                f"flow {flow.flow_id} endpoints {flow.source}->{flow.destination} "
                "are not nodes of this scenario"
            )
        source = self.make_source(flow)
        if self.gmp is not None:
            self.gmp.add_flow(flow, source)
        else:
            self.flows.add(flow)
        self.sources[flow.flow_id] = source
        self.all_flows[flow.flow_id] = flow
        self._lifetimes[flow.flow_id] = [self.sim.now, self._duration]
        self._arrivals += 1
        jitter = self.sim.rng.stream("churn.start_jitter")
        source.start(offset=float(jitter.uniform(0.0, 1.0 / flow.desired_rate)))
        if not self.stacks[flow.source].alive:
            # Born on a crashed node: wait for recovery (the injector
            # resumes every paused source at the node).
            source.pause()

    def inject_departure(self, flow_id: int) -> None:
        """Retire ``flow_id`` from the live run right now.

        Raises:
            ChurnError: when no such flow was ever offered traffic, or
                it already departed.
        """
        if flow_id not in self.sources:
            raise ChurnError(f"unknown flow {flow_id}")
        if flow_id in self._lifetimes and self._lifetimes[flow_id][1] < self._duration:
            raise ChurnError(f"flow {flow_id} already departed")
        source = self.sources.get(flow_id)
        if source is not None:
            source.stop()
        life = self._lifetimes.setdefault(flow_id, [0.0, self._duration])
        life[1] = self.sim.now
        if self.gmp is not None:
            if self.spec is None or not self.spec.leak_departed_state:
                self.gmp.remove_flow(flow_id)
            residue = self.gmp.departure_audit(flow_id)
            if residue:
                self._residues[flow_id] = residue
        else:
            self.flows.remove(flow_id)
        self._departures += 1

    # --- reporting --------------------------------------------------------------

    def live_lifetimes(self) -> dict[int, tuple[float, float]]:
        """Per-flow (arrival, departure) windows *as of now* — flows
        still alive report their armed duration as the end.  Read-only
        mid-run view for in-flight health checks; the authoritative
        end-of-run map is in :meth:`finalize`'s report."""
        return {
            flow_id: (start, end)
            for flow_id, (start, end) in sorted(self._lifetimes.items())
        }

    def finalize(self) -> ChurnReport:
        """Summarize the run (call after ``sim.run`` returns)."""
        return ChurnReport(
            spec_text=(
                self.spec.to_text() if self.spec is not None else "command-driven"
            ),
            arrivals=self._arrivals,
            departures=self._departures,
            skipped_at_cap=self.trace.skipped_at_cap if self.trace else 0,
            lifetimes={
                flow_id: (start, end)
                for flow_id, (start, end) in sorted(self._lifetimes.items())
            },
            residues={k: list(v) for k, v in sorted(self._residues.items())},
        )
