"""Churn specifications and the deterministic trace builder.

A :class:`ChurnSpec` describes a *process*; :func:`build_trace` expands
it into a concrete :class:`ChurnTrace` — a time-ordered sequence of
:class:`FlowArrival` / :class:`FlowDeparture` events — using named
:class:`~repro.sim.rng.RngRegistry` streams, so the whole dynamic
workload is a pure function of the run seed: replaying the same seed
replays the identical churn, and the replay sanitizer's digest covers
it.

The compact textual form (CLI ``--churn``, fuzzer repro specs)::

    poisson:rate=0.3,mean_hold=6,hold=pareto,alpha=1.5,max_flows=4
    adversary:burst=2,on=2,off=2

Keys for ``poisson``: ``rate`` (arrivals/s), ``mean_hold`` (s),
``hold`` (``exp`` | ``pareto``), ``alpha`` (Pareto shape), ``max_flows``
(concurrent cap), ``traffic`` (``cbr`` | ``poisson`` | ``onoff`` |
``pareto-onoff``), ``desired_rate``, ``start``, ``stop``, ``static``
(1: static flows get holding times too).  ``adversary`` adds ``burst``
(flows per wave), ``on`` / ``off`` (wave length in GMP periods).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ChurnError
from repro.flows.flow import Flow, FlowSet
from repro.flows.traffic import pareto_draw
from repro.routing.table import RouteSet
from repro.sim.rng import RngRegistry

#: Traffic models a churned flow may use (validated here; the runner
#: owns the name -> class mapping).
CHURN_TRAFFIC_MODELS = ("cbr", "poisson", "onoff", "pareto-onoff")

HOLD_MODELS = ("exp", "pareto")
CHURN_MODELS = ("poisson", "adversary")


@dataclass(frozen=True)
class ChurnSpec:
    """Parameters of the churn process.

    Attributes:
        model: "poisson" (memoryless arrivals) or "adversary"
            (period-locked bursts; see :mod:`repro.churn.adversary`).
        rate: mean flow arrivals per second (poisson model).
        mean_hold: mean holding time (lifetime) of a churned flow.
        hold: holding-time law — "exp" or heavy-tailed "pareto".
        alpha: Pareto shape for ``hold="pareto"`` (must exceed 1).
        max_flows: cap on concurrently active churned flows; arrivals
            beyond it are skipped (and counted).
        traffic: arrival process of churned flows' packets.
        desired_rate: desirable rate d(f) of churned flows (pkt/s).
        weight: maxmin weight of churned flows.
        start: no churn arrivals before this time.
        stop: no churn arrivals after this time (None: run end).
        burst: adversary — flows per arrival wave.
        on_periods: adversary — wave lifetime in GMP periods.
        off_periods: adversary — gap between waves in GMP periods.
        include_static: also assign holding times (drawn from the same
            law) to the scenario's static flows, so they depart too.
        leak_departed_state: **testing hook** — skip the GMP teardown
            on departure, deliberately planting the state-leak bug the
            fuzz oracles exist to catch.  Used by the fuzzer's
            self-check (``--plant-bug gmp-leak``) to validate the whole
            oracle + shrinker pipeline; never set it in real workloads.
    """

    model: str = "poisson"
    rate: float = 0.25
    mean_hold: float = 8.0
    hold: str = "pareto"
    alpha: float = 1.5
    max_flows: int = 8
    traffic: str = "poisson"
    desired_rate: float = 800.0
    weight: float = 1.0
    start: float = 0.0
    stop: float | None = None
    burst: int = 2
    on_periods: int = 2
    off_periods: int = 2
    include_static: bool = False
    leak_departed_state: bool = False

    def __post_init__(self) -> None:
        if self.model not in CHURN_MODELS:
            raise ChurnError(
                f"unknown churn model {self.model!r}; pick from {CHURN_MODELS}"
            )
        if self.hold not in HOLD_MODELS:
            raise ChurnError(
                f"unknown holding-time law {self.hold!r}; pick from {HOLD_MODELS}"
            )
        if self.traffic not in CHURN_TRAFFIC_MODELS:
            raise ChurnError(
                f"unknown churn traffic model {self.traffic!r}; pick from "
                f"{CHURN_TRAFFIC_MODELS}"
            )
        if self.rate <= 0:
            raise ChurnError(f"arrival rate must be positive: {self.rate}")
        if self.mean_hold <= 0:
            raise ChurnError(f"mean_hold must be positive: {self.mean_hold}")
        if self.hold == "pareto" and self.alpha <= 1.0:
            raise ChurnError(
                f"pareto shape must exceed 1 for a finite mean: {self.alpha}"
            )
        if self.max_flows < 1:
            raise ChurnError(f"max_flows must be >= 1: {self.max_flows}")
        if self.desired_rate <= 0:
            raise ChurnError(
                f"desired_rate must be positive: {self.desired_rate}"
            )
        if self.weight <= 0:
            raise ChurnError(f"weight must be positive: {self.weight}")
        if self.start < 0:
            raise ChurnError(f"start must be >= 0: {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise ChurnError(
                f"empty churn window [{self.start}, {self.stop})"
            )
        if self.burst < 1 or self.on_periods < 1 or self.off_periods < 1:
            raise ChurnError(
                "adversary burst/on/off must all be >= 1: "
                f"burst={self.burst}, on={self.on_periods}, "
                f"off={self.off_periods}"
            )

    def to_text(self) -> str:
        """The compact textual form; round-trips through
        :func:`parse_churn_spec` (the testing hook is excluded)."""
        parts: list[str] = []
        defaults = ChurnSpec()
        for key, label in _TEXT_KEYS.items():
            value = getattr(self, key)
            if value == getattr(defaults, key):
                continue
            if isinstance(value, bool):
                value = int(value)
            parts.append(f"{label}={value:g}" if isinstance(value, float) else f"{label}={value}")
        body = ",".join(parts)
        return f"{self.model}:{body}" if body else self.model


#: attribute -> textual key (model is the prefix, the hook is omitted).
_TEXT_KEYS = {
    "rate": "rate",
    "mean_hold": "mean_hold",
    "hold": "hold",
    "alpha": "alpha",
    "max_flows": "max_flows",
    "traffic": "traffic",
    "desired_rate": "desired_rate",
    "weight": "weight",
    "start": "start",
    "stop": "stop",
    "burst": "burst",
    "on_periods": "on",
    "off_periods": "off",
    "include_static": "static",
}

_FLOAT_KEYS = {"rate", "mean_hold", "alpha", "desired_rate", "weight", "start", "stop"}
_INT_KEYS = {"max_flows", "burst", "on_periods", "off_periods"}


def parse_churn_spec(text: str) -> ChurnSpec:
    """Parse the compact ``model:key=value,...`` churn syntax.

    Raises:
        ChurnError: on any syntax or validation error.
    """
    model, _sep, body = text.strip().partition(":")
    model = model.strip()
    values: dict[str, object] = {"model": model}
    by_label = {label: key for key, label in _TEXT_KEYS.items()}
    if body.strip():
        for item in body.split(","):
            label, sep, raw = item.partition("=")
            label = label.strip()
            raw = raw.strip()
            if not sep or not raw:
                raise ChurnError(f"bad churn parameter {item!r} (expected key=value)")
            key = by_label.get(label)
            if key is None:
                raise ChurnError(
                    f"unknown churn key {label!r}; known: {sorted(by_label)}"
                )
            if key in _FLOAT_KEYS:
                try:
                    values[key] = float(raw)
                except ValueError:
                    raise ChurnError(f"bad number {raw!r} for churn key {label!r}") from None
            elif key in _INT_KEYS:
                try:
                    values[key] = int(raw)
                except ValueError:
                    raise ChurnError(f"bad integer {raw!r} for churn key {label!r}") from None
            elif key == "include_static":
                values[key] = raw not in ("0", "false", "no")
            else:
                values[key] = raw
    return ChurnSpec(**values)  # type: ignore[arg-type]


# --- trace ----------------------------------------------------------------------


@dataclass(frozen=True)
class FlowArrival:
    """A new flow joins the network at time ``at``."""

    at: float
    flow: Flow


@dataclass(frozen=True)
class FlowDeparture:
    """Flow ``flow_id`` leaves at time ``at`` (its source stops; queued
    packets drain)."""

    at: float
    flow_id: int


@dataclass(frozen=True)
class ChurnTrace:
    """A concrete, time-ordered churn workload.

    Attributes:
        events: arrivals and departures sorted by time (arrivals first
            on ties, declaration order preserved).
        skipped_at_cap: arrivals the ``max_flows`` cap suppressed
            during generation.
    """

    events: tuple[FlowArrival | FlowDeparture, ...]
    skipped_at_cap: int = 0

    def __len__(self) -> int:
        return len(self.events)

    def arrivals(self) -> list[FlowArrival]:
        return [e for e in self.events if isinstance(e, FlowArrival)]

    def departures(self) -> list[FlowDeparture]:
        return [e for e in self.events if isinstance(e, FlowDeparture)]


def routable_pairs(routes: RouteSet, flows: FlowSet) -> list[tuple[int, int]]:
    """Ordered (source, dest) candidates for churned flows: every
    routable pair, excluding pairs already used by a static flow (two
    flows on the identical pair are legal but tell us nothing new)."""
    taken = {(flow.source, flow.destination) for flow in flows}
    pairs: list[tuple[int, int]] = []
    for source in routes.node_ids():
        table = routes.table(source)
        for dest in routes.node_ids():
            if source == dest or (source, dest) in taken:
                continue
            if table.has_route(dest):
                pairs.append((source, dest))
    return pairs


def _hold_time(spec: ChurnSpec, rng) -> float:
    if spec.hold == "pareto":
        return pareto_draw(rng, spec.mean_hold, spec.alpha)
    return float(rng.exponential(spec.mean_hold))


def build_trace(
    spec: ChurnSpec,
    *,
    routes: RouteSet,
    flows: FlowSet,
    duration: float,
    rng: RngRegistry,
    period: float = 2.0,
) -> ChurnTrace:
    """Expand ``spec`` into a concrete trace for one run.

    Every draw goes through named registry streams (``churn.arrival``,
    ``churn.hold``, ``churn.pair``), so the trace is a deterministic
    function of the registry's seed and the spec.

    Args:
        spec: the churn process.
        routes: routing tables (candidate pairs must be routable).
        flows: the scenario's static flows (ids are allocated above
            theirs; with ``include_static`` they get departures too).
        duration: run length; no event is scheduled at or after it.
        rng: the run's RNG registry (the simulator's).
        period: the GMP measurement period (adversary phase lock).

    Raises:
        ChurnError: when no routable candidate pair exists.
    """
    if spec.model == "adversary":
        from repro.churn.adversary import build_adversary_trace

        return build_adversary_trace(
            spec, routes=routes, flows=flows, duration=duration, period=period
        )

    pairs = routable_pairs(routes, flows)
    if not pairs:
        raise ChurnError("no routable (source, dest) pair for churn arrivals")
    arrival_rng = rng.stream("churn.arrival")
    hold_rng = rng.stream("churn.hold")
    pair_rng = rng.stream("churn.pair")

    events: list[FlowArrival | FlowDeparture] = []
    next_id = flows.next_flow_id()

    if spec.include_static:
        for flow in flows:
            hold = _hold_time(spec, hold_rng)
            if hold < duration:
                events.append(FlowDeparture(at=hold, flow_id=flow.flow_id))

    stop = duration if spec.stop is None else min(spec.stop, duration)
    now = spec.start
    active: list[float] = []  # departure times of live churned flows
    skipped = 0
    while True:
        now += float(arrival_rng.exponential(1.0 / spec.rate))
        if now >= stop:
            break
        active = [t for t in active if t > now]
        hold = _hold_time(spec, hold_rng)
        if len(active) >= spec.max_flows:
            skipped += 1
            continue
        source, dest = pairs[int(pair_rng.integers(len(pairs)))]
        flow = Flow(
            flow_id=next_id,
            source=source,
            destination=dest,
            weight=spec.weight,
            desired_rate=spec.desired_rate,
            packet_bytes=1024,
        )
        next_id += 1
        events.append(FlowArrival(at=now, flow=flow))
        departure = now + hold
        if departure < duration:
            events.append(FlowDeparture(at=departure, flow_id=flow.flow_id))
            active.append(departure)
        else:
            active.append(duration)
    events.sort(key=lambda e: (e.at, isinstance(e, FlowDeparture)))
    return ChurnTrace(events=tuple(events), skipped_at_cap=skipped)


def replace(spec: ChurnSpec, **changes) -> ChurnSpec:
    """``dataclasses.replace`` re-exported for spec mutation (shrinker,
    planted-bug hook) without importing dataclasses at call sites."""
    return dataclasses.replace(spec, **changes)
