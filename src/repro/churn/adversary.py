"""Adversarial arrival scheduler: phase-locked churn bursts.

GMP measures over a period and adjusts at period boundaries; an
arrival pattern *phase-locked* to that period maximally perturbs the
allocation: each burst lands just after a measurement boundary (so a
full period of measurements is polluted before the first reaction) and
departs just before a later one (so the reaction to the departure is
again maximally stale).  The adversary needs no randomness — the worst
case is a deterministic function of the period — which also makes the
trace trivially replayable.

Pair selection is greedy contention maximization: candidate flows are
ranked by how many physical links their path shares with the standing
(static) flows' paths, so every burst lands on the bottleneck rather
than on idle capacity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ChurnError
from repro.flows.flow import Flow, FlowSet
from repro.routing.table import RouteSet

if TYPE_CHECKING:
    from repro.churn.spec import ChurnSpec, ChurnTrace

#: Fraction of a period after a boundary at which a burst arrives.
ARRIVAL_PHASE = 0.25
#: Fraction of a period before a boundary at which a burst departs.
DEPARTURE_PHASE = 0.5


def _undirected(link: tuple[int, int]) -> tuple[int, int]:
    i, j = link
    return (i, j) if i <= j else (j, i)


def rank_contending_pairs(
    routes: RouteSet, flows: FlowSet
) -> list[tuple[int, int]]:
    """Candidate (source, dest) pairs sorted by descending overlap with
    the static flows' paths (ties broken by the pair itself).

    Overlap counts *undirected* physical links: in a wireless network a
    transmission in either direction contends for the same channel.
    """
    from repro.churn.spec import routable_pairs

    static_links: set[tuple[int, int]] = set()
    for flow in flows:
        for link in routes.path_links(flow.source, flow.destination):
            static_links.add(_undirected(link))
    candidates = routable_pairs(routes, flows)
    if not candidates:
        raise ChurnError("no routable (source, dest) pair for churn arrivals")

    def score(pair: tuple[int, int]) -> int:
        return sum(
            _undirected(link) in static_links
            for link in routes.path_links(pair[0], pair[1])
        )

    return sorted(candidates, key=lambda pair: (-score(pair), pair))


def build_adversary_trace(
    spec: "ChurnSpec",
    *,
    routes: RouteSet,
    flows: FlowSet,
    duration: float,
    period: float,
) -> "ChurnTrace":
    """Expand an ``adversary`` spec into a concrete trace.

    Wave ``k`` of ``spec.burst`` flows arrives at::

        start + k * (on + off) * period + ARRIVAL_PHASE * period

    and departs ``on * period - DEPARTURE_PHASE * period`` later.  All
    waves reuse the most-contending candidate pairs, cycling when a
    wave is wider than the candidate list.

    Raises:
        ChurnError: when no routable candidate pair exists or the wave
            geometry leaves a non-positive lifetime.
    """
    from repro.churn.spec import ChurnTrace, FlowArrival, FlowDeparture

    lifetime = spec.on_periods * period - DEPARTURE_PHASE * period
    if lifetime <= 0:
        raise ChurnError(
            f"adversary wave lifetime is non-positive: on_periods="
            f"{spec.on_periods} at period {period}"
        )
    ranked = rank_contending_pairs(routes, flows)
    wave_width = min(spec.burst, spec.max_flows)
    skipped_per_wave = spec.burst - wave_width

    stop = duration if spec.stop is None else min(spec.stop, duration)
    events: list[FlowArrival | FlowDeparture] = []
    next_id = flows.next_flow_id()
    skipped = 0
    wave = 0
    while True:
        at = (
            spec.start
            + wave * (spec.on_periods + spec.off_periods) * period
            + ARRIVAL_PHASE * period
        )
        if at >= stop:
            break
        for slot in range(wave_width):
            source, dest = ranked[slot % len(ranked)]
            flow = Flow(
                flow_id=next_id,
                source=source,
                destination=dest,
                weight=spec.weight,
                desired_rate=spec.desired_rate,
                packet_bytes=1024,
            )
            next_id += 1
            events.append(FlowArrival(at=at, flow=flow))
            departure = at + lifetime
            if departure < duration:
                events.append(FlowDeparture(at=departure, flow_id=flow.flow_id))
        skipped += skipped_per_wave
        wave += 1
    events.sort(key=lambda e: (e.at, isinstance(e, FlowDeparture)))
    return ChurnTrace(events=tuple(events), skipped_at_cap=skipped)
