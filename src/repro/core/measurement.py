"""Measurement-period bookkeeping (§6.2).

During each period a node passively observes the packets it forwards
and receives:

* :class:`MuTracker` records, per adjacent virtual link, the largest
  piggybacked normalized rate and the flows that carried it (the
  *primary flows*);
* at the period's end the protocol combines these with buffer Ω
  values, per-virtual-link packet counts, and MAC channel-occupancy
  snapshots into the report structures below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classification import LinkType
from repro.core.conditions import beta_equal
from repro.flows.packet import Packet
from repro.topology.network import Link


class MuTracker:
    """Per-node tracker of piggybacked normalized rates.

    Keyed by (directed link, destination); values map flow id to the
    largest μ that flow's packets carried across that virtual link
    this period.
    """

    def __init__(self) -> None:
        self._seen: dict[tuple[Link, int], dict[int, float]] = {}

    def observe(self, a_link: Link, dest: int, packet: Packet) -> None:
        """Record one forwarded/received packet on a virtual link."""
        if packet.carried_mu is None:
            return
        flows = self._seen.setdefault((a_link, dest), {})
        current = flows.get(packet.flow_id)
        if current is None or packet.carried_mu > current:
            flows[packet.flow_id] = packet.carried_mu

    def summarize(
        self, a_link: Link, dest: int, *, beta: float
    ) -> tuple[float | None, frozenset[int]]:
        """Largest μ observed on the virtual link and its primary flows
        (flows whose μ is β-equal to the maximum)."""
        flows = self._seen.get((a_link, dest))
        if not flows:
            return None, frozenset()
        top = max(flows.values())
        primaries = frozenset(
            flow for flow, mu in flows.items() if beta_equal(mu, top, beta)
        )
        return top, primaries

    def tracked_vlinks(self) -> list[tuple[Link, int]]:
        """All (link, dest) pairs with at least one observation."""
        return sorted(self._seen)

    def reset(self) -> None:
        """Forget everything (start of a new period)."""
        self._seen.clear()


@dataclass(frozen=True)
class VirtualLinkReport:
    """One virtual link's state over the last period.

    Attributes:
        link: directed physical link (i, j).
        dest: destination of the virtual network.
        rate: data rate in packets/second (receiver-side count).
        mu: largest piggybacked normalized rate, or None.
        primaries: sources of the packets carrying ``mu``.
        link_type: classification from the endpoints' buffer states.
    """

    link: Link
    dest: int
    rate: float
    mu: float | None
    primaries: frozenset[int]
    link_type: LinkType


@dataclass(frozen=True)
class WirelessLinkReport:
    """One wireless link's state, as disseminated two hops out.

    Attributes:
        link: canonical (min, max) node pair.
        occupancy: fraction of the period the channel carried this
            link's RTS/CTS/DATA/ACK (both endpoints' shares summed).
        mu: largest normalized rate among the link's virtual links in
            either direction, or None if none was observed.
    """

    link: Link
    occupancy: float
    mu: float | None


def combine_occupancy(
    sender_share: float, receiver_share: float, period: float
) -> float:
    """Channel occupancy fraction from the two endpoints' airtime
    shares (§6.2: endpoints measure their own transmissions and
    exchange them)."""
    if period <= 0:
        return 0.0
    return min(1.0, (sender_share + receiver_share) / period)
