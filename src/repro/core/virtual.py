"""Virtual nodes, virtual links, and the grand virtual network (§5.2).

Each physical node ``i`` serving destination ``t`` is modeled as a
virtual node ``i_t`` carrying one queue.  All virtual nodes for ``t``
form the *virtual network* of ``t``; a virtual link ``(i_t, j_t)``
exists when ``j`` is ``i``'s next hop toward ``t``.  The union over
destinations is the *grand virtual network*.

In code a virtual node is the pair ``(node_id, dest)`` and a virtual
link is ``(link, dest)`` with ``link`` the directed physical pair —
only nodes on some flow's routing path are instantiated, matching the
paper's "a node serves a destination if it is on the routing path of a
flow with that destination".
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.flows.flow import FlowSet
from repro.routing.table import RouteSet
from repro.topology.network import Link

#: A virtual node: (physical node id, destination).
VirtualNode = tuple[int, int]
#: A virtual link: (directed physical link, destination).
VirtualLink = tuple[Link, int]


class GrandVirtualNetwork:
    """Derived structure of all virtual networks for a flow set.

    The structure is *incremental*: :meth:`add_flow` and
    :meth:`remove_flow` maintain every derived map so a churn engine
    can add and retire flows mid-run without rebuilding (virtual links,
    served destinations, and upstream/downstream adjacency are
    refcounted through the per-virtual-link flow sets and vanish with
    their last flow).
    """

    def __init__(self, routes: RouteSet, flows: FlowSet) -> None:
        self.routes = routes
        self.flows = flows
        self._vlinks: dict[int, set[Link]] = {}  # dest -> directed links
        self._upstream: dict[VirtualNode, set[int]] = {}
        self._downstream: dict[VirtualNode, int] = {}
        self._served: dict[int, set[int]] = {}  # node -> destinations
        self._local_flows: dict[VirtualNode, list[int]] = {}
        self._flow_links: dict[int, list[Link]] = {}
        self._flows_on_vlink: dict[VirtualLink, set[int]] = {}

        for flow in flows:
            self.add_flow(flow)

    # --- incremental maintenance ------------------------------------------------

    def add_flow(self, flow) -> None:
        """Graft one flow's path into the grand virtual network.

        Raises:
            ProtocolError: on an empty routing path or a flow id
                already present.
        """
        if flow.flow_id in self._flow_links:
            raise ProtocolError(f"flow {flow.flow_id} already in the GVN")
        path_links = self.routes.path_links(flow.source, flow.destination)
        if not path_links:
            raise ProtocolError(f"flow {flow.flow_id} has an empty path")
        self._flow_links[flow.flow_id] = path_links
        dest = flow.destination
        links_for_dest = self._vlinks.setdefault(dest, set())
        for i, j in path_links:
            links_for_dest.add((i, j))
            self._flows_on_vlink.setdefault(((i, j), dest), set()).add(
                flow.flow_id
            )
            self._served.setdefault(i, set()).add(dest)
            self._served.setdefault(j, set()).add(dest)
            self._upstream.setdefault((j, dest), set()).add(i)
            self._downstream[(i, dest)] = j
        self._local_flows.setdefault((flow.source, dest), []).append(
            flow.flow_id
        )

    def remove_flow(self, flow) -> list[VirtualLink]:
        """Tear one flow's path out again (flow departure).

        Virtual links, upstream/downstream adjacency, and served
        destinations survive only while some *other* flow still uses
        them; everything whose last user departed is deleted.  Returns
        the virtual links that vanished so the protocol can garbage-
        collect per-virtual-link decision state.

        Raises:
            ProtocolError: for a flow id the GVN does not know.
        """
        flow_id = flow.flow_id
        path_links = self._flow_links.pop(flow_id, None)
        if path_links is None:
            raise ProtocolError(f"unknown flow {flow_id}")
        dest = flow.destination
        vanished: list[VirtualLink] = []
        for i, j in path_links:
            vlink = ((i, j), dest)
            users = self._flows_on_vlink.get(vlink)
            if users is not None:
                users.discard(flow_id)
                if users:
                    continue
                del self._flows_on_vlink[vlink]
            vanished.append(vlink)
            self._vlinks[dest].discard((i, j))
            self._upstream_discard((j, dest), i)
            # Downstream is single-valued: delete only while no other
            # flow keeps (i, dest) pointing somewhere.
            if not any(
                a_link[0] == i
                for a_link in self._vlinks[dest]
            ):
                self._downstream.pop((i, dest), None)
        if not self._vlinks.get(dest):
            self._vlinks.pop(dest, None)
        locals_here = self._local_flows.get((flow.source, dest))
        if locals_here is not None:
            if flow_id in locals_here:
                locals_here.remove(flow_id)
            if not locals_here:
                del self._local_flows[(flow.source, dest)]
        self._rebuild_served(dest)
        return vanished

    def _upstream_discard(self, vnode: VirtualNode, upstream: int) -> None:
        neighbors = self._upstream.get(vnode)
        if neighbors is None:
            return
        neighbors.discard(upstream)
        if not neighbors:
            del self._upstream[vnode]

    def _rebuild_served(self, dest: int) -> None:
        """Recompute which nodes still serve ``dest`` from its links."""
        serving: set[int] = set()
        for i, j in self._vlinks.get(dest, ()):
            serving.add(i)
            serving.add(j)
        for node in list(self._served):
            on = dest in self._served[node]
            should = node in serving
            if on and not should:
                self._served[node].discard(dest)
                if not self._served[node]:
                    del self._served[node]

    def knows_flow(self, flow_id: int) -> bool:
        """True while the flow's path is part of the structure."""
        return flow_id in self._flow_links

    def flow_residue(self, flow_id: int) -> list[str]:
        """Any structure still referencing a supposedly removed flow.

        Returns human-readable descriptions (empty when clean); the
        post-departure audit in :mod:`repro.core.protocol` folds these
        into its report.
        """
        residue: list[str] = []
        if flow_id in self._flow_links:
            residue.append(f"flow {flow_id}: path links retained in GVN")
        for vlink, users in sorted(self._flows_on_vlink.items()):
            if flow_id in users:
                residue.append(
                    f"flow {flow_id}: still member of virtual link {vlink}"
                )
        for vnode, locals_here in sorted(self._local_flows.items()):
            if flow_id in locals_here:
                residue.append(
                    f"flow {flow_id}: still a local flow of virtual node {vnode}"
                )
        return residue

    # --- queries --------------------------------------------------------------

    def destinations(self) -> list[int]:
        """All destinations with a virtual network, sorted."""
        return sorted(self._vlinks)

    def virtual_links(self, dest: int) -> list[Link]:
        """Directed physical links of the virtual network for ``dest``."""
        return sorted(self._vlinks.get(dest, ()))

    def all_virtual_links(self) -> list[VirtualLink]:
        """Every (link, dest) pair in the grand virtual network."""
        return sorted(
            (a_link, dest)
            for dest, links in self._vlinks.items()
            for a_link in links
        )

    def serves(self, node: int, dest: int) -> bool:
        """True if node ``node`` has a virtual node for ``dest``."""
        return dest in self._served.get(node, ())

    def served_destinations(self, node: int) -> list[int]:
        """Destinations node ``node`` serves, sorted."""
        return sorted(self._served.get(node, ()))

    def upstream_neighbors(self, node: int, dest: int) -> frozenset[int]:
        """Physical nodes with a virtual link into ``(node, dest)``."""
        return frozenset(self._upstream.get((node, dest), ()))

    def downstream_neighbor(self, node: int, dest: int) -> int | None:
        """Next hop of the virtual node ``(node, dest)``; None at the
        destination itself (or for non-serving nodes)."""
        return self._downstream.get((node, dest))

    def local_flows(self, node: int, dest: int) -> list[int]:
        """Flow ids sourced at ``node`` destined for ``dest``."""
        return list(self._local_flows.get((node, dest), ()))

    def flows_on(self, a_link: Link, dest: int) -> frozenset[int]:
        """Flows whose path traverses the virtual link."""
        return frozenset(self._flows_on_vlink.get((a_link, dest), ()))

    def flow_links(self, flow_id: int) -> list[Link]:
        """Directed links on a flow's routing path.

        Raises:
            ProtocolError: for unknown flow ids.
        """
        try:
            return list(self._flow_links[flow_id])
        except KeyError:
            raise ProtocolError(f"unknown flow {flow_id}") from None

    def nodes_on_path(self, flow_id: int) -> list[int]:
        """Node ids on the flow's path, source through destination."""
        links = self.flow_links(flow_id)
        return [links[0][0]] + [j for (_i, j) in links]
