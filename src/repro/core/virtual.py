"""Virtual nodes, virtual links, and the grand virtual network (§5.2).

Each physical node ``i`` serving destination ``t`` is modeled as a
virtual node ``i_t`` carrying one queue.  All virtual nodes for ``t``
form the *virtual network* of ``t``; a virtual link ``(i_t, j_t)``
exists when ``j`` is ``i``'s next hop toward ``t``.  The union over
destinations is the *grand virtual network*.

In code a virtual node is the pair ``(node_id, dest)`` and a virtual
link is ``(link, dest)`` with ``link`` the directed physical pair —
only nodes on some flow's routing path are instantiated, matching the
paper's "a node serves a destination if it is on the routing path of a
flow with that destination".
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.flows.flow import FlowSet
from repro.routing.table import RouteSet
from repro.topology.network import Link

#: A virtual node: (physical node id, destination).
VirtualNode = tuple[int, int]
#: A virtual link: (directed physical link, destination).
VirtualLink = tuple[Link, int]


class GrandVirtualNetwork:
    """Derived structure of all virtual networks for a flow set."""

    def __init__(self, routes: RouteSet, flows: FlowSet) -> None:
        self.routes = routes
        self.flows = flows
        self._vlinks: dict[int, set[Link]] = {}  # dest -> directed links
        self._upstream: dict[VirtualNode, set[int]] = {}
        self._downstream: dict[VirtualNode, int] = {}
        self._served: dict[int, set[int]] = {}  # node -> destinations
        self._local_flows: dict[VirtualNode, list[int]] = {}
        self._flow_links: dict[int, list[Link]] = {}
        self._flows_on_vlink: dict[VirtualLink, set[int]] = {}

        for flow in flows:
            path_links = routes.path_links(flow.source, flow.destination)
            if not path_links:
                raise ProtocolError(f"flow {flow.flow_id} has an empty path")
            self._flow_links[flow.flow_id] = path_links
            dest = flow.destination
            links_for_dest = self._vlinks.setdefault(dest, set())
            for i, j in path_links:
                links_for_dest.add((i, j))
                self._flows_on_vlink.setdefault(((i, j), dest), set()).add(
                    flow.flow_id
                )
                self._served.setdefault(i, set()).add(dest)
                self._served.setdefault(j, set()).add(dest)
                self._upstream.setdefault((j, dest), set()).add(i)
                self._downstream[(i, dest)] = j
            self._local_flows.setdefault((flow.source, dest), []).append(
                flow.flow_id
            )

    # --- queries --------------------------------------------------------------

    def destinations(self) -> list[int]:
        """All destinations with a virtual network, sorted."""
        return sorted(self._vlinks)

    def virtual_links(self, dest: int) -> list[Link]:
        """Directed physical links of the virtual network for ``dest``."""
        return sorted(self._vlinks.get(dest, ()))

    def all_virtual_links(self) -> list[VirtualLink]:
        """Every (link, dest) pair in the grand virtual network."""
        return sorted(
            (a_link, dest)
            for dest, links in self._vlinks.items()
            for a_link in links
        )

    def serves(self, node: int, dest: int) -> bool:
        """True if node ``node`` has a virtual node for ``dest``."""
        return dest in self._served.get(node, ())

    def served_destinations(self, node: int) -> list[int]:
        """Destinations node ``node`` serves, sorted."""
        return sorted(self._served.get(node, ()))

    def upstream_neighbors(self, node: int, dest: int) -> frozenset[int]:
        """Physical nodes with a virtual link into ``(node, dest)``."""
        return frozenset(self._upstream.get((node, dest), ()))

    def downstream_neighbor(self, node: int, dest: int) -> int | None:
        """Next hop of the virtual node ``(node, dest)``; None at the
        destination itself (or for non-serving nodes)."""
        return self._downstream.get((node, dest))

    def local_flows(self, node: int, dest: int) -> list[int]:
        """Flow ids sourced at ``node`` destined for ``dest``."""
        return list(self._local_flows.get((node, dest), ()))

    def flows_on(self, a_link: Link, dest: int) -> frozenset[int]:
        """Flows whose path traverses the virtual link."""
        return frozenset(self._flows_on_vlink.get((a_link, dest), ()))

    def flow_links(self, flow_id: int) -> list[Link]:
        """Directed links on a flow's routing path.

        Raises:
            ProtocolError: for unknown flow ids.
        """
        try:
            return list(self._flow_links[flow_id])
        except KeyError:
            raise ProtocolError(f"unknown flow {flow_id}") from None

    def nodes_on_path(self, flow_id: int) -> list[int]:
        """Node ids on the flow's path, source through destination."""
        links = self.flow_links(flow_id)
        return [links[0][0]] + [j for (_i, j) in links]
