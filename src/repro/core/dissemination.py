"""Dissemination scope and overhead accounting (§6.2).

Wireless-link state must reach every node with a link contending with
it — all nodes within two hops of either endpoint.  The paper uses
per-node dominating sets to rebroadcast efficiently; our default
control plane is out-of-band (state exchange is instantaneous at
period boundaries), but the *scope* rules are enforced so that no node
ever consults state it could not have received, and the rebroadcast
cost that the in-band scheme would incur is accounted for.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.contention import ContentionGraph
from repro.topology.dominating import dominating_sets
from repro.topology.neighbors import within_two_hops
from repro.topology.network import Link, Topology


def _canonical(a_link: Link) -> Link:
    i, j = a_link
    return (i, j) if i <= j else (j, i)


class DisseminationScope:
    """Precomputed dissemination visibility over a static topology.

    The paper's requirement is that a link's state reach "all nodes
    that have a link contending with (i, j)".  Its realization —
    "all those nodes within two hops away from either i or j" — is
    insufficient when the carrier-sense range exceeds the transmission
    range: two links can contend without being joined by any
    connectivity path of length two.  We therefore take the union of
    the two-hop neighborhood and the endpoints of contending links
    (the latter computed from the contention graph, which every node
    derives from its sensed neighborhood after deployment).
    """

    def __init__(
        self, topology: Topology, contention: ContentionGraph | None = None
    ) -> None:
        self.topology = topology
        self.contention = contention
        self._within2: dict[int, frozenset[int]] = {
            node: within_two_hops(topology, node) | {node}
            for node in topology.node_ids
        }
        self.dominating = dominating_sets(topology)
        # Overhead accounting for the in-band scheme this models.
        self.link_state_broadcasts = 0
        self.notice_broadcasts = 0

    def _contending_nodes(self, a_link: Link) -> frozenset[int]:
        if self.contention is None:
            return frozenset()
        canon = _canonical(a_link)
        try:
            contenders = self.contention.contenders(canon)
        except TopologyError:  # link not part of the contention graph
            return frozenset()
        return frozenset(node for other in contenders for node in other)

    def audience_of_link(self, a_link: Link) -> frozenset[int]:
        """Nodes entitled to the state of wireless link ``a_link``:
        everyone within two hops of either endpoint, plus the
        endpoints of every contending link."""
        i, j = _canonical(a_link)
        return self._within2[i] | self._within2[j] | self._contending_nodes(a_link)

    def audience_of_node(self, node: int) -> frozenset[int]:
        """Nodes within two hops of ``node`` (inclusive) — the audience
        of a bandwidth-violation notice."""
        return self._within2[node]

    def link_visible(self, node: int, a_link: Link) -> bool:
        """May ``node`` consult the state of ``a_link``?"""
        return node in self.audience_of_link(a_link)

    def record_link_state_change(self, a_link: Link) -> None:
        """Account the broadcasts the in-band scheme would send: both
        endpoints broadcast, and their dominating-set members
        rebroadcast."""
        i, j = _canonical(a_link)
        self.link_state_broadcasts += 2
        self.link_state_broadcasts += len(self.dominating[i]) + len(
            self.dominating[j]
        )

    def record_notice(self, origin: int) -> None:
        """Account one violation-notice dissemination from ``origin``."""
        self.notice_broadcasts += 1 + len(self.dominating[origin])
