"""GMP configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class GmpConfig:
    """Parameters of the Global Maxmin Protocol.

    Defaults follow the paper's simulation setup (§7): 4-second
    periods, β = 10%, a 25% buffer-saturation threshold, and 10-packet
    per-destination queues.

    Attributes:
        period: measurement/adjustment period length in seconds.  The
            paper alternates a 4 s measurement period with a 4 s
            adjustment period; with our instantaneous control plane the
            adjustment collapses to the period boundary, so one cycle
            here corresponds to half a paper cycle.
        beta: equality tolerance — two rates/occupancies are "equal"
            when they differ by less than ``beta`` (fraction, not
            percent) of the larger one.
        omega_threshold: buffer is *saturated* when it was full for
            more than this fraction of the period.
        queue_capacity: per-destination queue capacity in packets.
        big_gap_factor: when L1 > factor * S1, requests halve/double
            rather than stepping by β (§6.3).
        additive_increase: packets/second added to an uncontested rate
            limit each period (rate-limit condition).
        min_rate: floor for rate limits, packets/second.
        stale_timeout: backpressure cache staleness (overhearing gate).
        stamp_all_packets: if True every generated packet carries the
            flow's normalized rate (default; denser sampling of the
            same information); if False only packets in the second
            half of each period do (the paper's literal phrasing).
        removal_persistence: consecutive periods a flow must achieve
            materially less than its rate limit before the limit is
            deemed unnecessary and removed; ``None`` (default) disables
            removal entirely.  The paper removes such limits
            immediately, but under per-destination queueing a source's
            local packets win queue slots far more often than relayed
            ones, so a rate limit that *looks* slack (the flow achieves
            less than it) is often the only thing preventing the
            source from flooding its own relay queue: removing it
            causes periodic flood/re-clamp cycles.  Additive increase
            still probes upward, so removal is an optimization, not a
            correctness requirement — see EXPERIMENTS.md for the
            ablation.
        violation_persistence: consecutive periods a bandwidth
            violation must persist on the same wireless link before
            rate adjustments are issued for it.  One-period dips are
            measurement noise; reacting to them repeatedly drags down
            high-rate flows that legitimately ride above the victim
            (multiplicative decrease vs. additive recovery makes even
            rare spurious hits pin them).
        control_delay_periods: extra periods between computing rate
            adjustments and applying them at the sources.  0 models an
            instantaneous control plane (default); 1 reproduces the
            paper's separate adjustment period (requests computed from
            one measurement period take effect a full period later).
        neighbor_timeout: seconds without hearing any packet from a
            node before the protocol treats that node's measurements as
            stale: its virtual nodes fall back to the *unsaturated*
            classification and its accumulated violation/link state is
            purged.  ``None`` (default) disables the watchdog — correct
            for fault-free runs, where a silent node is merely idle.
    """

    period: float = 4.0
    beta: float = 0.10
    omega_threshold: float = 0.25
    queue_capacity: int = 10
    big_gap_factor: float = 3.0
    additive_increase: float = 8.0
    min_rate: float = 1.0
    stale_timeout: float = 0.1
    stamp_all_packets: bool = True
    removal_persistence: int | None = None
    violation_persistence: int = 2
    control_delay_periods: int = 0
    neighbor_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigError(f"period must be positive: {self.period}")
        if not 0 < self.beta < 1:
            raise ConfigError(f"beta must be in (0, 1): {self.beta}")
        if not 0 < self.omega_threshold < 1:
            raise ConfigError(
                f"omega_threshold must be in (0, 1): {self.omega_threshold}"
            )
        if self.queue_capacity < 1:
            raise ConfigError(f"queue_capacity must be >= 1: {self.queue_capacity}")
        if self.big_gap_factor <= 1:
            raise ConfigError(f"big_gap_factor must exceed 1: {self.big_gap_factor}")
        if self.additive_increase <= 0:
            raise ConfigError(
                f"additive_increase must be positive: {self.additive_increase}"
            )
        if self.min_rate <= 0:
            raise ConfigError(f"min_rate must be positive: {self.min_rate}")
        if self.stale_timeout <= 0:
            raise ConfigError(f"stale_timeout must be positive: {self.stale_timeout}")
        if self.removal_persistence is not None and self.removal_persistence < 1:
            raise ConfigError(
                f"removal_persistence must be >= 1 or None: "
                f"{self.removal_persistence}"
            )
        if self.violation_persistence < 1:
            raise ConfigError(
                f"violation_persistence must be >= 1: {self.violation_persistence}"
            )
        if self.control_delay_periods < 0:
            raise ConfigError(
                f"control_delay_periods must be >= 0: {self.control_delay_periods}"
            )
        if self.neighbor_timeout is not None and self.neighbor_timeout <= 0:
            raise ConfigError(
                f"neighbor_timeout must be positive or None: {self.neighbor_timeout}"
            )
