"""The GMP protocol engine (§6).

Drives the measurement/adjustment cycle over a set of node stacks:

* mid-period: measure each flow's rate at its source (first half of
  the period) and begin stamping outgoing packets with the flow's
  normalized rate;
* period boundary: summarize buffer Ω, virtual-link rates, carried
  normalized rates, and channel occupancies; classify links; test the
  source / buffer-saturated / bandwidth-saturated conditions; collect
  the resulting rate-adjustment requests per flow (control-packet
  aggregation); apply them at the sources; apply the rate-limit
  condition (additive increase) and remove unnecessary limits.

Locality discipline: every decision consults only the deciding node's
own measurements plus state that the two-hop dissemination scope
entitles it to.  The control plane itself is out-of-band (instant
delivery at the boundary), standing in for the paper's piggybacked
bits, dominating-set rebroadcasts, and per-flow control packets whose
cost is accounted in :class:`~repro.core.dissemination.DisseminationScope`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.buffers.queues import PerDestinationBuffer
from repro.core.classification import LinkType, buffer_is_saturated, classify_link
from repro.core.conditions import (
    AdjacentVirtualLinkView,
    BandwidthViolation,
    UpstreamView,
    VirtualNodeView,
    beta_equal,
    evaluate_source_and_buffer_conditions,
    find_bandwidth_violation,
    respond_to_bandwidth_violation,
)
from repro.core.config import GmpConfig
from repro.core.dissemination import DisseminationScope
from repro.core.measurement import MuTracker, combine_occupancy
from repro.core.requests import RateRequest, RequestKind, aggregate_requests
from repro.core.virtual import GrandVirtualNetwork
from repro.errors import ProtocolError
from repro.flows.flow import Flow, FlowSet
from repro.flows.packet import Packet
from repro.flows.traffic import TrafficSource
from repro.mac.base import MacLayer
from repro.routing.table import RouteSet
from repro.sim.kernel import Simulator
from repro.stack import NodeStack
from repro.topology.cliques import Clique, maximal_cliques
from repro.topology.contention import ContentionGraph
from repro.topology.network import Link, Topology


def _canonical(a_link: Link) -> Link:
    i, j = a_link
    return (i, j) if i <= j else (j, i)


@dataclass
class _SourceState:
    flow: Flow
    traffic: TrafficSource
    mu: float | None = None  # normalized rate over the last full period
    rate: float | None = None  # measured rate over the last full period
    stamp_mu: float | None = None  # first-half measurement, piggybacked
    admitted_snapshot: int = 0
    admitted_snapshot_mid: int = 0
    below_limit_periods: int = 0  # consecutive periods rate << limit
    limit_history: list[float | None] = field(default_factory=list)


class _Observer:
    """StackObserver fanning packet events into the protocol's trackers."""

    def __init__(self, protocol: "GmpProtocol") -> None:
        self._protocol = protocol

    def on_forward(self, node_id: int, packet: Packet, next_hop: int) -> None:
        self._protocol._trackers[node_id].observe(
            (node_id, next_hop), packet.destination, packet
        )
        self._protocol._note_activity(node_id)

    def on_receive(self, node_id: int, packet: Packet, from_node: int) -> None:
        self._protocol._trackers[node_id].observe(
            (from_node, node_id), packet.destination, packet
        )
        # Receiving proves both endpoints of the hop are alive.
        self._protocol._note_activity(node_id, from_node)


class GmpProtocol:
    """Distributed global-maxmin rate adaptation over node stacks.

    Construction order in a scenario: topology/routes/flows → MAC →
    stacks (with :meth:`observer` attached) → traffic sources (with
    :meth:`stamp` as their ``on_generate`` hook) → ``register_source``
    for each flow → :meth:`start`.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        routes: RouteSet,
        flows: FlowSet,
        mac: MacLayer,
        stacks: dict[int, NodeStack],
        *,
        config: GmpConfig | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.flows = flows
        self.mac = mac
        self.stacks = stacks
        self.config = config or GmpConfig()
        self.gvn = GrandVirtualNetwork(routes, flows)
        self.graph = ContentionGraph(topology)
        self.scope = DisseminationScope(topology, self.graph)
        self.cliques = maximal_cliques(self.graph)
        self._link_cliques: dict[Link, list[Clique]] = {}
        for clique in self.cliques:
            for member in clique.links:
                self._link_cliques.setdefault(member, []).append(clique)

        self._trackers: dict[int, MuTracker] = {
            node: MuTracker() for node in stacks
        }
        self._arrival_snapshots: dict[int, dict[tuple[int, int], int]] = {
            node: {} for node in stacks
        }
        self._sources: dict[int, _SourceState] = {}
        # Archive of departed flows' states (limit history etc.): pure
        # record keeping, never consulted by decision code.
        self._departed: dict[int, _SourceState] = {}
        self._observer = _Observer(self)
        self._violation_streak: dict[Link, int] = {}
        self._pending_adjustments: list[dict[int, list[RateRequest]]] = []
        self._last_link_state: dict[Link, tuple[float, float]] = {}
        self._started = False
        self.last_busy_fractions: dict[int, float] = {}

        # Fault tolerance: per-node liveness and control-plane loss.
        self._last_heard: dict[int, float] = {}
        self._known_down: set[int] = set()
        self._control_drop_prob = 0.0
        self._control_drop_until = float("-inf")
        self._control_rng = None

        # Introspection / statistics.
        self.periods_completed = 0
        self.requests_issued: list[RateRequest] = []
        self.violations_found = 0
        self.control_requests_dropped = 0
        self.stale_overrides = 0  # (node, dest) saturations vetoed for staleness

        # Telemetry (None when the subsystem is disabled).
        self._tm = sim.telemetry if sim.telemetry.enabled else None
        self._last_condition: dict[tuple[Link, int], LinkType] = {}

    # --- wiring ------------------------------------------------------------------

    def observer(self) -> _Observer:
        """The StackObserver to attach to every node stack."""
        return self._observer

    def register_source(self, flow_id: int, traffic: TrafficSource) -> None:
        """Associate a flow's traffic source with the protocol."""
        flow = self.flows.get(flow_id)
        if flow_id in self._sources:
            raise ProtocolError(f"source for flow {flow_id} already registered")
        state = _SourceState(flow=flow, traffic=traffic)
        state.admitted_snapshot = traffic.admitted
        state.admitted_snapshot_mid = traffic.admitted
        self._sources[flow_id] = state

    # --- dynamic workloads (flow churn) ------------------------------------------

    def add_flow(self, flow: Flow, traffic: TrafficSource) -> None:
        """Register a flow arriving mid-run.

        Adds the flow to the shared :class:`FlowSet`, grafts its path
        into the grand virtual network, and registers its traffic
        source; the next period boundary measures it like any other
        flow (its first period understates the rate if it arrived
        mid-period — one period of noise, exactly like start-up).

        Raises:
            ProtocolError: on duplicate ids or an unroutable flow.
        """
        self.flows.add(flow)
        try:
            self.gvn.add_flow(flow)
        except ProtocolError:
            self.flows.remove(flow.flow_id)
            raise
        self.register_source(flow.flow_id, traffic)
        self._departed.pop(flow.flow_id, None)
        if self._tm is not None:
            self._tm.event(self.sim.now, "gmp.flow_arrived", flow=flow.flow_id)

    def remove_flow(self, flow_id: int) -> None:
        """Tear down every trace of a departing flow.

        Releases the source registration and its rate limit, removes
        the flow from the :class:`FlowSet` and the grand virtual
        network, and garbage-collects per-virtual-link decision state
        (condition memory, violation streaks) plus any in-flight
        control requests addressed to the flow — a departed flow must
        not influence surviving flows.  The state is archived so
        :meth:`limit_history` keeps answering for it.

        Raises:
            ProtocolError: for unknown flow ids.
        """
        state = self._sources.pop(flow_id, None)
        if state is None:
            raise ProtocolError(f"unknown flow {flow_id}")
        state.traffic.set_rate_limit(None)
        state.limit_history.append(None)
        self._departed[flow_id] = state
        self.flows.remove(flow_id)
        vanished = self.gvn.remove_flow(state.flow)
        for vlink in vanished:
            self._last_condition.pop(vlink, None)
        live_links = {a_link for a_link, _dest in self.gvn.all_virtual_links()}
        for a_link in [
            a_link for a_link in self._violation_streak if a_link not in live_links
        ]:
            del self._violation_streak[a_link]
        # Control packets still in flight toward the departed source
        # (control_delay_periods > 0) die with it.
        for pending in self._pending_adjustments:
            pending.pop(flow_id, None)
        if self._tm is not None:
            self._tm.event(self.sim.now, "gmp.flow_departed", flow=flow_id)

    def departure_audit(self, flow_id: int) -> list[str]:
        """Post-departure state audit: anything still referencing a
        departed flow, as human-readable findings (empty when clean).

        The churn engine runs this after every departure (and the fuzz
        oracles at end of run); a non-empty result means per-flow state
        leaked and may still be steering surviving flows.
        """
        residue: list[str] = []
        if flow_id in self._sources:
            residue.append(f"flow {flow_id}: source state still registered")
        if flow_id in self.flows:
            residue.append(f"flow {flow_id}: still present in the flow set")
        residue.extend(self.gvn.flow_residue(flow_id))
        for index, pending in enumerate(self._pending_adjustments):
            if flow_id in pending:
                residue.append(
                    f"flow {flow_id}: pending rate adjustment retained "
                    f"(slot {index})"
                )
        state = self._departed.get(flow_id)
        if state is not None and state.traffic.rate_limit is not None:
            residue.append(
                f"flow {flow_id}: rate limit "
                f"{state.traffic.rate_limit:g} still installed on its source"
            )
        live_vlinks = set(self.gvn.all_virtual_links())
        for vlink in sorted(self._last_condition):
            if vlink not in live_vlinks:
                residue.append(
                    f"stale condition entry for defunct virtual link {vlink}"
                )
        live_links = {a_link for a_link, _dest in live_vlinks}
        for a_link in sorted(self._violation_streak):
            if a_link not in live_links:
                residue.append(
                    f"stale violation streak for defunct link {a_link}"
                )
        return residue

    def stamp(self, packet: Packet) -> None:
        """``on_generate`` hook: piggyback the flow's normalized rate.

        The paper stamps packets during the second half of each
        measurement period, once the rate measured over the first half
        is available; ``stamp_all_packets`` extends this to the whole
        period (same information, denser sampling).
        """
        state = self._sources.get(packet.flow_id)
        if state is None or state.stamp_mu is None:
            return
        period = self.config.period
        in_second_half = (self.sim.now % period) >= period / 2
        if self.config.stamp_all_packets or in_second_half:
            packet.carried_mu = state.stamp_mu

    def start(self) -> None:
        """Schedule the periodic protocol machinery."""
        if self._started:
            raise ProtocolError("GmpProtocol already started")
        missing = [flow.flow_id for flow in self.flows if flow.flow_id not in self._sources]
        if missing:
            raise ProtocolError(f"flows without registered sources: {missing}")
        self._started = True
        period = self.config.period
        self._last_heard = {node: self.sim.now for node in self.stacks}
        self.sim.every(period, self._on_boundary, start_at=period, tag="gmp.boundary")
        self.sim.every(
            period, self._on_midpoint, start_at=period / 2, tag="gmp.midpoint"
        )

    # --- fault tolerance ----------------------------------------------------------

    def _note_activity(self, *nodes: int) -> None:
        now = self.sim.now
        for node in nodes:
            if node not in self._known_down:
                self._last_heard[node] = now

    def on_node_down(self, node: int) -> None:
        """Explicit crash notification (fault injector): immediately
        treat the node's measurements as stale rather than waiting for
        ``neighbor_timeout`` to expire."""
        if node not in self.stacks:
            raise ProtocolError(f"unknown node {node}")
        self._known_down.add(node)
        self._purge_node_state(node)

    def on_node_up(self, node: int) -> None:
        """The node recovered; trust its measurements again."""
        if node not in self.stacks:
            raise ProtocolError(f"unknown node {node}")
        self._known_down.discard(node)
        self._last_heard[node] = self.sim.now

    def set_control_loss(self, drop_prob: float, until: float) -> None:
        """Drop each computed rate-adjustment request with probability
        ``drop_prob`` while ``sim.now < until`` (lossy control plane).

        Raises:
            ProtocolError: if ``drop_prob`` is outside [0, 1].
        """
        if not 0.0 <= drop_prob <= 1.0:
            raise ProtocolError(f"drop probability must be in [0, 1]: {drop_prob}")
        self._control_drop_prob = drop_prob
        self._control_drop_until = until
        if self._control_rng is None:
            self._control_rng = self.sim.rng.stream("gmp.control")

    def stale_nodes(self) -> set[int]:
        """Nodes whose measurements the protocol currently distrusts:
        explicitly reported down, or silent past ``neighbor_timeout``."""
        stale = set(self._known_down)
        timeout = self.config.neighbor_timeout
        if timeout is not None:
            now = self.sim.now
            for node, heard in self._last_heard.items():
                if now - heard > timeout:
                    stale.add(node)
        return stale

    def _purge_node_state(self, node: int) -> None:
        """Forget accumulated per-link state touching ``node``: a
        crashed node's history must not feed future decisions."""
        for a_link in [
            a_link for a_link in self._violation_streak if node in a_link
        ]:
            del self._violation_streak[a_link]
        for a_link in [
            a_link for a_link in self._last_link_state if node in a_link
        ]:
            del self._last_link_state[a_link]
        self._trackers[node] = MuTracker()

    def _control_request_lost(self) -> bool:
        if self._control_drop_prob <= 0.0 or self.sim.now >= self._control_drop_until:
            return False
        assert self._control_rng is not None
        return float(self._control_rng.random()) < self._control_drop_prob

    # --- mid-period: source rate measurement ------------------------------------------

    def _on_midpoint(self) -> None:
        """Measure each flow's rate over the first half of the period;
        this is the value piggybacked on packets during the second half
        (paper §6.2, *Normalized Rate*)."""
        half = self.config.period / 2
        for state in self._sources.values():
            delta = state.traffic.admitted - state.admitted_snapshot_mid
            state.stamp_mu = state.flow.normalized(delta / half)

    # --- period boundary ----------------------------------------------------------

    def _on_boundary(self) -> None:
        now = self.sim.now
        period = self.config.period

        # Decision-grade flow rates: measured over the whole period
        # (the half-period stamp measurement is too noisy for rate
        # adjustment decisions).
        for state in self._sources.values():
            delta = state.traffic.admitted - state.admitted_snapshot
            state.rate = delta / period
            state.mu = state.flow.normalized(state.rate)

        saturated = self._measure_buffer_saturation(now)
        # Graceful degradation: a node nothing has been heard from
        # (crashed, or silent past neighbor_timeout) contributes no
        # saturation claims — its virtual nodes fall back to the
        # *unsaturated* classification instead of freezing the last
        # pre-failure measurement into every future decision.
        stale = self.stale_nodes()
        if stale:
            for key, value in saturated.items():
                if value and key[0] in stale:
                    saturated[key] = False
                    self.stale_overrides += 1
            for a_link in [
                a_link
                for a_link in self._violation_streak
                if a_link[0] in stale or a_link[1] in stale
            ]:
                del self._violation_streak[a_link]
        vlink_rates = self._measure_vlink_rates(period)
        occupancy = self._measure_occupancy(period)
        self.last_busy_fractions = self._measure_busy_fractions(period)
        mu_by_vlink, primaries_by_vlink = self._summarize_mus()
        types_by_vlink = self._classify_vlinks(saturated, vlink_rates, mu_by_vlink)
        wlink_mu = self._wireless_link_mus(mu_by_vlink)
        self._account_link_state_broadcasts(occupancy, wlink_mu)

        requests: dict[int, list[RateRequest]] = {}

        for request in self._evaluate_node_conditions(
            saturated, mu_by_vlink, primaries_by_vlink, types_by_vlink
        ):
            requests.setdefault(request.flow_id, []).append(request)

        for request in self._evaluate_bandwidth_conditions(
            types_by_vlink, mu_by_vlink, primaries_by_vlink, occupancy, wlink_mu
        ):
            requests.setdefault(request.flow_id, []).append(request)

        if self._tm is not None:
            self._record_boundary(now, period, types_by_vlink, requests)

        # Control-plane latency: requests computed this period take
        # effect `control_delay_periods` boundaries later (0 = now).
        self._pending_adjustments.append(requests)
        if len(self._pending_adjustments) > self.config.control_delay_periods:
            self._apply_adjustments(self._pending_adjustments.pop(0))

        for tracker in self._trackers.values():
            tracker.reset()
        for state in self._sources.values():
            state.admitted_snapshot = state.traffic.admitted
            state.admitted_snapshot_mid = state.traffic.admitted
            state.limit_history.append(state.traffic.rate_limit)
        self.periods_completed += 1

    # --- telemetry ---------------------------------------------------------------------

    def _record_boundary(
        self,
        now: float,
        period: float,
        types_by_vlink: dict[tuple[Link, int], LinkType],
        requests: dict[int, list[RateRequest]],
    ) -> None:
        """Record per-period telemetry (enabled runs only): flow rate /
        μ / limit trajectories, link-condition dwell and transitions,
        and the requests computed this period."""
        assert self._tm is not None
        registry = self._tm.registry
        for flow_id, state in sorted(self._sources.items()):
            if state.rate is not None:
                registry.series("gmp.flow_rate", flow=flow_id).record(
                    now, state.rate
                )
            if state.mu is not None:
                registry.series("gmp.flow_mu", flow=flow_id).record(now, state.mu)
            limit = state.traffic.rate_limit
            if limit is not None:
                registry.series("gmp.flow_limit", flow=flow_id).record_changed(
                    now, limit
                )
        for (a_link, dest), link_type in types_by_vlink.items():
            label = f"{a_link[0]}->{a_link[1]}"
            registry.counter(
                "gmp.condition_seconds",
                link=label,
                dest=dest,
                state=link_type.name.lower(),
            ).inc(period)
            previous = self._last_condition.get((a_link, dest))
            if previous is not link_type:
                self._tm.event(
                    now,
                    "gmp.condition_change",
                    link=label,
                    dest=dest,
                    old=previous.name.lower() if previous else "none",
                    new=link_type.name.lower(),
                )
                self._last_condition[(a_link, dest)] = link_type
        for flow_requests in requests.values():
            for request in flow_requests:
                registry.counter(
                    "gmp.requests",
                    kind=request.kind.name.lower(),
                    reason=request.reason,
                ).inc()

    # --- measurement helpers -----------------------------------------------------------

    def _measure_buffer_saturation(self, now: float) -> dict[tuple[int, int], bool]:
        """Ω-threshold saturation per virtual node (node, dest)."""
        result: dict[tuple[int, int], bool] = {}
        for node, stack in self.stacks.items():
            buffer = stack.buffer
            if not isinstance(buffer, PerDestinationBuffer):
                raise ProtocolError(
                    f"GMP requires per-destination buffers; node {node} has "
                    f"{type(buffer).__name__}"
                )
            for dest in self.gvn.served_destinations(node):
                if dest == node:
                    continue
                omega = buffer.fullness(dest, now)
                result[(node, dest)] = buffer_is_saturated(
                    omega, self.config.omega_threshold
                )
            buffer.reset_meters(now)
        return result

    def _measure_vlink_rates(self, period: float) -> dict[tuple[Link, int], float]:
        """Receiver-side packets/second per virtual link."""
        rates: dict[tuple[Link, int], float] = {}
        for node, stack in self.stacks.items():
            snapshot = self._arrival_snapshots[node]
            for (upstream, dest), count in stack.arrivals.items():
                delta = count - snapshot.get((upstream, dest), 0)
                snapshot[(upstream, dest)] = count
                rates[((upstream, node), dest)] = delta / period
        return rates

    def _measure_occupancy(self, period: float) -> dict[Link, float]:
        """Channel occupancy fraction per canonical wireless link."""
        halves: dict[Link, float] = {}
        for node in self.stacks:
            for a_link, airtime in self.mac.occupancy_snapshot(node).items():
                canon = _canonical(a_link)
                halves[canon] = halves.get(canon, 0.0) + airtime
            self.mac.reset_occupancy(node)
        return {
            a_link: combine_occupancy(total, 0.0, period)
            for a_link, total in halves.items()
        }

    def _account_link_state_broadcasts(
        self, occupancy: dict[Link, float], wlink_mu: dict[Link, float]
    ) -> None:
        """Charge the in-band dissemination cost for every wireless
        link whose state changed since the last period (§6.2: only
        changed states are re-broadcast, through dominating sets).
        State comparisons use the protocol's β-equality so jitter below
        the decision resolution does not count as a change."""
        beta = self.config.beta
        for a_link in sorted(set(occupancy) | set(wlink_mu)):
            state = (occupancy.get(a_link, 0.0), wlink_mu.get(a_link, 0.0))
            previous = self._last_link_state.get(a_link)
            changed = previous is None or not (
                beta_equal(previous[0], state[0], beta)
                and beta_equal(previous[1], state[1], beta)
            )
            if changed:
                self.scope.record_link_state_change(a_link)
                self._last_link_state[a_link] = state

    def _measure_busy_fractions(self, period: float) -> dict[int, float]:
        """Fraction of the period each node perceived the channel busy."""
        fractions: dict[int, float] = {}
        for node in self.stacks:
            seconds = self.mac.busy_snapshot(node)
            self.mac.reset_busy(node)
            fractions[node] = min(1.0, seconds / period) if period > 0 else 0.0
        return fractions

    def _summarize_mus(
        self,
    ) -> tuple[
        dict[tuple[Link, int], float], dict[tuple[Link, int], frozenset[int]]
    ]:
        """Merge both endpoints' trackers per virtual link."""
        beta = self.config.beta
        merged: dict[tuple[Link, int], dict[int, float]] = {}
        for tracker in self._trackers.values():
            for a_link, dest in tracker.tracked_vlinks():
                mu, primaries = tracker.summarize(a_link, dest, beta=beta)
                if mu is None:
                    continue
                flows = merged.setdefault((a_link, dest), {})
                for flow in primaries:
                    flows[flow] = max(flows.get(flow, 0.0), mu)
        # A source knows the normalized rates of its own flows without
        # any piggybacking; merge them into the first-hop virtual link.
        # This keeps a *completely starved* link visible (it would
        # otherwise carry no stamped packets, hiding the victim from
        # the bandwidth-saturated condition).
        for flow_id, state in self._sources.items():
            if state.mu is None:
                continue
            first_link = self.gvn.flow_links(flow_id)[0]
            key = (first_link, state.flow.destination)
            flows = merged.setdefault(key, {})
            flows[flow_id] = max(flows.get(flow_id, 0.0), state.mu)
        mu_by_vlink: dict[tuple[Link, int], float] = {}
        primaries_by_vlink: dict[tuple[Link, int], frozenset[int]] = {}
        for key, flows in merged.items():
            top = max(flows.values())
            mu_by_vlink[key] = top
            primaries_by_vlink[key] = frozenset(
                flow
                for flow, mu in flows.items()
                if mu >= top * (1.0 - beta)
            )
        return mu_by_vlink, primaries_by_vlink

    def _classify_vlinks(
        self,
        saturated: dict[tuple[int, int], bool],
        vlink_rates: dict[tuple[Link, int], float],
        mu_by_vlink: dict[tuple[Link, int], float],
    ) -> dict[tuple[Link, int], LinkType]:
        """Link types for every virtual link seen this period."""
        keys = set(vlink_rates) | set(mu_by_vlink)
        for dest in self.gvn.destinations():
            for a_link in self.gvn.virtual_links(dest):
                keys.add((a_link, dest))
        types: dict[tuple[Link, int], LinkType] = {}
        for (a_link, dest) in keys:
            i, j = a_link
            up = saturated.get((i, dest), False)
            down = False if j == dest else saturated.get((j, dest), False)
            types[(a_link, dest)] = classify_link(up, down)
        return types

    def _wireless_link_mus(
        self, mu_by_vlink: dict[tuple[Link, int], float]
    ) -> dict[Link, float]:
        """Largest virtual-link μ per canonical wireless link."""
        result: dict[Link, float] = {}
        for (a_link, _dest), mu in mu_by_vlink.items():
            canon = _canonical(a_link)
            if mu > result.get(canon, float("-inf")):
                result[canon] = mu
        return result

    # --- condition evaluation ---------------------------------------------------------

    def _evaluate_node_conditions(
        self,
        saturated: dict[tuple[int, int], bool],
        mu_by_vlink: dict[tuple[Link, int], float],
        primaries_by_vlink: dict[tuple[Link, int], frozenset[int]],
        types_by_vlink: dict[tuple[Link, int], LinkType],
    ) -> list[RateRequest]:
        """Source + buffer-saturated conditions at every saturated
        virtual node."""
        requests: list[RateRequest] = []
        for (node, dest), is_saturated in sorted(saturated.items()):
            if not is_saturated:
                continue
            upstream_views = []
            for upstream in sorted(self.gvn.upstream_neighbors(node, dest)):
                vlink = ((upstream, node), dest)
                upstream_views.append(
                    UpstreamView(
                        link=(upstream, node),
                        mu=mu_by_vlink.get(vlink),
                        link_type=types_by_vlink.get(
                            vlink, LinkType.UNSATURATED
                        ),
                        primaries=primaries_by_vlink.get(vlink, frozenset()),
                    )
                )
            local_mus: dict[int, float] = {}
            limited: set[int] = set()
            for flow_id in self.gvn.local_flows(node, dest):
                state = self._sources[flow_id]
                if state.mu is not None:
                    local_mus[flow_id] = state.mu
                if state.traffic.rate_limit is not None:
                    limited.add(flow_id)
            view = VirtualNodeView(
                node=node,
                dest=dest,
                local_flow_mus=local_mus,
                limited_flows=frozenset(limited),
                upstream=tuple(upstream_views),
            )
            requests.extend(
                evaluate_source_and_buffer_conditions(
                    view,
                    beta=self.config.beta,
                    big_gap_factor=self.config.big_gap_factor,
                )
            )
        return requests

    def _evaluate_bandwidth_conditions(
        self,
        types_by_vlink: dict[tuple[Link, int], LinkType],
        mu_by_vlink: dict[tuple[Link, int], float],
        primaries_by_vlink: dict[tuple[Link, int], frozenset[int]],
        occupancy: dict[Link, float],
        wlink_mu: dict[Link, float],
    ) -> list[RateRequest]:
        """Bandwidth-saturated condition: find violations at each
        transmitting node, disseminate, and let contending neighbors
        respond.

        Clique channel occupancy is the sum of the member links'
        measured frame airtime (§6.2) — crucially *not* the sensed
        busy fraction: a clique held below capacity by rate limits has
        an idle channel yet may still throttle a victim link through
        receiver-side interference, and it must stay eligible for
        saturation so its flows can be asked to yield.
        """
        beta = self.config.beta
        requests: list[RateRequest] = []

        # Group bandwidth-saturated virtual links by directed wireless link.
        bw_by_link: dict[Link, dict[int, float]] = {}
        for (a_link, dest), link_type in types_by_vlink.items():
            if link_type is not LinkType.BANDWIDTH_SATURATED:
                continue
            mu = mu_by_vlink.get((a_link, dest))
            if mu is None:
                continue
            bw_by_link.setdefault(a_link, {})[dest] = mu

        violations: list[BandwidthViolation] = []
        for a_link in sorted(bw_by_link):
            canon = _canonical(a_link)
            cliques = self._link_cliques.get(canon, [])
            clique_occ = {
                clique.clique_id: sum(
                    occupancy.get(member, 0.0) for member in clique.links
                )
                for clique in cliques
            }
            clique_mus = {
                clique.clique_id: {
                    member: wlink_mu[member]
                    for member in clique.links
                    if member in wlink_mu
                }
                for clique in cliques
            }
            violation = find_bandwidth_violation(
                link=a_link,
                bw_saturated_vlink_mus=bw_by_link[a_link],
                clique_occupancies=clique_occ,
                clique_link_mus=clique_mus,
                beta=beta,
            )
            if violation is None:
                self._violation_streak.pop(a_link, None)
                continue
            streak = self._violation_streak.get(a_link, 0) + 1
            self._violation_streak[a_link] = streak
            if streak >= self.config.violation_persistence:
                violations.append(violation)
                self.violations_found += 1
                self.scope.record_notice(a_link[0])
                if self._tm is not None:
                    self._tm.event(
                        self.sim.now,
                        "gmp.violation",
                        link=f"{a_link[0]}->{a_link[1]}",
                        streak=streak,
                    )

        for violation in violations:
            audience = self.scope.audience_of_link(violation.origin_link)
            for node in sorted(audience):
                if node not in self.stacks:
                    continue
                adjacent = self._adjacent_vlink_views(
                    node, types_by_vlink, mu_by_vlink, primaries_by_vlink
                )
                requests.extend(
                    respond_to_bandwidth_violation(
                        node, violation, adjacent, beta=beta
                    )
                )
        return requests

    def _adjacent_vlink_views(
        self,
        node: int,
        types_by_vlink: dict[tuple[Link, int], LinkType],
        mu_by_vlink: dict[tuple[Link, int], float],
        primaries_by_vlink: dict[tuple[Link, int], frozenset[int]],
    ) -> list[AdjacentVirtualLinkView]:
        """Views of node's outgoing virtual links (it transmits on them)."""
        views: list[AdjacentVirtualLinkView] = []
        for dest in self.gvn.served_destinations(node):
            next_hop = self.gvn.downstream_neighbor(node, dest)
            if next_hop is None:
                continue
            a_link = (node, next_hop)
            vlink = (a_link, dest)
            canon = _canonical(a_link)
            clique_ids = frozenset(
                clique.clique_id for clique in self._link_cliques.get(canon, [])
            )
            views.append(
                AdjacentVirtualLinkView(
                    link=a_link,
                    dest=dest,
                    mu=mu_by_vlink.get(vlink),
                    link_type=types_by_vlink.get(vlink, LinkType.UNSATURATED),
                    primaries=primaries_by_vlink.get(vlink, frozenset()),
                    clique_ids=clique_ids,
                )
            )
        return views

    # --- applying adjustments ------------------------------------------------------

    def _apply_adjustments(self, requests: dict[int, list[RateRequest]]) -> None:
        beta = self.config.beta
        for flow_id, state in sorted(self._sources.items()):
            traffic = state.traffic
            # Removing unnecessary rate limits (§6.3, first step).  A
            # limit is unnecessary when the flow persistently achieves
            # materially less than it — one-period dips are measurement
            # noise and removing on them causes flood/re-clamp cycles.
            limit = traffic.rate_limit
            if (
                limit is not None
                and state.rate is not None
                and flow_id not in requests
                and (limit - state.rate) > beta * limit
            ):
                state.below_limit_periods += 1
            else:
                state.below_limit_periods = 0
            if (
                self.config.removal_persistence is not None
                and state.below_limit_periods >= self.config.removal_persistence
            ):
                traffic.set_rate_limit(None)
                state.below_limit_periods = 0
                if self._tm is not None:
                    self._tm.event(
                        self.sim.now,
                        "gmp.limit_removed",
                        flow=flow_id,
                        old_limit=limit,
                    )
                limit = None

            chosen = aggregate_requests(requests.get(flow_id, []))
            if chosen is not None and self._control_request_lost():
                # The aggregated control packet never reached the
                # source; it behaves exactly as if no request existed
                # this period (the rate-limit condition below still
                # runs on purely local knowledge).
                self.control_requests_dropped += 1
                if self._tm is not None:
                    self._tm.registry.counter("gmp.requests_dropped").inc()
                    self._tm.event(
                        self.sim.now, "gmp.request_dropped", flow=flow_id
                    )
                chosen = None
            if chosen is not None:
                self.requests_issued.append(chosen)
            if chosen is None:
                # Rate-limit condition: probe upward, but only from an
                # *achieved* operating point — raising a limit the flow
                # is not reaching just manufactures slack that later
                # reads as an unnecessary limit.
                achieving = (
                    state.rate is None
                    or traffic.rate_limit is None
                    or state.rate >= traffic.rate_limit * (1.0 - 2.0 * beta)
                )
                if traffic.rate_limit is not None and achieving:
                    old_limit = traffic.rate_limit
                    traffic.set_rate_limit(
                        traffic.rate_limit + self.config.additive_increase
                    )
                    if self._tm is not None:
                        self._tm.event(
                            self.sim.now,
                            "gmp.limit_probe",
                            flow=flow_id,
                            old_limit=old_limit,
                            new_limit=traffic.rate_limit,
                        )
                continue
            old_limit = traffic.rate_limit
            if chosen.kind is RequestKind.DECREASE:
                base = state.rate
                if base is None:
                    base = traffic.rate_limit or state.flow.desired_rate
                if traffic.rate_limit is not None:
                    # A transient flood can measure above the standing
                    # limit; never let a *decrease* raise the limit.
                    base = min(base, traffic.rate_limit)
                new_limit = max(self.config.min_rate, base * chosen.multiplier)
                traffic.set_rate_limit(new_limit)
            else:
                if traffic.rate_limit is not None:
                    traffic.set_rate_limit(
                        min(
                            state.flow.desired_rate,
                            traffic.rate_limit * chosen.multiplier,
                        )
                    )
            if self._tm is not None:
                self._tm.registry.counter(
                    "gmp.requests_applied", kind=chosen.kind.name.lower()
                ).inc()
                self._tm.event(
                    self.sim.now,
                    "gmp.adjust",
                    flow=flow_id,
                    kind=chosen.kind.name.lower(),
                    reason=chosen.reason,
                    origin=chosen.origin,
                    multiplier=chosen.multiplier,
                    old_limit=old_limit,
                    new_limit=traffic.rate_limit,
                )

    # --- introspection ----------------------------------------------------------------

    def rate_limits(self) -> dict[int, float | None]:
        """Current rate limit of every flow."""
        return {
            flow_id: state.traffic.rate_limit
            for flow_id, state in self._sources.items()
        }

    def limit_history(self, flow_id: int) -> list[float | None]:
        """Per-period rate-limit trajectory of a flow (departed flows
        answer from the archive)."""
        state = self._sources.get(flow_id) or self._departed.get(flow_id)
        if state is None:
            raise ProtocolError(f"unknown flow {flow_id}")
        return list(state.limit_history)
