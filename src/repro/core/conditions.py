"""The four local conditions and the adjustment rules they trigger.

Pure decision logic (§4.3, §5.3, §6.3): given one virtual node's or
one wireless link's *local view* of the last measurement period,
return the rate-adjustment requests to issue.  Everything here is
side-effect free so the protocol rules are unit-testable without a
simulator.

β-semantics (§6.3): two quantities are *equal* when they differ by
less than β of the larger; one is *smaller* only when it is smaller by
at least that margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classification import LinkType
from repro.core.requests import RateRequest, RequestKind
from repro.topology.network import Link


def beta_equal(a: float, b: float, beta: float) -> bool:
    """True when ``a`` and ``b`` differ by less than ``beta`` of the larger."""
    scale = max(abs(a), abs(b))
    if scale == 0:
        return True
    return abs(a - b) <= beta * scale


def beta_less(a: float, b: float, beta: float) -> bool:
    """True when ``a`` is smaller than ``b`` by at least the β margin."""
    return a < b and not beta_equal(a, b, beta)


# --- source + buffer-saturated conditions (per saturated virtual node) -------


@dataclass(frozen=True)
class UpstreamView:
    """What a virtual node knows about one of its upstream virtual links."""

    link: Link
    mu: float | None  # largest normalized rate carried last period
    link_type: LinkType
    primaries: frozenset[int]  # sources of the packets carrying mu


@dataclass(frozen=True)
class VirtualNodeView:
    """Local view of one saturated virtual node ``(node, dest)``.

    Attributes:
        node: physical node id.
        dest: destination of the virtual network.
        local_flow_mus: normalized rate of each local flow at this
            virtual node (flows sourced here for ``dest``).
        limited_flows: local flows that currently have a rate limit
            (only those can honor an increase request).
        upstream: views of the upstream virtual links.
    """

    node: int
    dest: int
    local_flow_mus: dict[int, float] = field(default_factory=dict)
    limited_flows: frozenset[int] = frozenset()
    upstream: tuple[UpstreamView, ...] = ()


def evaluate_source_and_buffer_conditions(
    view: VirtualNodeView, *, beta: float, big_gap_factor: float = 3.0
) -> list[RateRequest]:
    """Test the source and buffer-saturated conditions at one
    saturated virtual node; return the adjustment requests of §6.3.

    L1 is the largest normalized rate among upstream links and local
    flows; S1 the smallest among local flows and *buffer-saturated*
    upstream links.  When S1 is β-smaller than L1, flows at L1 are
    asked down and flows at S1 (on buffer-saturated links, or local
    flows with a limit) are asked up; the step is halving/doubling when
    ``L1 > big_gap_factor * S1`` and ±β otherwise.
    """
    upstream_mus = [u.mu for u in view.upstream if u.mu is not None]
    candidates_l1 = upstream_mus + list(view.local_flow_mus.values())
    if not candidates_l1:
        return []
    l1 = max(candidates_l1)

    s1_candidates = list(view.local_flow_mus.values()) + [
        u.mu
        for u in view.upstream
        if u.mu is not None and u.link_type is LinkType.BUFFER_SATURATED
    ]
    if not s1_candidates:
        return []
    s1 = min(s1_candidates)

    if not beta_less(s1, l1, beta):
        return []  # conditions satisfied

    big_gap = l1 > big_gap_factor * s1
    down = 0.5 if big_gap else 1.0 - beta
    up = 2.0 if big_gap else 1.0 + beta

    requests: list[RateRequest] = []
    for upstream in view.upstream:
        if upstream.mu is None:
            continue
        if beta_equal(upstream.mu, l1, beta):
            requests.extend(
                RateRequest(flow, RequestKind.DECREASE, down, view.node, "buffer")
                for flow in sorted(upstream.primaries)
            )
        if upstream.link_type is LinkType.BUFFER_SATURATED and beta_equal(
            upstream.mu, s1, beta
        ):
            requests.extend(
                RateRequest(flow, RequestKind.INCREASE, up, view.node, "buffer")
                for flow in sorted(upstream.primaries)
            )
    for flow, mu in sorted(view.local_flow_mus.items()):
        if beta_equal(mu, l1, beta):
            requests.append(
                RateRequest(flow, RequestKind.DECREASE, down, view.node, "source")
            )
        if beta_equal(mu, s1, beta) and flow in view.limited_flows:
            requests.append(
                RateRequest(flow, RequestKind.INCREASE, up, view.node, "source")
            )
    return requests


# --- bandwidth-saturated condition ------------------------------------------------


@dataclass(frozen=True)
class BandwidthViolation:
    """Notice disseminated when a bandwidth-saturated virtual link does
    not hold the largest normalized rate in any of its saturated
    cliques (§6.3).

    The notice carries, per saturated clique, the largest normalized
    rate observed on that clique's wireless links.  Responders compare
    their own links against *their* clique's maximum — "a link l that
    has the highest normalized rate in the saturated clique will be
    asked to reduce its rate" (§4.3) — so every saturated clique
    containing the victim converges toward equality independently.
    (Encoding a single L2 as the maximum across all saturated cliques,
    the compressed form §6.3 describes, would also trim the top flow
    of cliques that merely *overlap* the victim's bottleneck, and
    cannot sustain the paper's own Table-1 equilibrium where f1
    legitimately rides far above the clique-1 flows.)

    Attributes:
        origin_link: the wireless link (i, j) owning the violating
            virtual link.
        mu_min: normalized rate of the violating virtual link — the
            smallest among (i, j)'s bandwidth-saturated virtual links.
        clique_maxes: per saturated clique id, the largest normalized
            rate on its wireless links.
    """

    origin_link: Link
    mu_min: float
    clique_maxes: tuple[tuple[tuple[int, int], float], ...]

    @property
    def clique_ids(self) -> frozenset[tuple[int, int]]:
        """The saturated cliques this notice covers."""
        return frozenset(clique_id for clique_id, _mu in self.clique_maxes)

    def max_for(self, clique_id: tuple[int, int]) -> float | None:
        """The recorded maximum for one clique, if covered."""
        for covered, clique_max in self.clique_maxes:
            if covered == clique_id:
                return clique_max
        return None


def find_bandwidth_violation(
    *,
    link: Link,
    bw_saturated_vlink_mus: dict[int, float],
    clique_occupancies: dict[tuple[int, int], float],
    clique_link_mus: dict[tuple[int, int], dict[Link, float]],
    beta: float,
) -> BandwidthViolation | None:
    """Check the bandwidth-saturated condition for wireless link ``link``.

    Args:
        link: the wireless link (i, j), canonical direction irrelevant.
        bw_saturated_vlink_mus: per destination, the normalized rate of
            (i, j)'s bandwidth-saturated virtual links (only those with
            a known rate).
        clique_occupancies: channel occupancy of every clique (i, j)
            belongs to, keyed by clique id.
        clique_link_mus: per clique id, the known normalized rates of
            the wireless links in that clique.
        beta: equality tolerance.

    Returns:
        None when the condition holds (or cannot be evaluated), else
        the violation notice to disseminate.
    """
    if not bw_saturated_vlink_mus or not clique_occupancies:
        return None
    # The virtual link to fix: smallest normalized rate (§6.3).
    mu_min = min(bw_saturated_vlink_mus.values())

    max_occupancy = max(clique_occupancies.values())
    saturated = {
        clique_id
        for clique_id, occupancy in clique_occupancies.items()
        if beta_equal(occupancy, max_occupancy, beta)
    }
    # Satisfied if mu_min is (β-)largest in at least one saturated clique.
    clique_maxes: dict[tuple[int, int], float] = {}
    for clique_id in saturated:
        mus = clique_link_mus.get(clique_id, {})
        clique_max = max(mus.values(), default=mu_min)
        if not beta_less(mu_min, clique_max, beta):
            return None
        clique_maxes[clique_id] = clique_max
    if not clique_maxes:
        return None
    return BandwidthViolation(
        origin_link=link,
        mu_min=mu_min,
        clique_maxes=tuple(sorted(clique_maxes.items())),
    )


@dataclass(frozen=True)
class AdjacentVirtualLinkView:
    """A node's view of one of its own virtual links, used when
    responding to a bandwidth violation notice."""

    link: Link
    dest: int
    mu: float | None
    link_type: LinkType
    primaries: frozenset[int]
    clique_ids: frozenset[tuple[int, int]]  # cliques the wireless link is in


def respond_to_bandwidth_violation(
    node: int,
    violation: BandwidthViolation,
    adjacent: list[AdjacentVirtualLinkView],
    *,
    beta: float,
) -> list[RateRequest]:
    """Node ``node`` processes a disseminated violation notice.

    For each of its virtual links on a wireless link belonging to one
    of the violation's saturated cliques: primaries at L2 are asked
    down by β; primaries of bandwidth-saturated virtual links at the
    violator's rate are asked up by β (§6.3).
    """
    requests: list[RateRequest] = []
    for vlink in adjacent:
        if vlink.mu is None:
            continue
        shared = vlink.clique_ids & violation.clique_ids
        if not shared:
            continue
        should_decrease = any(
            (clique_max := violation.max_for(clique_id)) is not None
            and beta_equal(vlink.mu, clique_max, beta)
            and beta_less(violation.mu_min, vlink.mu, beta)
            for clique_id in shared
        )
        if should_decrease:
            requests.extend(
                RateRequest(flow, RequestKind.DECREASE, 1.0 - beta, node, "bandwidth")
                for flow in sorted(vlink.primaries)
            )
        if vlink.link_type is LinkType.BANDWIDTH_SATURATED and beta_equal(
            vlink.mu, violation.mu_min, beta
        ):
            requests.extend(
                RateRequest(flow, RequestKind.INCREASE, 1.0 + beta, node, "bandwidth")
                for flow in sorted(vlink.primaries)
            )
    return requests
