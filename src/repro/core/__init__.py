"""GMP — the paper's distributed Global Maxmin Protocol.

The package decomposes the protocol the way the paper does:

* :mod:`repro.core.virtual` — virtual nodes/links/networks (§5.2);
* :mod:`repro.core.classification` — link types from buffer states (§3);
* :mod:`repro.core.measurement` — measurement-period bookkeeping (§6.2);
* :mod:`repro.core.dissemination` — two-hop link-state scope (§6.2);
* :mod:`repro.core.conditions` — the four local conditions and the
  rate-adjustment rules they trigger (§4.3, §5.3, §6.3);
* :mod:`repro.core.requests` — rate-adjustment requests and the
  control-packet aggregation rule (§6.3);
* :mod:`repro.core.protocol` — the period-driven protocol engine
  tying it all together.
"""

from repro.core.classification import LinkType, classify_link
from repro.core.conditions import beta_equal, beta_less
from repro.core.config import GmpConfig
from repro.core.protocol import GmpProtocol
from repro.core.requests import RateRequest, RequestKind, aggregate_requests
from repro.core.virtual import GrandVirtualNetwork

__all__ = [
    "LinkType",
    "classify_link",
    "GmpConfig",
    "beta_equal",
    "beta_less",
    "GmpProtocol",
    "RateRequest",
    "RequestKind",
    "aggregate_requests",
    "GrandVirtualNetwork",
]
