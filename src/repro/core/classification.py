"""Link classification from buffer states (paper §3.2).

A (virtual) link ``(i, j)`` is

* *bandwidth-saturated* when i's buffer is saturated but j's is not:
  the channel around the link is the bottleneck;
* *buffer-saturated* when both buffers are saturated: the bottleneck
  is downstream and backpressure is holding the link back;
* *unsaturated* when i's buffer is unsaturated.

The destination's virtual node has no queue, so a last-hop link can
only be bandwidth-saturated or unsaturated.
"""

from __future__ import annotations

import enum


class LinkType(enum.Enum):
    """The three link types of §3.2."""

    BANDWIDTH_SATURATED = "bandwidth-saturated"
    BUFFER_SATURATED = "buffer-saturated"
    UNSATURATED = "unsaturated"


def classify_link(upstream_saturated: bool, downstream_saturated: bool) -> LinkType:
    """Classify a link from its endpoints' buffer saturation states.

    Args:
        upstream_saturated: is the transmitter's queue saturated?
        downstream_saturated: is the receiver's queue saturated?
            (Always False when the receiver is the destination.)
    """
    if not upstream_saturated:
        return LinkType.UNSATURATED
    if downstream_saturated:
        return LinkType.BUFFER_SATURATED
    return LinkType.BANDWIDTH_SATURATED


def buffer_is_saturated(omega: float, threshold: float) -> bool:
    """Apply the Ω threshold rule (§6.2): saturated iff the buffer was
    full for more than ``threshold`` of the measurement period."""
    return omega > threshold
