"""Rate-adjustment requests and control-packet aggregation (§6.3).

Nodes that find a local condition violated issue requests targeting
specific flows.  At the end of the adjustment period each flow's
control packet travels its path collecting requests and keeps exactly
one: the largest reduction if any reduction exists, otherwise the
smallest increase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ProtocolError


class RequestKind(enum.Enum):
    """Direction of a rate adjustment."""

    INCREASE = "increase"
    DECREASE = "decrease"


@dataclass(frozen=True)
class RateRequest:
    """One adjustment request for one flow.

    Attributes:
        flow_id: target flow.
        kind: increase or decrease.
        multiplier: factor applied to the flow's measured rate
            (decrease: 0.5 for halving or ``1 - beta``) or to its rate
            limit (increase: 2.0 for doubling or ``1 + beta``).
        origin: node that issued the request.
        reason: which condition produced it ("source", "buffer",
            "bandwidth"); kept for traces and tests.
    """

    flow_id: int
    kind: RequestKind
    multiplier: float
    origin: int
    reason: str

    def __post_init__(self) -> None:
        if self.kind is RequestKind.DECREASE and not 0 < self.multiplier < 1:
            raise ProtocolError(
                f"decrease multiplier must be in (0,1): {self.multiplier}"
            )
        if self.kind is RequestKind.INCREASE and self.multiplier <= 1:
            raise ProtocolError(
                f"increase multiplier must exceed 1: {self.multiplier}"
            )


def aggregate_requests(requests: list[RateRequest]) -> RateRequest | None:
    """The single request a flow's control packet keeps.

    "If there is no rate reduction request, it keeps the rate increase
    request with the smallest increase.  If there is a rate reduction
    request, it discards all rate increase requests.  If there are
    multiple rate reduction requests, it keeps the one with the largest
    rate reduction."
    """
    if not requests:
        return None
    flow_ids = {request.flow_id for request in requests}
    if len(flow_ids) > 1:
        raise ProtocolError(
            f"aggregation mixes flows {sorted(flow_ids)}; aggregate per flow"
        )
    decreases = [r for r in requests if r.kind is RequestKind.DECREASE]
    if decreases:
        return min(decreases, key=lambda r: (r.multiplier, r.origin))
    return min(requests, key=lambda r: (r.multiplier, r.origin))
