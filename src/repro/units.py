"""Unit constants and conversion helpers.

The simulator measures time in **seconds** (floats), distances in
**meters**, and data rates in **bits per second**.  These helpers keep
call sites readable (``3 * MILLISECONDS`` instead of ``3e-3``) and
centralize the handful of conversions the paper's setup uses (Mbps
channel capacity, packets per second for 1024-byte packets).
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------

SECONDS = 1.0
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6

# --- data -----------------------------------------------------------------

BITS = 1
BYTES = 8
KILOBITS = 1_000
MEGABITS = 1_000_000

#: Data-rate unit: bits per second.
BPS = 1
KBPS = 1_000
MBPS = 1_000_000


def bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * 8.0


def transmission_time(num_bytes: float, rate_bps: float) -> float:
    """Time in seconds to serialize ``num_bytes`` at ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return bits(num_bytes) / rate_bps


def packets_per_second(rate_bps: float, packet_bytes: float) -> float:
    """Convert a bit rate to packets/second for a fixed packet size."""
    if packet_bytes <= 0:
        raise ValueError(f"packet size must be positive, got {packet_bytes}")
    return rate_bps / bits(packet_bytes)


def pps_to_bps(pps: float, packet_bytes: float) -> float:
    """Convert packets/second to bits/second for a fixed packet size."""
    return pps * bits(packet_bytes)
