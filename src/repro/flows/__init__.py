"""End-to-end flows, packets, traffic generation, and rate limiting."""

from repro.flows.flow import Flow, FlowSet
from repro.flows.packet import Packet
from repro.flows.rate_limiter import TokenBucket
from repro.flows.traffic import CbrSource, OnOffSource, PoissonSource, TrafficSource

__all__ = [
    "Flow",
    "FlowSet",
    "Packet",
    "TokenBucket",
    "TrafficSource",
    "CbrSource",
    "PoissonSource",
    "OnOffSource",
]
