"""Flow definitions.

A flow is an end-to-end stream with a *desirable rate* ``d(f)`` and a
*weight* ``w(f)`` (paper §2.1).  The network delivers some actual rate
``r(f) <= d(f)``; the *normalized rate* is ``mu(f) = r(f) / w(f)`` —
the quantity global maxmin equalizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import FlowError


@dataclass(frozen=True)
class Flow:
    """An end-to-end flow.

    Attributes:
        flow_id: unique identifier.
        source: source node id.
        destination: destination node id.
        weight: maxmin weight ``w(f)``; must be positive.
        desired_rate: desirable rate ``d(f)`` in packets/second.
        packet_bytes: data payload size; the paper uses 1024-byte
            packets throughout.
    """

    flow_id: int
    source: int
    destination: int
    weight: float = 1.0
    desired_rate: float = 800.0
    packet_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise FlowError(f"flow {self.flow_id}: source equals destination")
        if self.weight <= 0:
            raise FlowError(f"flow {self.flow_id}: weight must be positive")
        if self.desired_rate <= 0:
            raise FlowError(f"flow {self.flow_id}: desired rate must be positive")
        if self.packet_bytes <= 0:
            raise FlowError(f"flow {self.flow_id}: packet size must be positive")

    def normalized(self, rate: float) -> float:
        """Normalized rate ``rate / w(f)``."""
        return rate / self.weight


class FlowSet:
    """An ordered, id-indexed collection of flows."""

    def __init__(self, flows: list[Flow] | None = None) -> None:
        self._flows: dict[int, Flow] = {}
        for flow in flows or []:
            self.add(flow)

    def add(self, flow: Flow) -> None:
        """Add a flow.

        Raises:
            FlowError: on duplicate flow ids.
        """
        if flow.flow_id in self._flows:
            raise FlowError(f"duplicate flow id {flow.flow_id}")
        self._flows[flow.flow_id] = flow

    def remove(self, flow_id: int) -> Flow:
        """Remove and return a flow (dynamic-workload departure).

        Raises:
            FlowError: for unknown ids.
        """
        try:
            return self._flows.pop(flow_id)
        except KeyError:
            raise FlowError(f"unknown flow id {flow_id}") from None

    def next_flow_id(self) -> int:
        """Smallest id strictly above every existing flow's (1 when
        empty) — what a churn engine assigns to the next arrival."""
        return max(self._flows, default=0) + 1

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        for flow_id in sorted(self._flows):
            yield self._flows[flow_id]

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self._flows

    def get(self, flow_id: int) -> Flow:
        """Look up a flow by id.

        Raises:
            FlowError: for unknown ids.
        """
        try:
            return self._flows[flow_id]
        except KeyError:
            raise FlowError(f"unknown flow id {flow_id}") from None

    def sourced_at(self, node_id: int) -> list[Flow]:
        """Flows whose source is ``node_id`` (the node's *local flows*)."""
        return [flow for flow in self if flow.source == node_id]

    def destined_to(self, node_id: int) -> list[Flow]:
        """Flows whose destination is ``node_id``."""
        return [flow for flow in self if flow.destination == node_id]

    def destinations(self) -> list[int]:
        """Distinct destinations, sorted."""
        return sorted({flow.destination for flow in self})
