"""Data packets.

Packets are the unit moved by buffers and the MAC.  Besides routing
metadata they carry the two piggyback fields GMP relies on:

* ``carried_mu`` — the flow's normalized rate, stamped by the source on
  selected packets (paper §6.2, *Normalized Rate* measurement);
* forwarding nodes never modify a packet; they only read it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_packet_counter = itertools.count()


@dataclass
class Packet:
    """One data packet.

    Attributes:
        flow_id: flow the packet belongs to.
        source: originating node id.
        destination: final destination node id.
        size_bytes: payload size (MAC overhead is added by the PHY model).
        created_at: simulation time of generation at the source.
        seq: per-run unique sequence number.
        carried_mu: normalized rate piggybacked by the source, or None.
        delivered_at: set by the sink on arrival (None in flight).
    """

    flow_id: int
    source: int
    destination: int
    size_bytes: int
    created_at: float
    seq: int = field(default_factory=lambda: next(_packet_counter))
    carried_mu: float | None = None
    delivered_at: float | None = None

    @property
    def delay(self) -> float | None:
        """End-to-end delay, available once delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at
