"""Traffic sources.

A traffic source repeatedly *offers* packets for its flow to the node
stack through an ``admit`` callback.  Offers are shaped twice:

* by the flow's own arrival process (CBR / Poisson / on-off) at the
  desirable rate ``d(f)``;
* by the self-imposed rate limit, enforced with a
  :class:`~repro.flows.rate_limiter.TokenBucket` (GMP adjusts this
  limit; the baselines leave it unset).

If ``admit`` returns False (source queue full — buffer-based
backpressure has reached the source), the packet is simply not
generated, modeling the paper's "the flow source will generate new
packets at a smaller rate if the network cannot deliver its desirable
rate".
"""

from __future__ import annotations

from typing import Callable

from repro.errors import FlowError
from repro.flows.flow import Flow
from repro.flows.packet import Packet
from repro.flows.rate_limiter import TokenBucket
from repro.sim.kernel import Simulator


class TrafficSource:
    """Base class: offer scheduling, rate limiting, and counters.

    Subclasses define the arrival process via :meth:`_next_interval`.

    Args:
        sim: simulation kernel.
        flow: the flow this source feeds.
        admit: callback invoked with each generated packet; returns
            True if the node stack accepted it.
        on_generate: optional hook invoked on every *accepted* packet
            (GMP uses it to piggyback normalized rates).
    """

    def __init__(
        self,
        sim: Simulator,
        flow: Flow,
        admit: Callable[[Packet], bool],
        *,
        on_generate: Callable[[Packet], None] | None = None,
    ) -> None:
        self.sim = sim
        self.flow = flow
        self._admit = admit
        self._on_generate = on_generate
        self._bucket: TokenBucket | None = None
        self._started = False
        self._paused = False
        self._stopped = False
        self._pending = None  # the scheduled next-tick Event, if any
        self.generated = 0  # offers that passed the rate limit
        self.admitted = 0  # accepted by the node stack
        self.rejected = 0  # refused by the node stack (backpressure)
        self.limited = 0  # suppressed by the rate limit

    # --- rate limit -----------------------------------------------------------

    @property
    def rate_limit(self) -> float | None:
        """Current self-imposed limit in packets/second, or None."""
        return self._bucket.rate if self._bucket is not None else None

    def set_rate_limit(self, limit: float | None) -> None:
        """Install, change, or remove the source rate limit."""
        if limit is None:
            self._bucket = None
            return
        if limit <= 0:
            raise FlowError(f"flow {self.flow.flow_id}: rate limit must be positive")
        if self._bucket is None:
            self._bucket = TokenBucket(limit, start_time=self.sim.now)
        else:
            self._bucket.set_rate(limit, self.sim.now)

    # --- lifecycle -----------------------------------------------------------

    def start(self, *, offset: float = 0.0) -> None:
        """Begin offering packets ``offset`` seconds from now."""
        if self._started:
            raise FlowError(f"flow {self.flow.flow_id}: source already started")
        self._started = True
        self._pending = self.sim.call_later(
            offset, self._tick, tag=f"traffic.f{self.flow.flow_id}"
        )

    def pause(self) -> None:
        """Stop offering packets (source node crashed).  Idempotent."""
        self._paused = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def resume(self) -> None:
        """Restart a paused source from the current time.  Idempotent.

        A stopped source stays stopped: a flow that departed while its
        source node was down does not rise again with the node.
        """
        if not self._paused or self._stopped:
            return
        self._paused = False
        if self._started:
            self._pending = self.sim.call_later(
                self._next_interval(), self._tick, tag=f"traffic.f{self.flow.flow_id}"
            )

    def stop(self) -> None:
        """Permanently stop offering packets (flow departure).

        Unlike :meth:`pause` this is final — counters freeze, the rate
        limit is discarded, and neither :meth:`resume` nor a node
        recovery restarts the source.  Idempotent.
        """
        self._stopped = True
        self._bucket = None
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    @property
    def paused(self) -> bool:
        """True while the source is paused by fault injection."""
        return self._paused

    @property
    def stopped(self) -> bool:
        """True once the flow departed and the source shut down."""
        return self._stopped

    def _tick(self) -> None:
        self._pending = None
        if self._paused or self._stopped:
            return
        if self._passes_rate_limit():
            self.generated += 1
            packet = Packet(
                flow_id=self.flow.flow_id,
                source=self.flow.source,
                destination=self.flow.destination,
                size_bytes=self.flow.packet_bytes,
                created_at=self.sim.now,
            )
            if self._admit(packet):
                self.admitted += 1
                if self._on_generate is not None:
                    self._on_generate(packet)
            else:
                self.rejected += 1
        else:
            self.limited += 1
        delay = self._next_interval()
        if self._bucket is not None:
            # Don't wake before a token can exist: offering on the raw
            # arrival cadence quantizes the achieved rate to
            # d / ceil(d / limit), which for limits in (d/2, d) admits
            # only d/2 — far enough below the limit that GMP's
            # rate-limit condition reads the flow as "not achieving"
            # and stops probing upward, wedging it there.
            wait = self._bucket.next_available(self.sim.now) - self.sim.now
            if wait > delay:
                # The arrival process would have offered sooner; that
                # offer is suppressed by the limit.
                self.limited += 1
                delay = wait
        self._pending = self.sim.call_later(
            delay, self._tick, tag=f"traffic.f{self.flow.flow_id}"
        )

    def _passes_rate_limit(self) -> bool:
        if self._bucket is None:
            return True
        return self._bucket.try_consume(self.sim.now)

    def _next_interval(self) -> float:
        raise NotImplementedError


class CbrSource(TrafficSource):
    """Constant-bit-rate arrivals at the flow's desirable rate.

    This is the paper's workload: every flow offers a fixed 800
    packets/second.
    """

    def _next_interval(self) -> float:
        return 1.0 / self.flow.desired_rate


class PoissonSource(TrafficSource):
    """Poisson arrivals with mean rate ``d(f)``."""

    def _next_interval(self) -> float:
        rng = self.sim.rng.stream(f"traffic.poisson.f{self.flow.flow_id}")
        return float(rng.exponential(1.0 / self.flow.desired_rate))


class OnOffSource(TrafficSource):
    """Exponential on/off bursts; CBR at ``peak_factor * d(f)`` while on.

    With the default mean on/off durations of 1 s each and
    ``peak_factor=2`` the long-run offered rate equals ``d(f)``.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: Flow,
        admit: Callable[[Packet], bool],
        *,
        on_generate: Callable[[Packet], None] | None = None,
        mean_on: float = 1.0,
        mean_off: float = 1.0,
        peak_factor: float = 2.0,
    ) -> None:
        super().__init__(sim, flow, admit, on_generate=on_generate)
        if mean_on <= 0 or mean_off <= 0 or peak_factor <= 0:
            raise FlowError(
                f"flow {flow.flow_id}: on/off parameters must be positive"
            )
        self._mean_on = mean_on
        self._mean_off = mean_off
        self._peak_rate = peak_factor * flow.desired_rate
        self._on_until = 0.0

    def _next_interval(self) -> float:
        rng = self.sim.rng.stream(f"traffic.onoff.f{self.flow.flow_id}")
        spacing = 1.0 / self._peak_rate
        now = self.sim.now
        if now < self._on_until:
            return spacing
        # Burst ended: draw an off period, then a fresh on period.
        off = float(rng.exponential(self._mean_off))
        on = float(rng.exponential(self._mean_on))
        self._on_until = now + off + on
        return off + spacing


def pareto_draw(rng, mean: float, alpha: float) -> float:
    """One draw from a Pareto distribution with the given *mean*.

    The scale is solved from ``mean = alpha * x_m / (alpha - 1)``, so
    the long-run average matches an exponential of the same mean while
    the tail stays heavy (infinite variance for ``alpha <= 2``).

    Raises:
        FlowError: unless ``alpha > 1`` (the mean diverges otherwise)
            and ``mean > 0``.
    """
    if alpha <= 1.0:
        raise FlowError(f"pareto shape must exceed 1 for a finite mean: {alpha}")
    if mean <= 0:
        raise FlowError(f"pareto mean must be positive: {mean}")
    scale = mean * (alpha - 1.0) / alpha
    return scale * (1.0 + float(rng.pareto(alpha)))


class ParetoOnOffSource(TrafficSource):
    """Heavy-tailed phase switching: Pareto on/off durations.

    Bursts send CBR at ``peak_factor * d(f)``; both phase lengths are
    Pareto with shape ``alpha`` (default 1.5 — infinite variance), so a
    single flow occasionally holds the channel, or goes dark, for far
    longer than the exponential model ever would.  With equal mean
    on/off durations and ``peak_factor=2`` the long-run offered rate
    equals ``d(f)``.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: Flow,
        admit: Callable[[Packet], bool],
        *,
        on_generate: Callable[[Packet], None] | None = None,
        mean_on: float = 1.0,
        mean_off: float = 1.0,
        alpha: float = 1.5,
        peak_factor: float = 2.0,
    ) -> None:
        super().__init__(sim, flow, admit, on_generate=on_generate)
        if mean_on <= 0 or mean_off <= 0 or peak_factor <= 0:
            raise FlowError(
                f"flow {flow.flow_id}: on/off parameters must be positive"
            )
        if alpha <= 1.0:
            raise FlowError(
                f"flow {flow.flow_id}: pareto shape must exceed 1, got {alpha}"
            )
        self._mean_on = mean_on
        self._mean_off = mean_off
        self._alpha = alpha
        self._peak_rate = peak_factor * flow.desired_rate
        self._on_until = 0.0

    def _next_interval(self) -> float:
        rng = self.sim.rng.stream(f"traffic.pareto.f{self.flow.flow_id}")
        spacing = 1.0 / self._peak_rate
        now = self.sim.now
        if now < self._on_until:
            return spacing
        off = pareto_draw(rng, self._mean_off, self._alpha)
        on = pareto_draw(rng, self._mean_on, self._alpha)
        self._on_until = now + off + on
        return off + spacing
