"""Token-bucket rate limiting.

GMP's rate-limit condition is enforced at flow sources by
self-imposed rate limits (paper §4.3/§6.3).  The token bucket is the
enforcement mechanism: the bucket refills at the current limit and a
packet may only be generated when a full token is available.
"""

from __future__ import annotations

from repro.errors import FlowError


class TokenBucket:
    """A continuous-time token bucket.

    Tokens accrue at ``rate`` tokens/second up to ``burst`` tokens.
    The bucket is lazy: the balance is brought up to date whenever it
    is consulted, so no kernel events are needed for refills.

    Args:
        rate: refill rate in tokens/second (one token = one packet).
        burst: bucket depth; defaults to 1 token (smooth CBR shaping).
    """

    def __init__(self, rate: float, *, burst: float = 1.0, start_time: float = 0.0) -> None:
        if rate <= 0:
            raise FlowError(f"token bucket rate must be positive: {rate}")
        if burst <= 0:
            raise FlowError(f"token bucket burst must be positive: {burst}")
        self._rate = float(rate)
        self._burst = float(burst)
        self._tokens = float(burst)
        self._updated_at = float(start_time)

    @property
    def rate(self) -> float:
        """Current refill rate in tokens/second."""
        return self._rate

    @property
    def burst(self) -> float:
        """Bucket depth in tokens."""
        return self._burst

    def set_rate(self, rate: float, now: float) -> None:
        """Change the refill rate, settling accrued tokens first."""
        if rate <= 0:
            raise FlowError(f"token bucket rate must be positive: {rate}")
        self._refill(now)
        self._rate = float(rate)

    def tokens(self, now: float) -> float:
        """Token balance at time ``now``."""
        self._refill(now)
        return self._tokens

    def try_consume(self, now: float, amount: float = 1.0) -> bool:
        """Consume ``amount`` tokens if available; returns success."""
        self._refill(now)
        if self._tokens + 1e-12 >= amount:
            self._tokens -= amount
            return True
        return False

    def next_available(self, now: float, amount: float = 1.0) -> float:
        """Earliest time at which ``amount`` tokens will be available.

        Returns ``now`` when they already are.
        """
        self._refill(now)
        deficit = amount - self._tokens
        if deficit <= 0:
            return now
        return now + deficit / self._rate

    def _refill(self, now: float) -> None:
        if now < self._updated_at:
            raise FlowError(
                f"token bucket consulted at t={now} before last update "
                f"t={self._updated_at}"
            )
        self._tokens = min(
            self._burst, self._tokens + (now - self._updated_at) * self._rate
        )
        self._updated_at = now
