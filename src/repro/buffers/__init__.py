"""Buffer management: queueing policies, fullness measurement, and the
congestion-avoidance backpressure gate.

The three evaluated protocols differ chiefly in queueing (paper §7.2):

* plain 802.11 — one shared FIFO per node, tail overwrite when full
  (:class:`SharedFifoBuffer`);
* 2PP — one 10-packet queue per flow (:class:`PerFlowBuffer`);
* GMP — one 10-packet queue per served destination with buffer-state
  backpressure (:class:`PerDestinationBuffer` +
  :class:`BackpressureGate`).
"""

from repro.buffers.backpressure import BackpressureGate, OracleGate, OverhearingGate
from repro.buffers.occupancy import FullnessMeter
from repro.buffers.queues import (
    SHARED_QUEUE_KEY,
    BufferPolicy,
    PerDestinationBuffer,
    PerFlowBuffer,
    SharedBackpressureBuffer,
    SharedFifoBuffer,
)

__all__ = [
    "FullnessMeter",
    "BackpressureGate",
    "OverhearingGate",
    "OracleGate",
    "BufferPolicy",
    "SharedFifoBuffer",
    "PerFlowBuffer",
    "PerDestinationBuffer",
    "SharedBackpressureBuffer",
    "SHARED_QUEUE_KEY",
]
