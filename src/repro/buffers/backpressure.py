"""Buffer-based backpressure gates.

The congestion-avoidance scheme (paper §2.2, after Chen & Yang) lets
node ``i`` send a packet for destination ``t`` to its downstream
neighbor ``j`` only when ``j``'s queue for ``t`` has free space.  The
gate answers exactly that question.

Two implementations:

* :class:`OverhearingGate` — the paper's mechanism: ``j`` piggybacks
  its per-destination buffer-state bits on every frame; ``i`` caches
  what it overhears.  A cache entry older than the stale timeout no
  longer blocks ("i will stop waiting and attempt transmitting if it
  does not overhear j's buffer state for certain time").
* :class:`OracleGate` — reads the downstream queue directly.  Used
  with the fluid MAC, which has no frames to overhear; semantically it
  is the zero-loss, zero-latency limit of the overhearing gate.
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.errors import ConfigError


class BackpressureGate(abc.ABC):
    """Decides whether a packet for ``dest`` may be sent to ``neighbor``."""

    @abc.abstractmethod
    def allows(self, neighbor: int, dest: int, now: float) -> bool:
        """True if transmission toward ``neighbor`` for ``dest`` is
        currently permitted."""

    def update(self, neighbor: int, states: dict[int, bool], now: float) -> None:
        """Feed overheard buffer-state bits (no-op by default)."""


class OverhearingGate(BackpressureGate):
    """Cache of overheard per-destination buffer-state bits.

    Args:
        stale_timeout: seconds after which a cached "full" state stops
            blocking.  Unknown neighbors/destinations never block
            (optimistic start, as in the paper: blocking begins only
            once a full state has been overheard).
    """

    def __init__(self, *, stale_timeout: float = 0.1) -> None:
        if stale_timeout <= 0:
            raise ConfigError(f"stale_timeout must be positive: {stale_timeout}")
        self.stale_timeout = stale_timeout
        self._cache: dict[tuple[int, int], tuple[bool, float]] = {}
        self.blocked_checks = 0
        self.allowed_checks = 0

    def update(self, neighbor: int, states: dict[int, bool], now: float) -> None:
        for dest, has_free in states.items():
            self._cache[(neighbor, dest)] = (bool(has_free), now)

    def allows(self, neighbor: int, dest: int, now: float) -> bool:
        entry = self._cache.get((neighbor, dest))
        if entry is None:
            self.allowed_checks += 1
            return True
        has_free, heard_at = entry
        if has_free or now - heard_at > self.stale_timeout:
            self.allowed_checks += 1
            return True
        self.blocked_checks += 1
        return False

    def known_state(self, neighbor: int, dest: int) -> bool | None:
        """Last overheard state, or None if never heard."""
        entry = self._cache.get((neighbor, dest))
        return entry[0] if entry is not None else None


class OracleGate(BackpressureGate):
    """Direct-lookup gate for substrates without frames.

    Args:
        lookup: ``lookup(neighbor, dest) -> bool`` returning whether the
            neighbor's queue for ``dest`` has free space.
    """

    def __init__(self, lookup: Callable[[int, int], bool]) -> None:
        self._lookup = lookup

    def allows(self, neighbor: int, dest: int, now: float) -> bool:
        return self._lookup(neighbor, dest)
