"""Time-weighted buffer fullness measurement.

GMP declares a buffer *saturated* when it stays full for more than a
threshold fraction Ω of the measurement period (paper §6.2; the
threshold is 25%, chosen because saturated buffers measure Ω > 50%
and unsaturated ones ≈ 0).  :class:`FullnessMeter` accumulates the
full-time of one queue between period resets.
"""

from __future__ import annotations

from repro.errors import BufferError_


class FullnessMeter:
    """Accumulates how long a queue has been full."""

    def __init__(self, *, start_time: float = 0.0) -> None:
        self._full_since: float | None = None
        self._accumulated = 0.0
        self._window_start = float(start_time)
        self._last_seen = float(start_time)

    def set_full(self, now: float, is_full: bool) -> None:
        """Record a fullness transition (idempotent per state)."""
        self._check_time(now)
        if is_full and self._full_since is None:
            self._full_since = now
        elif not is_full and self._full_since is not None:
            self._accumulated += now - self._full_since
            self._full_since = None

    def fraction_full(self, now: float) -> float:
        """Fraction of the current window spent full (Ω)."""
        self._check_time(now)
        total = now - self._window_start
        if total <= 0:
            return 0.0
        accumulated = self._accumulated
        if self._full_since is not None:
            accumulated += now - self._full_since
        return min(1.0, accumulated / total)

    def reset(self, now: float) -> None:
        """Start a new measurement window at ``now``."""
        self._check_time(now)
        self._window_start = now
        self._accumulated = 0.0
        if self._full_since is not None:
            self._full_since = now

    def _check_time(self, now: float) -> None:
        if now < self._last_seen:
            raise BufferError_(
                f"FullnessMeter driven backwards: {now} < {self._last_seen}"
            )
        self._last_seen = now
