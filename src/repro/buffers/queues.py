"""Queueing policies.

A :class:`BufferPolicy` sits between the traffic sources / forwarding
path and the MAC.  It decides admission (drop, overwrite, or refuse —
refusal of a *local* packet is how backpressure reaches the source),
service order, and — for the per-destination policy — transmission
eligibility via the backpressure gate.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable, Iterable

from repro.buffers.backpressure import BackpressureGate
from repro.buffers.occupancy import FullnessMeter
from repro.errors import BufferError_
from repro.flows.packet import Packet
from repro.topology.network import Link


class BufferPolicy(abc.ABC):
    """Common surface of the three queueing policies.

    Args:
        node_id: owning node.
        next_hop: callable mapping a destination to this node's next
            hop toward it.
    """

    def __init__(self, node_id: int, next_hop: Callable[[int], int]) -> None:
        self.node_id = node_id
        self.next_hop = next_hop
        self.drops = 0  # packets lost to admission (incl. overwrites)
        self.drops_by_flow: dict[int, int] = {}  # same, keyed by flow
        self.overshoot = 0  # forwarded admissions beyond nominal capacity

    def _count_drop(self, packet: Packet) -> None:
        self.drops += 1
        self.drops_by_flow[packet.flow_id] = (
            self.drops_by_flow.get(packet.flow_id, 0) + 1
        )

    # --- admission ---------------------------------------------------------

    @abc.abstractmethod
    def admit_local(self, packet: Packet) -> bool:
        """Offer a locally generated packet; False refuses it (the
        source then simply does not generate it)."""

    @abc.abstractmethod
    def admit_forwarded(self, packet: Packet) -> bool:
        """Offer a packet received from upstream for forwarding."""

    # --- service ------------------------------------------------------------

    @abc.abstractmethod
    def dequeue(self, now: float) -> tuple[Packet, int] | None:
        """Next eligible ``(packet, next_hop)``, or None."""

    @abc.abstractmethod
    def dequeue_for(self, next_hop: int, now: float) -> Packet | None:
        """Next eligible packet routed via ``next_hop`` (fluid MAC)."""

    @abc.abstractmethod
    def eligible_links(self, now: float) -> dict[Link, int]:
        """Eligible backlog per outgoing directed link (fluid MAC)."""

    @abc.abstractmethod
    def backlog(self) -> int:
        """Total queued packets."""

    # --- fault injection / audits ----------------------------------------------

    @abc.abstractmethod
    def queued_packets(self) -> list[Packet]:
        """Every currently queued packet (for end-of-run audits)."""

    @abc.abstractmethod
    def drain(self, now: float) -> list[Packet]:
        """Empty every queue and return the evicted packets (node
        crash: buffered traffic is lost with the node's memory)."""

    # --- buffer-state piggyback (overridden by per-destination) --------------------

    def piggyback_states(self) -> dict[int, bool]:
        """Per-destination free-space bits to piggyback on frames."""
        return {}

    def has_pending(self) -> bool:
        """True if any packet is queued (eligible or not)."""
        return self.backlog() > 0


def _rr_order(keys: Iterable[int], last: int | None) -> list[int]:
    """Round-robin ordering: keys after ``last`` first, then wrap."""
    ordered = sorted(keys)
    if last is None or last not in ordered:
        return ordered
    pivot = ordered.index(last) + 1
    return ordered[pivot:] + ordered[:pivot]


class SharedFifoBuffer(BufferPolicy):
    """One FIFO shared by all flows; tail overwrite when full.

    The plain-802.11 baseline policy (paper §7.2): "when a packet
    arrives at a node whose buffer is full, it will overwrite the
    packet at the tail of the queue".
    """

    def __init__(
        self, node_id: int, next_hop: Callable[[int], int], *, capacity: int = 300
    ) -> None:
        super().__init__(node_id, next_hop)
        if capacity < 1:
            raise BufferError_(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: deque[Packet] = deque()

    def admit_local(self, packet: Packet) -> bool:
        # A source generates new packets only while its buffer has
        # room ("the flow source will generate new packets at a
        # smaller rate if the network cannot deliver its desirable
        # rate", §2.1) — local packets never overwrite queued traffic.
        if len(self._queue) >= self.capacity:
            return False
        self._queue.append(packet)
        return True

    def admit_forwarded(self, packet: Packet) -> bool:
        # In-flight arrivals cannot be refused; when full they
        # overwrite the packet at the tail of the queue (§7.2).
        if len(self._queue) >= self.capacity:
            self._count_drop(self._queue.pop())
        self._queue.append(packet)
        return True

    def dequeue(self, now: float) -> tuple[Packet, int] | None:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        return packet, self.next_hop(packet.destination)

    def dequeue_for(self, next_hop: int, now: float) -> Packet | None:
        for index, packet in enumerate(self._queue):
            if self.next_hop(packet.destination) == next_hop:
                del self._queue[index]
                return packet
        return None

    def eligible_links(self, now: float) -> dict[Link, int]:
        counts: dict[Link, int] = {}
        for packet in self._queue:
            a_link = (self.node_id, self.next_hop(packet.destination))
            counts[a_link] = counts.get(a_link, 0) + 1
        return counts

    def backlog(self) -> int:
        return len(self._queue)

    def queued_packets(self) -> list[Packet]:
        return list(self._queue)

    def drain(self, now: float) -> list[Packet]:
        lost = list(self._queue)
        self._queue.clear()
        return lost


class PerFlowBuffer(BufferPolicy):
    """One bounded FIFO per flow, served round-robin (2PP's per-flow
    fair queueing).  Arrivals to a full flow queue are dropped."""

    def __init__(
        self,
        node_id: int,
        next_hop: Callable[[int], int],
        *,
        per_flow_capacity: int = 10,
    ) -> None:
        super().__init__(node_id, next_hop)
        if per_flow_capacity < 1:
            raise BufferError_(f"per-flow capacity must be >= 1: {per_flow_capacity}")
        self.per_flow_capacity = per_flow_capacity
        self._queues: dict[int, deque[Packet]] = {}
        self._last_flow: int | None = None

    def _admit(self, packet: Packet, *, count_drop: bool) -> bool:
        queue = self._queues.setdefault(packet.flow_id, deque())
        if len(queue) >= self.per_flow_capacity:
            if count_drop:
                self._count_drop(packet)
            return False
        queue.append(packet)
        return True

    def admit_local(self, packet: Packet) -> bool:
        # A refused local packet is backpressure, not loss: the source
        # never generates it, so it must not enter the drop ledger.
        return self._admit(packet, count_drop=False)

    def admit_forwarded(self, packet: Packet) -> bool:
        return self._admit(packet, count_drop=True)

    def dequeue(self, now: float) -> tuple[Packet, int] | None:
        for flow_id in _rr_order(self._queues, self._last_flow):
            queue = self._queues[flow_id]
            if queue:
                self._last_flow = flow_id
                packet = queue.popleft()
                return packet, self.next_hop(packet.destination)
        return None

    def dequeue_for(self, next_hop: int, now: float) -> Packet | None:
        for flow_id in _rr_order(self._queues, self._last_flow):
            queue = self._queues[flow_id]
            if queue and self.next_hop(queue[0].destination) == next_hop:
                self._last_flow = flow_id
                return queue.popleft()
        return None

    def eligible_links(self, now: float) -> dict[Link, int]:
        counts: dict[Link, int] = {}
        for queue in self._queues.values():
            for packet in queue:
                a_link = (self.node_id, self.next_hop(packet.destination))
                counts[a_link] = counts.get(a_link, 0) + 1
        return counts

    def backlog(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def queued_packets(self) -> list[Packet]:
        return [
            packet
            for flow_id in sorted(self._queues)
            for packet in self._queues[flow_id]
        ]

    def drain(self, now: float) -> list[Packet]:
        lost = self.queued_packets()
        self._queues.clear()
        return lost


#: Piggyback key used by the shared-queue backpressure policy: the
#: node has a single queue, so a single pseudo-destination bit is
#: advertised.
SHARED_QUEUE_KEY = -1


class SharedBackpressureBuffer(BufferPolicy):
    """One bounded FIFO for *all* destinations, with backpressure.

    This is the §5.1 straw-man: congestion avoidance is applied to a
    single shared queue.  Backpressure from any bottleneck saturates
    the one queue and penalizes every flow passing the node, which is
    the paper's argument for per-destination queueing (compare
    :class:`PerDestinationBuffer`).

    The head of line blocks strictly: if the head packet's downstream
    queue is full, nothing is sent, even when packets further back
    could go elsewhere.
    """

    def __init__(
        self,
        node_id: int,
        next_hop: Callable[[int], int],
        gate: BackpressureGate,
        *,
        capacity: int = 10,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(node_id, next_hop)
        if capacity < 1:
            raise BufferError_(f"capacity must be >= 1, got {capacity}")
        self.gate = gate
        self.capacity = capacity
        self._queue: deque[Packet] = deque()
        self.meter = FullnessMeter(start_time=start_time)

    def has_free(self, dest: int) -> bool:
        """Single shared bit: any free slot at all (``dest`` ignored)."""
        return len(self._queue) < self.capacity

    def admit_local(self, packet: Packet) -> bool:
        if len(self._queue) >= self.capacity:
            return False
        self._queue.append(packet)
        return True

    def admit_forwarded(self, packet: Packet) -> bool:
        if len(self._queue) >= self.capacity:
            self.overshoot += 1
        self._queue.append(packet)
        return True

    def _head_eligible(self, now: float) -> bool:
        if not self._queue:
            return False
        head = self._queue[0]
        return self.gate.allows(
            self.next_hop(head.destination), SHARED_QUEUE_KEY, now
        )

    def dequeue(self, now: float) -> tuple[Packet, int] | None:
        if not self._head_eligible(now):
            return None
        packet = self._queue.popleft()
        return packet, self.next_hop(packet.destination)

    def dequeue_for(self, next_hop: int, now: float) -> Packet | None:
        if not self._head_eligible(now):
            return None
        if self.next_hop(self._queue[0].destination) != next_hop:
            return None
        return self._queue.popleft()

    def eligible_links(self, now: float) -> dict[Link, int]:
        # Demand is the contiguous same-next-hop run at the head; the
        # gate is applied per packet at dequeue time.
        if not self._queue:
            return {}
        head = self._queue[0]
        a_link = (self.node_id, self.next_hop(head.destination))
        run = 0
        for packet in self._queue:
            if self.next_hop(packet.destination) == self.next_hop(head.destination):
                run += 1
            else:
                break
        return {a_link: run}

    def backlog(self) -> int:
        return len(self._queue)

    def queued_packets(self) -> list[Packet]:
        return list(self._queue)

    def drain(self, now: float) -> list[Packet]:
        lost = list(self._queue)
        self._queue.clear()
        return lost

    def piggyback_states(self) -> dict[int, bool]:
        return {SHARED_QUEUE_KEY: self.has_free(SHARED_QUEUE_KEY)}


class PerDestinationBuffer(BufferPolicy):
    """GMP's policy: one bounded queue per served destination, each a
    virtual-node queue, with backpressure gating.

    * local packets are *refused* when their destination queue is full
      (backpressure reaches the source, which generates more slowly);
    * forwarded packets are always accepted — the upstream gate should
      have prevented them when full; in-flight races may overshoot the
      nominal capacity, which is counted, not dropped (the paper's
      scheme avoids forwarding drops by construction);
    * a queue's head may be sent only when the gate believes the
      downstream queue for that destination has free space.

    Each queue owns a :class:`FullnessMeter`; GMP reads Ω from it.

    When a :class:`~repro.telemetry.Telemetry` instance is supplied,
    each queue additionally records its length trajectory
    (``buffer.queue_len``) and full/not-full dwell time
    (``buffer.fullness``); both piggyback on the meter updates the
    policy already performs, so no extra events are scheduled.
    """

    def __init__(
        self,
        node_id: int,
        next_hop: Callable[[int], int],
        gate: BackpressureGate,
        *,
        per_dest_capacity: int = 10,
        start_time: float = 0.0,
        telemetry=None,
    ) -> None:
        super().__init__(node_id, next_hop)
        if per_dest_capacity < 1:
            raise BufferError_(f"per-dest capacity must be >= 1: {per_dest_capacity}")
        self.gate = gate
        self.per_dest_capacity = per_dest_capacity
        self._queues: dict[int, deque[Packet]] = {}
        self._meters: dict[int, FullnessMeter] = {}
        self._last_dest: int | None = None
        self._start_time = start_time
        self._tm = telemetry if telemetry is not None and telemetry.enabled else None
        self._len_series: dict[int, object] = {}
        self._full_hists: dict[int, object] = {}

    # --- queue bookkeeping -------------------------------------------------------

    def _queue_for(self, dest: int) -> deque[Packet]:
        if dest not in self._queues:
            self._queues[dest] = deque()
            self._meters[dest] = FullnessMeter(start_time=self._start_time)
        return self._queues[dest]

    def _update_meter(self, dest: int, now: float) -> None:
        length = len(self._queues[dest])
        full = length >= self.per_dest_capacity
        self._meters[dest].set_full(now, full)
        if self._tm is not None:
            series = self._len_series.get(dest)
            if series is None:
                series = self._tm.registry.series(
                    "buffer.queue_len", node=self.node_id, dest=dest
                )
                self._len_series[dest] = series
                self._full_hists[dest] = self._tm.registry.histogram(
                    "buffer.fullness", (0.5,), node=self.node_id, dest=dest
                )
            series.record_changed(now, length)
            self._full_hists[dest].update(now, 1.0 if full else 0.0)

    def served_destinations(self) -> list[int]:
        """Destinations with an instantiated queue, sorted."""
        return sorted(self._queues)

    def queue_length(self, dest: int) -> int:
        """Current length of the queue for ``dest`` (0 if absent)."""
        queue = self._queues.get(dest)
        return len(queue) if queue is not None else 0

    def has_free(self, dest: int) -> bool:
        """True if the queue for ``dest`` has a free nominal slot."""
        return self.queue_length(dest) < self.per_dest_capacity

    def fullness(self, dest: int, now: float) -> float:
        """Ω of the queue for ``dest`` over the current window."""
        meter = self._meters.get(dest)
        if meter is None:
            return 0.0
        self._update_meter(dest, now)
        return meter.fraction_full(now)

    def reset_meters(self, now: float) -> None:
        """Start a new measurement window on every queue."""
        for dest, meter in self._meters.items():
            self._update_meter(dest, now)
            meter.reset(now)

    # --- admission; `now` is carried on the packet path via stack wrappers -----

    def admit_local_at(self, packet: Packet, now: float) -> bool:
        """Admission for local packets with explicit time (preferred)."""
        queue = self._queue_for(packet.destination)
        if len(queue) >= self.per_dest_capacity:
            self._update_meter(packet.destination, now)
            return False
        queue.append(packet)
        self._update_meter(packet.destination, now)
        return True

    def admit_forwarded_at(self, packet: Packet, now: float) -> bool:
        """Admission for forwarded packets with explicit time."""
        queue = self._queue_for(packet.destination)
        if len(queue) >= self.per_dest_capacity:
            self.overshoot += 1
        queue.append(packet)
        self._update_meter(packet.destination, now)
        return True

    def admit_local(self, packet: Packet) -> bool:
        raise BufferError_(
            "PerDestinationBuffer needs admit_local_at(packet, now); "
            "use the node stack wrappers"
        )

    def admit_forwarded(self, packet: Packet) -> bool:
        raise BufferError_(
            "PerDestinationBuffer needs admit_forwarded_at(packet, now); "
            "use the node stack wrappers"
        )

    # --- service -------------------------------------------------------------------

    def _eligible(self, dest: int, now: float) -> bool:
        queue = self._queues.get(dest)
        if not queue:
            return False
        return self.gate.allows(self.next_hop(dest), dest, now)

    def dequeue(self, now: float) -> tuple[Packet, int] | None:
        for dest in _rr_order(self._queues, self._last_dest):
            if self._eligible(dest, now):
                self._last_dest = dest
                packet = self._queues[dest].popleft()
                self._update_meter(dest, now)
                return packet, self.next_hop(dest)
        return None

    def dequeue_for(self, next_hop: int, now: float) -> Packet | None:
        for dest in _rr_order(self._queues, self._last_dest):
            if self.next_hop(dest) == next_hop and self._eligible(dest, now):
                self._last_dest = dest
                packet = self._queues[dest].popleft()
                self._update_meter(dest, now)
                return packet
        return None

    def eligible_links(self, now: float) -> dict[Link, int]:
        # Raw backlog per link: the gate is applied per packet at
        # dequeue time, so a currently blocked queue still registers
        # demand (it may unblock when the downstream queue drains
        # within the same fluid round).
        counts: dict[Link, int] = {}
        for dest, queue in self._queues.items():
            if queue:
                a_link = (self.node_id, self.next_hop(dest))
                counts[a_link] = counts.get(a_link, 0) + len(queue)
        return counts

    def backlog(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def queued_packets(self) -> list[Packet]:
        return [
            packet
            for dest in sorted(self._queues)
            for packet in self._queues[dest]
        ]

    def drain(self, now: float) -> list[Packet]:
        lost = self.queued_packets()
        for dest, queue in self._queues.items():
            queue.clear()
            self._update_meter(dest, now)
        return lost

    def piggyback_states(self) -> dict[int, bool]:
        return {dest: self.has_free(dest) for dest in self._queues}
