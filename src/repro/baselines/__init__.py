"""Baseline protocols the paper compares GMP against (§7.2).

* :mod:`repro.baselines.dcf_plain` — plain IEEE 802.11 DCF: a shared
  300-packet FIFO with tail overwrite and no rate control;
* :mod:`repro.baselines.two_phase` — 2PP (Li, ICDCS'05): per-flow
  10-packet queues, a conservative *basic fair share* for every flow,
  and a linear program that hands the remaining capacity to the flows
  that consume the least of it (favoring short flows).
"""

from repro.baselines.dcf_plain import plain_dcf_buffer
from repro.baselines.two_phase import TwoPhaseAllocation, two_phase_rates

__all__ = ["plain_dcf_buffer", "TwoPhaseAllocation", "two_phase_rates"]
