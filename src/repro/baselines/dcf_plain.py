"""Plain IEEE 802.11 DCF baseline.

No rate adaptation; per the paper's setup, "all flows passing a node
share the same buffer space.  When a packet arrives at a node whose
buffer is full, it will overwrite the packet at the tail of the
queue."  Everything is already implemented by
:class:`~repro.buffers.queues.SharedFifoBuffer`; this module only
fixes the baseline's configuration in one place.
"""

from __future__ import annotations

from typing import Callable

from repro.buffers.queues import SharedFifoBuffer

#: Shared-buffer size from the paper's setup (§7): 300 packets.
PLAIN_BUFFER_CAPACITY = 300


def plain_dcf_buffer(
    node_id: int,
    next_hop: Callable[[int], int],
    *,
    capacity: int = PLAIN_BUFFER_CAPACITY,
) -> SharedFifoBuffer:
    """The buffer policy of a plain-802.11 node."""
    return SharedFifoBuffer(node_id, next_hop, capacity=capacity)
