"""Linear-program wrapper for 2PP's second phase.

2PP distributes the capacity left over after the basic fair shares by
maximizing aggregate extra throughput subject to the clique capacity
constraints — the LP naturally concentrates the surplus on flows that
consume the fewest clique resources (short and lightly contended
flows), which is exactly the bias the paper criticizes in Table 4.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.errors import AnalysisError


def maximize_total_extra(
    consumption: np.ndarray,
    slack: np.ndarray,
    upper_bounds: np.ndarray,
) -> np.ndarray:
    """Solve ``max sum(x)`` s.t. ``consumption @ x <= slack``,
    ``0 <= x <= upper_bounds``.

    Args:
        consumption: (num_cliques, num_flows) matrix; entry (c, f) is
            how many units of clique c's capacity one packet/second of
            flow f consumes (its path links inside c).
        slack: remaining capacity per clique after phase 1.
        upper_bounds: per-flow cap (desired rate minus basic share).

    Returns:
        The optimal extra rate per flow.

    Raises:
        AnalysisError: if the LP is infeasible (cannot happen with
            non-negative slack) or the solver fails.
    """
    num_flows = consumption.shape[1] if consumption.size else len(upper_bounds)
    if num_flows == 0:
        return np.zeros(0)
    slack = np.maximum(slack, 0.0)
    upper_bounds = np.maximum(upper_bounds, 0.0)
    result = linprog(
        c=-np.ones(num_flows),
        A_ub=consumption if consumption.size else None,
        b_ub=slack if consumption.size else None,
        bounds=[(0.0, float(bound)) for bound in upper_bounds],
        method="highs",
    )
    if not result.success:
        raise AnalysisError(f"2PP phase-2 LP failed: {result.message}")
    return np.maximum(result.x, 0.0)
