"""2PP — the two-phase end-to-end fair allocation of Li (ICDCS'05).

The paper describes 2PP as: "ensure a basic fair share of bandwidth
for all flows and then favor short flows in allocating the remaining
bandwidth ... based on the linear programming approach".  We implement
it in the clique-capacity model:

* **Phase 1 (basic fair share).**  Every clique's capacity is divided
  equally among all flow-link traversals inside it; a flow's basic
  share is the minimum over the cliques its path crosses.  This is the
  "highly conservative" share the paper criticizes — a flow crossing a
  busy clique gets a small share even if that clique is otherwise
  lightly used.
* **Phase 2 (LP).**  Remaining clique capacity is handed out by
  maximizing total extra throughput, which drives all surplus to the
  flows with the fewest clique traversals (short/side flows).

The resulting per-flow rates are enforced as static source rate
limits; nodes queue per flow (10 packets) and serve flows round-robin,
per the paper's §7.2 description of 2PP's buffer strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.lp import maximize_total_extra
from repro.errors import AnalysisError
from repro.flows.flow import FlowSet
from repro.routing.table import RouteSet
from repro.topology.cliques import Clique, link_clique_index
from repro.topology.network import Link


def _canonical(a_link: Link) -> Link:
    i, j = a_link
    return (i, j) if i <= j else (j, i)


@dataclass(frozen=True)
class TwoPhaseAllocation:
    """Result of the 2PP computation.

    Attributes:
        basic: phase-1 basic fair share per flow (packets/second).
        extra: phase-2 LP surplus per flow.
        rates: total allocation (basic + extra), capped at the desired
            rate.
    """

    basic: dict[int, float]
    extra: dict[int, float]
    rates: dict[int, float]


def two_phase_rates(
    flows: FlowSet,
    routes: RouteSet,
    cliques: list[Clique],
    capacity: float,
    *,
    clique_capacities: dict[tuple[int, int], float] | None = None,
) -> TwoPhaseAllocation:
    """Compute 2PP's end-to-end rates.

    Raises:
        AnalysisError: on empty flow sets or non-positive capacities.
    """
    if len(flows) == 0:
        raise AnalysisError("2PP allocation of an empty flow set")
    capacities = {
        clique.clique_id: (clique_capacities or {}).get(clique.clique_id, capacity)
        for clique in cliques
    }
    if any(value <= 0 for value in capacities.values()):
        raise AnalysisError("clique capacities must be positive")

    flow_ids = [flow.flow_id for flow in flows]
    link_index = link_clique_index(cliques)
    traversals: dict[int, dict[tuple[int, int], int]] = {}
    for flow in flows:
        path = [
            _canonical(a_link)
            for a_link in routes.path_links(flow.source, flow.destination)
        ]
        counts: dict[tuple[int, int], int] = {}
        for a_link in path:
            for clique_id in link_index.get(a_link, ()):
                counts[clique_id] = counts.get(clique_id, 0) + 1
        traversals[flow.flow_id] = counts

    # Phase 1 (Li's basic fair share): every clique divides its
    # capacity equally among its member links regardless of load, each
    # link divides its share equally among the flows crossing it, and a
    # flow's basic share is the minimum over its path links.  This is
    # deliberately conservative — a lightly-loaded link in a big clique
    # still only gets 1/|clique| of the capacity.
    flows_per_link: dict[Link, int] = {}
    for flow in flows:
        for a_link in sorted(
            {
                _canonical(a_link)
                for a_link in routes.path_links(flow.source, flow.destination)
            }
        ):
            flows_per_link[a_link] = flows_per_link.get(a_link, 0) + 1
    link_share: dict[Link, float] = {}
    for clique in cliques:
        share = capacities[clique.clique_id] / len(clique.links)
        for a_link in clique.links:
            current = link_share.get(a_link)
            link_share[a_link] = share if current is None else min(current, share)
    basic: dict[int, float] = {}
    for flow in flows:
        path = {
            _canonical(a_link)
            for a_link in routes.path_links(flow.source, flow.destination)
        }
        shares = [
            link_share[a_link] / flows_per_link[a_link]
            for a_link in path
            if a_link in link_share
        ]
        share = min(shares) if shares else flow.desired_rate
        basic[flow.flow_id] = min(share, flow.desired_rate)

    # Phase 2: LP over the remaining capacity.
    clique_ids = [clique.clique_id for clique in cliques]
    consumption = np.array(
        [
            [traversals[flow_id].get(clique_id, 0) for flow_id in flow_ids]
            for clique_id in clique_ids
        ],
        dtype=float,
    )
    used = consumption @ np.array([basic[flow_id] for flow_id in flow_ids])
    slack = np.array([capacities[cid] for cid in clique_ids]) - used
    upper = np.array(
        [flows.get(flow_id).desired_rate - basic[flow_id] for flow_id in flow_ids]
    )
    extra_vector = maximize_total_extra(consumption, slack, upper)
    extra = {flow_id: float(extra_vector[k]) for k, flow_id in enumerate(flow_ids)}

    rates = {
        flow_id: min(
            basic[flow_id] + extra[flow_id], flows.get(flow_id).desired_rate
        )
        for flow_id in flow_ids
    }
    return TwoPhaseAllocation(basic=basic, extra=extra, rates=rates)
