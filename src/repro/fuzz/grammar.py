"""The scenario grammar: generation and serialization.

A :class:`FuzzScenario` is a *complete, self-contained* description of
one randomized run — topology seed, static flows, churn spec, fault
schedule, run seed, duration — small enough to commit as a regression
fixture and precise enough to replay the identical simulation.  The
churn and fault components reuse the library's textual DSLs
(:func:`repro.churn.spec.parse_churn_spec`,
:func:`repro.faults.spec.parse_fault_spec`), so a spec file doubles as
a human-readable bug report.

:func:`generate_scenarios` draws specs from a seeded grammar through a
:class:`~repro.sim.rng.RngRegistry` — scenario ``i`` of budget ``N``
under seed ``S`` is always the same spec, independent of how many
other scenarios run, so a CI failure reproduces locally from just
``(S, i)``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.churn.spec import parse_churn_spec
from repro.errors import FuzzError
from repro.faults.spec import parse_fault_spec
from repro.flows.flow import Flow, FlowSet
from repro.routing.link_state import link_state_routes
from repro.scenarios.figures import PAPER_DESIRED_RATE, Scenario
from repro.sim.rng import RngRegistry
from repro.topology.builders import random_topology

#: Planted bugs the fuzzer can inject to validate its own oracle +
#: shrinker pipeline (``--plant-bug``).
PLANTED_BUGS = ("gmp-leak",)


@dataclass(frozen=True)
class FuzzScenario:
    """One randomized scenario, fully replayable.

    Attributes:
        nodes: node count of the random topology.
        topo_seed: placement seed for :func:`random_topology`.
        seed: the run's RNG seed.
        duration: simulated seconds.
        flows: static (source, dest) pairs; ids are assigned 1..n in
            order.
        churn: churn spec in compact text form, or None.
        faults: fault schedule in the fault DSL, or None.
        plant_bug: name of a deliberately injected defect (see
            :data:`PLANTED_BUGS`), or None for an honest run.  Lives in
            the spec so a shrunk planted-bug fixture replays the bug.
    """

    nodes: int
    topo_seed: int
    seed: int
    duration: float
    flows: tuple[tuple[int, int], ...]
    churn: str | None = None
    faults: str | None = None
    plant_bug: str | None = None

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise FuzzError(f"need at least 2 nodes: {self.nodes}")
        if self.duration <= 0:
            raise FuzzError(f"duration must be positive: {self.duration}")
        if not self.flows:
            raise FuzzError("a scenario needs at least one static flow")
        if self.plant_bug is not None and self.plant_bug not in PLANTED_BUGS:
            raise FuzzError(
                f"unknown planted bug {self.plant_bug!r}; "
                f"known: {PLANTED_BUGS}"
            )

    # --- serialization ----------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-plain form (the committed-fixture format)."""
        data: dict = {
            "nodes": self.nodes,
            "topo_seed": self.topo_seed,
            "seed": self.seed,
            "duration": self.duration,
            "flows": [list(pair) for pair in self.flows],
        }
        if self.churn is not None:
            data["churn"] = self.churn
        if self.faults is not None:
            data["faults"] = self.faults
        if self.plant_bug is not None:
            data["plant_bug"] = self.plant_bug
        return data

    @classmethod
    def from_json(cls, data: dict) -> "FuzzScenario":
        """Parse the committed-fixture format.

        Raises:
            FuzzError: on missing keys or malformed values.
        """
        try:
            return cls(
                nodes=int(data["nodes"]),
                topo_seed=int(data["topo_seed"]),
                seed=int(data["seed"]),
                duration=float(data["duration"]),
                flows=tuple(
                    (int(pair[0]), int(pair[1])) for pair in data["flows"]
                ),
                churn=data.get("churn"),
                faults=data.get("faults"),
                plant_bug=data.get("plant_bug"),
            )
        except (KeyError, TypeError, ValueError, IndexError) as error:
            raise FuzzError(f"malformed fuzz spec: {error}") from None

    def write(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def read(cls, path: str | Path) -> "FuzzScenario":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise FuzzError(f"cannot read fuzz spec {path}: {error}") from None
        return cls.from_json(data)

    def label(self) -> str:
        """Short human identifier (scenario name in run results)."""
        return f"fuzz-n{self.nodes}-t{self.topo_seed}-s{self.seed}"


def build_scenario(spec: FuzzScenario) -> Scenario:
    """Materialize the spec's topology and static flows.

    Also validates the churn/fault texts (so a malformed committed
    fixture fails loudly here, not mid-run).

    Raises:
        FuzzError: for flow pairs outside the topology or unroutable;
        ChurnError / FaultError: for malformed churn/fault texts.
    """
    topology = random_topology(
        spec.nodes, seed=spec.topo_seed, require_connected=True
    )
    routes = link_state_routes(topology)
    flow_list: list[Flow] = []
    for index, (source, dest) in enumerate(spec.flows, start=1):
        if source not in topology or dest not in topology:
            raise FuzzError(
                f"flow pair ({source}, {dest}) outside the {spec.nodes}-node "
                "topology"
            )
        if not routes.table(source).has_route(dest):
            raise FuzzError(f"flow pair ({source}, {dest}) is unroutable")
        flow_list.append(
            Flow(
                flow_id=index,
                source=source,
                destination=dest,
                desired_rate=PAPER_DESIRED_RATE,
            )
        )
    if spec.churn is not None:
        parse_churn_spec(spec.churn)
    if spec.faults is not None:
        parse_fault_spec(spec.faults)
    return Scenario(
        name=spec.label(),
        topology=topology,
        flows=FlowSet(flow_list),
        notes="generated by repro.fuzz",
    )


def is_valid(spec: FuzzScenario) -> bool:
    """Whether the spec materializes cleanly (shrinker candidates)."""
    from repro.errors import ReproError

    try:
        build_scenario(spec)
    except ReproError:
        return False
    return True


@dataclass
class GrammarConfig:
    """Knobs of the generation grammar (defaults = CI smoke shape)."""

    min_nodes: int = 4
    max_nodes: int = 8
    min_flows: int = 1
    max_flows: int = 3
    durations: tuple[float, ...] = (20.0, 30.0, 40.0)
    churn_probability: float = 0.8
    fault_probability: float = 0.5
    traffic_models: tuple[str, ...] = ("cbr", "poisson", "onoff", "pareto-onoff")
    hold_models: tuple[str, ...] = ("exp", "pareto")
    seed_space: int = 2**31 - 1


def _draw_flows(rng, routes, nodes: int, config: GrammarConfig):
    pairs = [
        (s, d)
        for s in range(nodes)
        for d in range(nodes)
        if s != d and routes.table(s).has_route(d)
    ]
    count = min(int(rng.integers(config.min_flows, config.max_flows + 1)), len(pairs))
    chosen: list[tuple[int, int]] = []
    for _ in range(count):
        remaining = [pair for pair in pairs if pair not in chosen]
        if not remaining:
            break
        chosen.append(remaining[int(rng.integers(len(remaining)))])
    return tuple(chosen)


def _draw_churn(rng, config: GrammarConfig) -> str:
    if rng.uniform() < 0.25:
        burst = int(rng.integers(1, 4))
        on = int(rng.integers(1, 4))
        off = int(rng.integers(1, 4))
        return f"adversary:burst={burst},on={on},off={off}"
    rate = round(float(rng.uniform(0.15, 0.5)), 3)
    mean_hold = round(float(rng.uniform(3.0, 10.0)), 2)
    hold = config.hold_models[int(rng.integers(len(config.hold_models)))]
    max_flows = int(rng.integers(2, 6))
    traffic = config.traffic_models[int(rng.integers(len(config.traffic_models)))]
    text = (
        f"poisson:rate={rate},mean_hold={mean_hold},hold={hold},"
        f"max_flows={max_flows},traffic={traffic}"
    )
    if hold == "pareto":
        alpha = round(float(rng.uniform(1.2, 2.5)), 2)
        text += f",alpha={alpha}"
    return text


def _draw_faults(rng, nodes: int, duration: float) -> str | None:
    kind = int(rng.integers(3))
    if kind == 0:
        # Crash/recover one node mid-run.
        node = int(rng.integers(nodes))
        crash_at = round(float(rng.uniform(0.2, 0.5)) * duration, 2)
        recover_at = round(
            crash_at + float(rng.uniform(0.1, 0.3)) * duration, 2
        )
        if recover_at >= duration:
            return f"crash:{node}@{crash_at}"
        return f"crash:{node}@{crash_at};recover:{node}@{recover_at}"
    if kind == 1:
        # Control-plane loss window.
        prob = round(float(rng.uniform(0.2, 0.9)), 2)
        start = round(float(rng.uniform(0.2, 0.5)) * duration, 2)
        end = round(start + float(rng.uniform(0.1, 0.4)) * duration, 2)
        end = min(end, round(duration, 2))
        if end <= start:
            return None
        return f"ctrl:{prob}@{start}-{end}"
    return None  # fault-free third of the fault-enabled runs


def generate_scenarios(
    budget: int,
    seed: int,
    *,
    config: GrammarConfig | None = None,
    plant_bug: str | None = None,
) -> list[FuzzScenario]:
    """Draw ``budget`` scenarios from the grammar under ``seed``.

    Each scenario uses its own registry stream (``fuzz.scenario.<i>``),
    so the i-th spec is stable across budget changes.

    Raises:
        FuzzError: on a non-positive budget or unknown planted bug.
    """
    if budget < 1:
        raise FuzzError(f"budget must be >= 1: {budget}")
    if plant_bug is not None and plant_bug not in PLANTED_BUGS:
        raise FuzzError(
            f"unknown planted bug {plant_bug!r}; known: {PLANTED_BUGS}"
        )
    config = config or GrammarConfig()
    registry = RngRegistry(seed)
    specs: list[FuzzScenario] = []
    for index in range(budget):
        rng = registry.stream(f"fuzz.scenario.{index}")
        nodes = int(rng.integers(config.min_nodes, config.max_nodes + 1))
        topo_seed = int(rng.integers(config.seed_space))
        run_seed = int(rng.integers(config.seed_space))
        duration = float(
            config.durations[int(rng.integers(len(config.durations)))]
        )
        topology = random_topology(
            nodes, seed=topo_seed, require_connected=True
        )
        routes = link_state_routes(topology)
        flows = _draw_flows(rng, routes, nodes, config)
        if not flows:
            # Degenerate placement; fall back to any routable pair.
            flows = ((0, nodes - 1),)
        churn = (
            _draw_churn(rng, config)
            if rng.uniform() < config.churn_probability
            else None
        )
        # A planted GMP leak needs departures to leak on.
        if plant_bug == "gmp-leak" and churn is None:
            churn = _draw_churn(rng, config)
        faults = (
            _draw_faults(rng, nodes, duration)
            if rng.uniform() < config.fault_probability
            else None
        )
        spec = FuzzScenario(
            nodes=nodes,
            topo_seed=topo_seed,
            seed=run_seed,
            duration=duration,
            flows=flows,
            churn=churn,
            faults=faults,
            plant_bug=plant_bug,
        )
        if not is_valid(spec):
            # e.g. the fallback pair is unroutable on this placement;
            # regenerate as a minimal fault-free variant.
            spec = replace(spec, faults=None)
            if not is_valid(spec):
                continue
        specs.append(spec)
    return specs
