"""Scenario shrinking: reduce a failing spec to a minimal repro.

Greedy delta debugging over the spec's structure: each pass proposes a
simpler candidate (drop the fault schedule, drop one fault event, drop
one static flow, simplify the churn process, halve the duration,
shrink the topology) and keeps it iff the candidate still fails *the
same oracles* as the original.  Passes repeat until a full sweep
changes nothing — the fixpoint is the spec committed as a regression
fixture.

Every candidate evaluation replays deterministically (same seeds), so
shrinking is itself reproducible: the same failing spec always shrinks
to the same minimal spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.churn.spec import parse_churn_spec
from repro.errors import ReproError
from repro.fuzz.grammar import FuzzScenario, is_valid
from repro.fuzz.oracles import FuzzOutcome, evaluate

#: Runs shorter than this stop being meaningful (warmup + a few GMP
#: periods must fit).
MIN_DURATION = 10.0


@dataclass
class ShrinkResult:
    """Outcome of one shrink session.

    Attributes:
        minimal: the smallest still-failing spec found.
        original: the spec shrinking started from.
        evaluations: candidate runs spent (each is two simulations).
        steps: human-readable log of accepted reductions.
    """

    minimal: FuzzScenario
    original: FuzzScenario
    evaluations: int = 0
    steps: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"shrink: {len(self.steps)} reduction(s) in "
            f"{self.evaluations} evaluation(s)"
        ]
        lines.extend(f"  - {step}" for step in self.steps)
        return "\n".join(lines)


def _churn_candidates(spec: FuzzScenario) -> Iterator[tuple[str, FuzzScenario]]:
    """Simplifications of the churn component, simplest-first."""
    if spec.churn is None:
        return
    if spec.plant_bug is None:
        # A planted GMP leak needs churn to manifest; otherwise try
        # removing the whole process first.
        yield "drop churn", replace(spec, churn=None)
    try:
        churn = parse_churn_spec(spec.churn)
    except ReproError:
        return
    if churn.model == "poisson":
        if churn.max_flows > 1:
            yield (
                "churn max_flows -> 1",
                replace(spec, churn=replace(churn, max_flows=1).to_text()),
            )
        if churn.rate > 0.1:
            yield (
                "halve churn rate",
                replace(
                    spec,
                    churn=replace(churn, rate=round(churn.rate / 2, 4)).to_text(),
                ),
            )
        if churn.hold != "exp":
            yield (
                "churn hold -> exp",
                replace(spec, churn=replace(churn, hold="exp").to_text()),
            )
        if churn.traffic != "cbr":
            yield (
                "churn traffic -> cbr",
                replace(spec, churn=replace(churn, traffic="cbr").to_text()),
            )
    else:
        if churn.burst > 1:
            yield (
                "adversary burst -> 1",
                replace(spec, churn=replace(churn, burst=1).to_text()),
            )


def _fault_candidates(spec: FuzzScenario) -> Iterator[tuple[str, FuzzScenario]]:
    """Simplifications of the fault component."""
    if spec.faults is None:
        return
    yield "drop faults", replace(spec, faults=None)
    events = [part.strip() for part in spec.faults.split(";") if part.strip()]
    if len(events) > 1:
        for index in range(len(events)):
            kept = events[:index] + events[index + 1 :]
            yield (
                f"drop fault event {events[index]!r}",
                replace(spec, faults=";".join(kept)),
            )


def _candidates(spec: FuzzScenario) -> Iterator[tuple[str, FuzzScenario]]:
    """All one-step reductions, biggest-win-first."""
    yield from _fault_candidates(spec)
    yield from _churn_candidates(spec)
    if len(spec.flows) > 1:
        for index in range(len(spec.flows)):
            kept = spec.flows[:index] + spec.flows[index + 1 :]
            yield (
                f"drop static flow {spec.flows[index]}",
                replace(spec, flows=kept),
            )
    if spec.duration / 2 >= MIN_DURATION:
        yield (
            f"halve duration to {spec.duration / 2:g}s",
            replace(spec, duration=spec.duration / 2),
        )
    if spec.nodes > 3:
        yield (f"shrink to {spec.nodes - 1} nodes", replace(spec, nodes=spec.nodes - 1))


def shrink(
    spec: FuzzScenario,
    failed_names: set[str],
    *,
    max_evaluations: int = 40,
    still_fails: Callable[[FuzzScenario], FuzzOutcome] | None = None,
) -> ShrinkResult:
    """Reduce ``spec`` while it keeps failing the same oracles.

    Args:
        spec: the failing scenario.
        failed_names: oracle names the original failed (a candidate is
            accepted only if it fails at least one of them again —
            shrinking must not wander onto a *different* bug).
        max_evaluations: budget of candidate evaluations (each costs
            two simulation runs).
        still_fails: evaluation hook, overridable in tests; defaults to
            :func:`repro.fuzz.oracles.evaluate`.
    """
    evaluate_spec = still_fails or evaluate
    result = ShrinkResult(minimal=spec, original=spec)

    def reproduces(candidate: FuzzScenario) -> bool:
        result.evaluations += 1
        outcome = evaluate_spec(candidate)
        return bool(outcome.failed_names() & failed_names)

    current = spec
    improved = True
    while improved and result.evaluations < max_evaluations:
        improved = False
        for label, candidate in _candidates(current):
            if result.evaluations >= max_evaluations:
                break
            if not is_valid(candidate):
                continue
            if reproduces(candidate):
                current = candidate
                result.steps.append(label)
                improved = True
                break  # restart passes from the simpler spec
    result.minimal = current
    return result
