"""``python -m repro fuzz`` — the scenario fuzzer's command line.

Examples::

    python -m repro fuzz --budget 60 --seed 1
    python -m repro fuzz --budget 20 --seed 7 --out failures/
    python -m repro fuzz --budget 10 --seed 3 --plant-bug gmp-leak
    python -m repro fuzz --replay tests/fixtures/fuzz/gmp_leak_min.json

The budget counts *scenarios*, not seconds, so a given (budget, seed)
pair is a fixed, replayable workload.  Each scenario runs against the
full oracle battery (:mod:`repro.fuzz.oracles`); every failure is
shrunk to a minimal spec and written to the ``--out`` directory as a
JSON file that ``--replay`` (or a committed regression test) replays
bit-for-bit.  Exit status 1 when any scenario failed, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.fuzz.grammar import PLANTED_BUGS, FuzzScenario, generate_scenarios
from repro.fuzz.oracles import evaluate
from repro.fuzz.shrink import shrink


def fuzz_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fuzz", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--budget", type=int, default=20,
        help="number of scenarios to generate and check (default 20)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="grammar seed (default 0)"
    )
    parser.add_argument(
        "--out", default="fuzz-failures",
        help="directory for shrunk failing specs (default fuzz-failures/)",
    )
    parser.add_argument(
        "--plant-bug", choices=PLANTED_BUGS, default=None,
        help="inject a known defect (self-check of the oracle + "
        "shrinker pipeline; the run is expected to fail)",
    )
    parser.add_argument(
        "--replay", default=None, metavar="SPEC.json",
        help="replay one committed spec instead of generating scenarios",
    )
    parser.add_argument(
        "--max-shrink-evals", type=int, default=40,
        help="candidate-evaluation budget per shrink (default 40)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without shrinking them",
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        try:
            spec = FuzzScenario.read(args.replay)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        outcome = evaluate(spec)
        print(outcome.render())
        return 0 if outcome.ok else 1

    try:
        specs = generate_scenarios(
            args.budget, args.seed, plant_bug=args.plant_bug
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(
        f"fuzz: {len(specs)} scenario(s), seed {args.seed}"
        + (f", planted bug {args.plant_bug}" if args.plant_bug else "")
    )
    failures = 0
    written: list[Path] = []
    for index, spec in enumerate(specs):
        outcome = evaluate(spec)
        if outcome.ok:
            print(f"  [{index}] {spec.label()}: ok")
            continue
        failures += 1
        print(f"  [{index}] {outcome.render()}")
        minimal = spec
        if not args.no_shrink:
            session = shrink(
                spec,
                outcome.failed_names(),
                max_evaluations=args.max_shrink_evals,
            )
            minimal = session.minimal
            print("  " + session.render().replace("\n", "\n  "))
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"{minimal.label()}-{index}.json"
        minimal.write(path)
        written.append(path)
        print(f"  shrunk spec -> {path}")

    print(
        f"fuzz: {len(specs) - failures}/{len(specs)} ok"
        + (f", {failures} failing spec(s) written" if failures else "")
    )
    for path in written:
        print(f"  replay with: python -m repro fuzz --replay {path}")
    return 1 if failures else 0
