"""Property-based scenario fuzzing with oracle checking and shrinking.

The fuzzer closes the loop the unit tests cannot: it generates whole
*scenarios* — random connected topology, static flows, a churn process,
a fault schedule — runs each one end to end, and checks properties that
must hold for **any** workload (determinism, packet conservation, clean
flow teardown, no starvation of deliverable flows, watchdog-clean
termination).  Failures are automatically shrunk to minimal JSON specs
that replay bit-for-bit and can be committed as regression fixtures.

* :mod:`repro.fuzz.grammar` — the seeded scenario grammar and the
  :class:`FuzzScenario` spec (JSON round-trip, committed-fixture
  format);
* :mod:`repro.fuzz.oracles` — the oracle battery and
  :func:`~repro.fuzz.oracles.evaluate`;
* :mod:`repro.fuzz.shrink` — greedy delta-debugging
  (:func:`~repro.fuzz.shrink.shrink`);
* :mod:`repro.fuzz.cli` — ``python -m repro fuzz``.
"""

from repro.fuzz.grammar import (
    FuzzScenario,
    GrammarConfig,
    build_scenario,
    generate_scenarios,
)
from repro.fuzz.oracles import ORACLES, FuzzOutcome, OracleResult, evaluate
from repro.fuzz.shrink import ShrinkResult, shrink

__all__ = [
    "FuzzScenario",
    "GrammarConfig",
    "build_scenario",
    "generate_scenarios",
    "ORACLES",
    "FuzzOutcome",
    "OracleResult",
    "evaluate",
    "ShrinkResult",
    "shrink",
]
