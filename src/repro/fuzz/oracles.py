"""The oracle battery: what "this randomized run is correct" means.

Property-based fuzzing is only as good as its oracles.  Rather than
asserting exact rates (which no randomized scenario has a closed form
for), every scenario is checked against *invariants that hold for any
workload*:

* **watchdog** — the run terminates without tripping a kernel
  watchdog (no event-loop stall, no runaway schedule);
* **replay** — running the identical spec twice produces identical
  event digests (full determinism, churn and faults included);
* **conservation** — strict per-flow packet conservation on the fluid
  substrate: injected = delivered + drops + crash losses + in-flight;
* **gmp_residue** — every flow departure left zero protocol state
  behind (the post-departure audit found nothing);
* **starvation** — no flow that could deliver sat at zero for a
  sustained window *inside its own lifetime* (departures are not
  starvation), via :func:`repro.fidelity.anomaly.detect_starved_flows`.

:func:`evaluate` runs one spec against the whole battery and returns a
:class:`FuzzOutcome`; the shrinker re-evaluates candidates with it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.churn.spec import parse_churn_spec
from repro.errors import ReproError, SimulationError
from repro.faults.schedule import FaultSchedule, NodeCrash, NodeRecover
from repro.faults.spec import parse_fault_spec
from repro.fidelity.anomaly import AnomalyConfig, detect_starved_flows
from repro.fuzz.grammar import FuzzScenario, build_scenario
from repro.scenarios.results import RunResult
from repro.scenarios.runner import replay_check

ORACLES = ("watchdog", "replay", "conservation", "gmp_residue", "starvation")

#: Hard event budget per fuzz run — generous for every grammar-sized
#: scenario, small enough that a runaway schedule fails fast instead of
#: hanging CI.
MAX_EVENTS = 3_000_000

#: Seconds after a node recovery during which silence of flows routed
#: through it is still excused (reconvergence, not starvation).
RECOVERY_GRACE = 10.0


def _crash_windows(faults: FaultSchedule | None) -> list[tuple[int, float, float]]:
    """(node, start, end) windows during which a node's absence (plus
    the reconvergence grace) legitimately silences flows through it."""
    if faults is None:
        return []
    windows: list[tuple[int, float, float]] = []
    down_since: dict[int, float] = {}
    for event in faults.in_order():
        if isinstance(event, NodeCrash):
            down_since[event.node] = event.at
        elif isinstance(event, NodeRecover) and event.node in down_since:
            windows.append(
                (event.node, down_since.pop(event.node), event.at + RECOVERY_GRACE)
            )
    for node, since in down_since.items():
        windows.append((node, since, float("inf")))
    return windows


@dataclass(frozen=True)
class OracleResult:
    """One oracle's verdict on one scenario."""

    name: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""


@dataclass
class FuzzOutcome:
    """Everything one scenario evaluation produced.

    Attributes:
        spec: the evaluated scenario.
        oracles: one verdict per battery member, in :data:`ORACLES`
            order.
        error: an infrastructure error (the spec could not even be
            materialized) — counts as a failure of its own kind.
        result: the first run's :class:`RunResult` when the run
            completed (diagnostics; None after a watchdog trip).
    """

    spec: FuzzScenario
    oracles: list[OracleResult] = field(default_factory=list)
    error: str | None = None
    result: RunResult | None = None

    @property
    def failures(self) -> list[OracleResult]:
        return [o for o in self.oracles if o.status == "fail"]

    @property
    def ok(self) -> bool:
        return self.error is None and not self.failures

    def failed_names(self) -> set[str]:
        names = {o.name for o in self.failures}
        if self.error is not None:
            names.add("harness")
        return names

    def render(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        parts = [f"{self.spec.label()}: {verdict}"]
        if self.error:
            parts.append(f"  harness error: {self.error}")
        for oracle in self.oracles:
            marker = {"pass": "+", "fail": "!", "skip": "-"}[oracle.status]
            line = f"  [{marker}] {oracle.name}"
            if oracle.detail:
                line += f": {oracle.detail}"
            parts.append(line)
        return "\n".join(parts)


def evaluate(spec: FuzzScenario) -> FuzzOutcome:
    """Run one spec against the full oracle battery.

    The scenario runs on the fluid substrate under GMP (the strict-
    conservation configuration), twice via
    :func:`~repro.scenarios.runner.replay_check` so the replay oracle
    comes for free with the same two runs the others inspect.
    """
    outcome = FuzzOutcome(spec=spec)
    try:
        scenario = build_scenario(spec)
        churn = parse_churn_spec(spec.churn) if spec.churn else None
        if spec.plant_bug == "gmp-leak":
            if churn is None:
                raise ReproError(
                    "gmp-leak needs a churn spec to leak departures on"
                )
            churn = dataclasses.replace(churn, leak_departed_state=True)
        faults = parse_fault_spec(spec.faults) if spec.faults else None
    except ReproError as error:
        outcome.error = f"{type(error).__name__}: {error}"
        return outcome

    try:
        replay_report, result, _second = replay_check(
            scenario,
            protocol="gmp",
            substrate="fluid",
            duration=spec.duration,
            seed=spec.seed,
            churn=churn,
            faults=faults,
            check_invariants=False,  # audited below so all oracles report
            max_events=MAX_EVENTS,
        )
    except SimulationError as error:
        outcome.oracles.append(
            OracleResult("watchdog", "fail", f"{error}")
        )
        outcome.oracles.extend(
            OracleResult(name, "skip", "run did not complete")
            for name in ORACLES[1:]
        )
        return outcome
    except ReproError as error:
        outcome.error = f"{type(error).__name__}: {error}"
        return outcome

    outcome.result = result
    outcome.oracles.append(OracleResult("watchdog", "pass"))

    if replay_report.matched:
        outcome.oracles.append(OracleResult("replay", "pass"))
    else:
        outcome.oracles.append(
            OracleResult("replay", "fail", replay_report.render().splitlines()[0])
        )

    # Strict conservation: the runner stored a relaxed report (we asked
    # it not to raise); re-arm strictness and re-read the verdict.
    invariants = result.extras.get("invariants")
    if invariants is None:
        outcome.oracles.append(
            OracleResult("conservation", "skip", "no audit recorded")
        )
    else:
        invariants.strict = True
        violations = invariants.violations()
        if violations:
            outcome.oracles.append(
                OracleResult(
                    "conservation",
                    "fail",
                    "; ".join(violations[:3])
                    + ("" if len(violations) <= 3 else " ..."),
                )
            )
        else:
            outcome.oracles.append(OracleResult("conservation", "pass"))

    churn_report = result.extras.get("churn")
    if churn_report is None:
        outcome.oracles.append(
            OracleResult("gmp_residue", "skip", "no churn in this scenario")
        )
    elif churn_report.residues:
        leaks = sum(len(items) for items in churn_report.residues.values())
        sample_flow = min(churn_report.residues)
        outcome.oracles.append(
            OracleResult(
                "gmp_residue",
                "fail",
                f"{leaks} residue(s) across "
                f"{len(churn_report.residues)} departed flow(s), e.g. "
                f"{churn_report.residues[sample_flow][0]}",
            )
        )
    else:
        outcome.oracles.append(OracleResult("gmp_residue", "pass"))

    findings = detect_starved_flows(result, AnomalyConfig(starve_window=8.0))
    crash_windows = _crash_windows(faults)
    paths = result.extras.get("flow_paths", {})
    real = []
    excused = 0
    for finding in findings:
        flow_id = int(finding.labels.get("flow", -1))
        on_path: set[int] = set()
        for i, j in paths.get(flow_id, []):
            on_path.update((i, j))
        if any(
            node in on_path and finding.start < end and finding.end > start
            for node, start, end in crash_windows
        ):
            excused += 1  # a dead relay, not a protocol bug
        else:
            real.append(finding)
    if real:
        outcome.oracles.append(
            OracleResult(
                "starvation",
                "fail",
                real[0].render()
                + ("" if len(real) == 1 else f" (+{len(real) - 1} more)"),
            )
        )
    else:
        detail = f"{excused} finding(s) excused by crash windows" if excused else ""
        outcome.oracles.append(OracleResult("starvation", "pass", detail))

    return outcome
