"""Paper-fidelity and run-health observability.

Three instruments for trusting (or distrusting) the reproduction:

* :mod:`repro.fidelity.paper` — the source paper's Tables 1–4 as
  machine-readable ground truth, with the qualitative *shape*
  properties of EXPERIMENTS.md encoded as checkable predicates;
* :mod:`repro.fidelity.harness` — regenerates every table through the
  cached sweep engine over multiple seeds and emits a
  :class:`~repro.fidelity.harness.FidelityReport` (paper vs ours per
  cell, shape pass/fail, seed spread), gated in CI against a
  committed baseline ratchet;
* :mod:`repro.fidelity.anomaly` / :mod:`repro.fidelity.explain` —
  run-health detectors over telemetry series, and per-flow "why is
  flow f at rate r" explanations.

Command line::

    python -m repro fidelity --tables 1,2,3,4 --seeds 1,2,3 --json out.json
    python -m repro explain figure3 --flow 2
"""

from repro.fidelity.anomaly import (
    AnomalyConfig,
    AnomalyReport,
    Finding,
    detect_anomalies,
)
from repro.fidelity.explain import (
    RateExplanation,
    explain_all,
    explain_flow,
    run_and_explain,
)
from repro.fidelity.harness import (
    FidelityConfig,
    FidelityReport,
    TableFidelity,
    compare_baseline,
    load_baseline,
    run_fidelity,
    update_experiments,
    write_baseline,
)
from repro.fidelity.paper import (
    PAPER_BETA,
    PAPER_TABLES,
    PaperTable,
    ShapeAssertion,
)

__all__ = [
    "AnomalyConfig",
    "AnomalyReport",
    "Finding",
    "detect_anomalies",
    "RateExplanation",
    "explain_all",
    "explain_flow",
    "run_and_explain",
    "FidelityConfig",
    "FidelityReport",
    "TableFidelity",
    "compare_baseline",
    "load_baseline",
    "run_fidelity",
    "update_experiments",
    "write_baseline",
    "PAPER_BETA",
    "PAPER_TABLES",
    "PaperTable",
    "ShapeAssertion",
]
