"""Tables 1–4 of the paper's evaluation (§7), machine-readable.

Each :class:`PaperTable` binds a paper table to the scenario / protocol
columns that regenerate it and carries two kinds of ground truth:

* the **paper's numbers** (per-flow packets/second, effective
  throughput ``U``, the maxmin index ``I_mm``, the Chiu–Jain equality
  index ``I_eq``) for cell-by-cell paper-vs-ours deltas; and
* the **shape assertions** from EXPERIMENTS.md — the within-table
  properties (orderings, β-band equal splits, weight-ordered rates,
  fairness repair) that are the reproduction target, since the paper's
  absolute packet rates depend on unstated PHY-overhead assumptions
  (see EXPERIMENTS.md "Absolute-scale calibration").

Shape assertions are plain predicates over a measured table, so they
are unit-testable without a simulator and CI-checkable through the
fidelity harness (:mod:`repro.fidelity.harness`).  Assertions that
only hold on the packet-level DCF substrate (MAC-bias effects the
fluid substrate cannot exhibit) declare their applicable substrates
and are reported as skipped elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.conditions import beta_equal

#: The paper's equality tolerance (§6.3); shape assertions reuse it.
PAPER_BETA = 0.10


@dataclass(frozen=True)
class MeasuredColumn:
    """One regenerated table column: a protocol's run at one seed."""

    protocol: str
    substrate: str
    seed: int
    rates: dict[int, float]
    normalized: dict[int, float]
    u: float
    i_mm: float
    i_eq: float


#: A measured table: protocol name -> column, for one seed.
TableMeasurement = dict[str, MeasuredColumn]

#: A shape predicate: measured table -> (passed, detail-with-numbers).
ShapeCheck = Callable[[TableMeasurement], tuple[bool, str]]


@dataclass(frozen=True)
class ShapeAssertion:
    """One checkable within-table property.

    Attributes:
        assertion_id: stable id, e.g. ``"t3-gmp-repairs"`` — the
            fidelity baseline ratchets on these.
        description: what EXPERIMENTS.md asserts, in one line.
        check: the predicate; returns pass/fail plus a detail string
            quoting the measured numbers.
        substrates: substrates the property holds on, or None for all.
    """

    assertion_id: str
    description: str
    check: ShapeCheck
    substrates: tuple[str, ...] | None = None

    def applies_to(self, substrate: str) -> bool:
        return self.substrates is None or substrate in self.substrates


@dataclass(frozen=True)
class PaperColumn:
    """The paper's values for one protocol column (None = unreported)."""

    rates: dict[int, float] | None = None
    u: float | None = None
    i_mm: float | None = None
    i_eq: float | None = None


@dataclass(frozen=True)
class PaperTable:
    """One evaluation table: scenario binding + ground truth + shapes."""

    table_id: int
    title: str
    scenario: str  # sweep-grid scenario name
    protocols: tuple[str, ...]
    weights: dict[int, float]
    paper: dict[str, PaperColumn]
    assertions: tuple[ShapeAssertion, ...] = field(default_factory=tuple)

    def flow_ids(self) -> list[int]:
        return sorted(self.weights)


# --- assertion helpers -----------------------------------------------------------


def _fmt_rates(rates: dict[int, float]) -> str:
    return ", ".join(f"f{fid}={rate:.1f}" for fid, rate in sorted(rates.items()))


def _equal_split(
    protocol: str, flow_ids: tuple[int, ...], tolerance: float
) -> ShapeCheck:
    """All named flows' rates pairwise β-equal (at ``tolerance``)."""

    def check(measured: TableMeasurement) -> tuple[bool, str]:
        rates = {fid: measured[protocol].rates[fid] for fid in flow_ids}
        values = list(rates.values())
        ok = all(
            beta_equal(a, b, tolerance)
            for index, a in enumerate(values)
            for b in values[index + 1 :]
        )
        return ok, f"{protocol}: {_fmt_rates(rates)} (tolerance {tolerance:g})"

    return check


def _rate_ratio_above(
    protocol: str, flow_id: int, others: tuple[int, ...], factor: float
) -> ShapeCheck:
    """``rate(flow_id) >= factor * max(rate(others))``."""

    def check(measured: TableMeasurement) -> tuple[bool, str]:
        column = measured[protocol]
        top = column.rates[flow_id]
        rest = max(column.rates[fid] for fid in others)
        return (
            top >= factor * rest,
            f"{protocol}: f{flow_id}={top:.1f} vs max(others)={rest:.1f} "
            f"(need {factor:g}x)",
        )

    return check


def _rate_order(protocol: str, ordered: tuple[int, ...]) -> ShapeCheck:
    """Rates strictly decreasing along ``ordered``."""

    def check(measured: TableMeasurement) -> tuple[bool, str]:
        rates = measured[protocol].rates
        ok = all(
            rates[a] > rates[b] for a, b in zip(ordered, ordered[1:])
        )
        chain = " > ".join(f"f{fid}" for fid in ordered)
        return ok, f"{protocol}: want {chain}; got {_fmt_rates(rates)}"

    return check


def _normalized_top(protocol: str, flow_id: int) -> ShapeCheck:
    """``flow_id`` holds the largest *normalized* rate in the column."""

    def check(measured: TableMeasurement) -> tuple[bool, str]:
        normalized = measured[protocol].normalized
        top = normalized[flow_id]
        rest = max(mu for fid, mu in normalized.items() if fid != flow_id)
        return (
            top > rest,
            f"{protocol}: normalized f{flow_id}={top:.1f} vs best other "
            f"{rest:.1f}",
        )

    return check


def _imm_below(protocol: str, ceiling: float) -> ShapeCheck:
    def check(measured: TableMeasurement) -> tuple[bool, str]:
        value = measured[protocol].i_mm
        return value < ceiling, f"I_mm({protocol})={value:.3f} (need < {ceiling:g})"

    return check


def _gmp_repairs(floor: float, margin: float) -> ShapeCheck:
    """GMP's I_mm clears ``floor`` and beats both baselines by ``margin``."""

    def check(measured: TableMeasurement) -> tuple[bool, str]:
        gmp = measured["gmp"].i_mm
        baselines = {
            protocol: column.i_mm
            for protocol, column in measured.items()
            if protocol != "gmp"
        }
        best = max(baselines.values(), default=0.0)
        ok = gmp >= floor and gmp >= best + margin
        others = ", ".join(
            f"I_mm({protocol})={value:.3f}"
            for protocol, value in sorted(baselines.items())
        )
        return ok, f"I_mm(gmp)={gmp:.3f} vs {others} (floor {floor:g}, margin {margin:g})"

    return check


def _rate_spread_below(protocol: str, ceiling: float) -> ShapeCheck:
    """Relative spread ``(max - min) / max`` of the column's rates."""

    def check(measured: TableMeasurement) -> tuple[bool, str]:
        rates = measured[protocol].rates
        top = max(rates.values())
        spread = (top - min(rates.values())) / top if top > 0 else 0.0
        return (
            spread <= ceiling,
            f"{protocol}: spread {spread:.2f} of {_fmt_rates(rates)} "
            f"(need <= {ceiling:g})",
        )

    return check


def _top_flows(protocol: str, expected: frozenset[int]) -> ShapeCheck:
    """The ``len(expected)`` largest rates belong exactly to ``expected``."""

    def check(measured: TableMeasurement) -> tuple[bool, str]:
        rates = measured[protocol].rates
        ranked = sorted(rates, key=lambda fid: (-rates[fid], fid))
        top = frozenset(ranked[: len(expected)])
        want = ",".join(f"f{fid}" for fid in sorted(expected))
        got = ",".join(f"f{fid}" for fid in sorted(top))
        return top == expected, f"{protocol}: top flows {got} (want {want})"

    return check


def _group_ratio(
    protocol: str,
    numerator: tuple[int, ...],
    denominator: tuple[int, ...],
    factor: float,
) -> ShapeCheck:
    """Mean rate of one flow group exceeds ``factor`` × the other's."""

    def check(measured: TableMeasurement) -> tuple[bool, str]:
        rates = measured[protocol].rates
        num = sum(rates[fid] for fid in numerator) / len(numerator)
        den = sum(rates[fid] for fid in denominator) / len(denominator)
        return (
            num >= factor * den,
            f"{protocol}: mean({','.join(f'f{f}' for f in numerator)})={num:.1f} "
            f"vs mean({','.join(f'f{f}' for f in denominator)})={den:.1f} "
            f"(need {factor:g}x)",
        )

    return check


def _fairness_floor(protocol: str, i_mm: float, i_eq: float) -> ShapeCheck:
    def check(measured: TableMeasurement) -> tuple[bool, str]:
        column = measured[protocol]
        ok = column.i_mm >= i_mm and column.i_eq >= i_eq
        return (
            ok,
            f"{protocol}: I_mm={column.i_mm:.3f} (floor {i_mm:g}), "
            f"I_eq={column.i_eq:.3f} (floor {i_eq:g})",
        )

    return check


def _u_ordering(ordered: tuple[str, ...], slack: float) -> ShapeCheck:
    """``U`` non-increasing along ``ordered`` protocols, within ``slack``
    relative tolerance (the fluid substrate conserves clique capacity,
    so its three U values coincide)."""

    def check(measured: TableMeasurement) -> tuple[bool, str]:
        us = {protocol: measured[protocol].u for protocol in ordered}
        ok = all(
            us[a] >= us[b] * (1.0 - slack) for a, b in zip(ordered, ordered[1:])
        )
        detail = " >= ".join(f"U({p})={us[p]:.0f}" for p in ordered)
        return ok, f"{detail} (slack {slack:g})"

    return check


# --- the tables ------------------------------------------------------------------

TABLE_1 = PaperTable(
    table_id=1,
    title="Table 1: unweighted maxmin on Figure 2",
    scenario="figure2",
    protocols=("gmp",),
    weights={1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0},
    paper={
        "gmp": PaperColumn(
            rates={1: 563.96, 2: 196.96, 3: 217.57, 4: 221.41},
            # All four flows are 1-hop, so U and the indices are
            # derived exactly from the paper's per-flow rates.
            u=1199.90,
            i_mm=0.349,
            i_eq=0.794,
        ),
    },
    assertions=(
        ShapeAssertion(
            "t1-equal-split",
            "f2 ≈ f3 ≈ f4: equal split of clique 1 (spread < 2β)",
            _equal_split("gmp", (2, 3, 4), 2 * PAPER_BETA),
        ),
        ShapeAssertion(
            "t1-f1-residual",
            "f1 rides clique 0's residual, well above the clique-1 flows",
            _rate_ratio_above("gmp", 1, (2, 3, 4), 1.25),
        ),
    ),
)

TABLE_2 = PaperTable(
    table_id=2,
    title="Table 2: weighted maxmin on Figure 2 (weights 1,2,1,3)",
    scenario="figure2w",
    protocols=("gmp",),
    weights={1: 1.0, 2: 2.0, 3: 1.0, 4: 3.0},
    paper={
        "gmp": PaperColumn(
            rates={1: 527.58, 2: 225.40, 3: 121.90, 4: 377.20},
            u=1252.08,
            i_mm=0.231,
            i_eq=0.806,
        ),
    },
    assertions=(
        ShapeAssertion(
            "t2-weight-order",
            "clique-1 rates ordered by weight: f4 > f2 > f3",
            _rate_order("gmp", (4, 2, 3)),
        ),
        ShapeAssertion(
            "t2-f1-opportunistic",
            "f1 holds the largest normalized rate (clique 0's residual)",
            _normalized_top("gmp", 1),
        ),
    ),
)

TABLE_3 = PaperTable(
    table_id=3,
    title="Table 3: the three-link chain (Figure 3)",
    scenario="figure3",
    protocols=("802.11", "2pp", "gmp"),
    weights={1: 1.0, 2: 1.0, 3: 1.0},
    paper={
        "802.11": PaperColumn(
            rates={1: 80.63, 2: 220.07, 3: 174.09},
            u=856.11,
            i_mm=0.366,
            i_eq=0.882,
        ),
        "2pp": PaperColumn(
            rates={1: 131.86, 2: 188.76, 3: 240.85},
            u=1013.96,
            i_mm=0.547,
            i_eq=0.946,
        ),
        "gmp": PaperColumn(
            rates={1: 164.75, 2: 176.04, 3: 179.21},
            u=1025.54,
            i_mm=0.919,
            i_eq=0.999,
        ),
    },
    assertions=(
        ShapeAssertion(
            "t3-80211-unfair",
            "plain 802.11 is severely unfair (I_mm < 0.6)",
            _imm_below("802.11", 0.6),
        ),
        ShapeAssertion(
            "t3-2pp-unfair",
            "2PP remains unfair (I_mm < 0.6)",
            _imm_below("2pp", 0.6),
        ),
        ShapeAssertion(
            "t3-gmp-repairs",
            "GMP repairs the chain: I_mm ≥ 0.8 and ≫ both baselines",
            _gmp_repairs(0.8, 0.2),
        ),
        ShapeAssertion(
            "t3-2pp-surplus-1hop",
            "2PP's LP hands the surplus to the 1-hop flow ⟨2,3⟩",
            _top_flows("2pp", frozenset({3})),
        ),
        ShapeAssertion(
            "t3-gmp-band",
            "GMP equalizes the three flows (relative spread ≤ 0.25)",
            _rate_spread_below("gmp", 0.25),
        ),
    ),
)

TABLE_4 = PaperTable(
    table_id=4,
    title="Table 4: the four-gadget row (Figure 4)",
    scenario="figure4",
    protocols=("802.11", "2pp", "gmp"),
    weights={fid: 1.0 for fid in range(1, 9)},
    paper={
        # Per-flow 802.11 rates are fixed by the topology
        # reconstruction (EXPERIMENTS.md): each gadget's flow pair
        # shares one source FIFO, so pair rates are identical.
        "802.11": PaperColumn(
            rates={
                1: 221.81,
                2: 221.81,
                3: 107.29,
                4: 107.28,
                5: 106.36,
                6: 106.36,
                7: 223.39,
                8: 223.39,
            },
            u=1976.54,
            i_mm=0.476,
            i_eq=0.890,
        ),
        # The paper reports only ranges per flow group for 2PP/GMP;
        # the indices are exact.
        "2pp": PaperColumn(rates=None, u=None, i_mm=0.125, i_eq=0.514),
        "gmp": PaperColumn(rates=None, u=None, i_mm=0.888, i_eq=0.998),
    },
    assertions=(
        ShapeAssertion(
            "t4-gmp-equalizes",
            "GMP approximately equalizes all eight flows "
            "(I_mm ≥ 0.75, I_eq ≥ 0.95)",
            _fairness_floor("gmp", 0.75, 0.95),
        ),
        ShapeAssertion(
            "t4-2pp-side-1hop",
            "2PP starves everything except the side 1-hop flows f2/f8",
            _top_flows("2pp", frozenset({2, 8})),
        ),
        ShapeAssertion(
            "t4-80211-side-bias",
            "802.11 favors side gadgets ≈2:1 over middle gadgets "
            "(media-access bias; DCF substrate only)",
            _group_ratio("802.11", (1, 2, 7, 8), (3, 4, 5, 6), 1.3),
            substrates=("dcf",),
        ),
        ShapeAssertion(
            "t4-u-ordering",
            "U(802.11) ≥ U(GMP) ≥ U(2PP) (within 1%)",
            _u_ordering(("802.11", "gmp", "2pp"), 0.01),
        ),
    ),
)

#: Every encoded table, keyed by paper table number.
PAPER_TABLES: dict[int, PaperTable] = {
    1: TABLE_1,
    2: TABLE_2,
    3: TABLE_3,
    4: TABLE_4,
}
