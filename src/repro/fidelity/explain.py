"""Per-flow rate explainers: *why is flow f running at rate r?*

:func:`explain_flow` joins three views of one finished GMP run:

* the **centralized reference** — which contention clique froze the
  flow during water-filling (or that the flow reached its desirable
  rate), the clique's member links, and its consumed capacity;
* the **measured run** — the flow's delivered rate and its gap to the
  reference;
* the **protocol's own view** — which of the paper's local link
  conditions dominated the flow's path during the run (from the
  ``gmp.condition_seconds`` dwell counters) and the final rate limit
  with the reason of its last adjustment.

The result is a :class:`RateExplanation` whose :meth:`~RateExplanation.
narrative` reads as a paragraph; ``python -m repro explain <scenario>
--flow N`` prints it.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import AnalysisError, ConfigError
from repro.scenarios.results import RunResult
from repro.scenarios.runner import run_scenario
from repro.scenarios.sweep import SCENARIO_FACTORIES
from repro.telemetry import Telemetry

#: Condition states a virtual link can dwell in (lowercased
#: :class:`~repro.core.classification.LinkType` names, as recorded by
#: the ``gmp.condition_seconds`` counter).
CONDITION_STATES = ("bandwidth_saturated", "buffer_saturated", "unsaturated")


@dataclass
class RateExplanation:
    """Everything known about why one flow runs at its measured rate.

    Attributes:
        flow_id: the explained flow.
        measured_rate: delivered packets/second over the measurement
            window.
        reference_rate: the centralized weighted-maxmin rate.
        gap / gap_pct: ``measured - reference`` (absolute, percent of
            the reference).
        weight: the flow's maxmin weight.
        path: the flow's routed path as directed links.
        desire_limited: True when the reference froze the flow at its
            desirable rate rather than at a clique.
        bottleneck_clique: clique id that froze the flow in the
            reference computation (None when desire-limited).
        bottleneck_links: that clique's member links.
        bottleneck_usage / bottleneck_capacity: consumed vs available
            capacity of the bottleneck clique in the reference.
        active_condition: the dominant post-warmup link condition on
            the flow's path toward its destination ("source" when the
            path never left the unsaturated state and the flow is
            desire-limited).
        condition_dwell: per path link, seconds spent in each
            condition state for this flow's destination.
        rate_limit: the flow's final GMP rate limit, if one applied.
        last_adjust: fields of the flow's last ``gmp.adjust`` event
            (kind, reason, origin, new_limit), if telemetry saw one.
    """

    flow_id: int
    measured_rate: float
    reference_rate: float
    gap: float
    gap_pct: float
    weight: float
    path: list[tuple[int, int]]
    desire_limited: bool
    bottleneck_clique: tuple[int, int] | None
    bottleneck_links: list[tuple[int, int]]
    bottleneck_usage: float | None
    bottleneck_capacity: float | None
    active_condition: str
    condition_dwell: dict[str, dict[str, float]] = field(default_factory=dict)
    rate_limit: float | None = None
    last_adjust: dict[str, Any] | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "flow_id": self.flow_id,
            "measured_rate": self.measured_rate,
            "reference_rate": self.reference_rate,
            "gap": self.gap,
            "gap_pct": self.gap_pct,
            "weight": self.weight,
            "path": [list(link) for link in self.path],
            "desire_limited": self.desire_limited,
            "bottleneck_clique": (
                list(self.bottleneck_clique)
                if self.bottleneck_clique is not None
                else None
            ),
            "bottleneck_links": [list(link) for link in self.bottleneck_links],
            "bottleneck_usage": self.bottleneck_usage,
            "bottleneck_capacity": self.bottleneck_capacity,
            "active_condition": self.active_condition,
            "condition_dwell": {
                link: dict(states)
                for link, states in self.condition_dwell.items()
            },
            "rate_limit": self.rate_limit,
            "last_adjust": (
                dict(self.last_adjust) if self.last_adjust is not None else None
            ),
        }

    def narrative(self) -> str:
        """The explanation as readable prose."""
        hops = " -> ".join(
            [str(self.path[0][0])] + [str(b) for _, b in self.path]
        ) if self.path else "?"
        lines = [
            f"flow {self.flow_id} (weight {self.weight:g}, path {hops}) "
            f"measured {self.measured_rate:.1f} pkt/s vs centralized "
            f"maxmin {self.reference_rate:.1f} pkt/s "
            f"({self.gap_pct:+.1f}%)."
        ]
        if self.desire_limited:
            lines.append(
                "The reference froze it at its desirable rate — no clique "
                "constrains it (desire-limited)."
            )
        elif self.bottleneck_clique is not None:
            links = ", ".join(
                f"{a}-{b}" for a, b in self.bottleneck_links
            )
            usage = (
                f" ({self.bottleneck_usage:.1f}/"
                f"{self.bottleneck_capacity:.1f} pkt/s used)"
                if self.bottleneck_usage is not None
                and self.bottleneck_capacity is not None
                else ""
            )
            lines.append(
                f"Bottleneck: contention clique "
                f"{self.bottleneck_clique} over links {{{links}}}{usage}."
            )
        lines.append(
            f"Dominant local condition on its path: "
            f"{self.active_condition.replace('_', '-')}."
        )
        if self.rate_limit is not None:
            limit = (
                "unlimited" if self.rate_limit == float("inf")
                else f"{self.rate_limit:.1f} pkt/s"
            )
            lines.append(f"Final GMP rate limit: {limit}.")
        if self.last_adjust is not None:
            lines.append(
                f"Last adjustment: {self.last_adjust.get('kind')} "
                f"({self.last_adjust.get('reason')}, origin "
                f"{self.last_adjust.get('origin')})."
            )
        return " ".join(lines)


def _require(result: RunResult, key: str) -> Any:
    if key not in result.extras:
        raise AnalysisError(
            f"cannot explain flows: run is missing extras[{key!r}] — "
            "re-run with protocol='gmp' and telemetry enabled"
        )
    return result.extras[key]


def explain_flow(result: RunResult, flow_id: int) -> RateExplanation:
    """Explain one flow of a finished GMP run.

    Raises:
        AnalysisError: when ``flow_id`` is unknown or the run lacks the
            reference solution (non-GMP protocol, telemetry disabled).
    """
    if flow_id not in result.flow_rates:
        raise AnalysisError(
            f"unknown flow {flow_id}; run has flows "
            f"{sorted(result.flow_rates)}"
        )
    solution = _require(result, "maxmin_solution")
    paths = _require(result, "flow_paths")
    weights = result.extras.get("flow_weights", {})
    capacity = result.extras.get("capacity_pps")

    measured = result.flow_rates[flow_id]
    reference = solution.rates.get(flow_id, 0.0)
    clique_id = solution.bottlenecks.get(flow_id)
    desire_limited = clique_id is None

    bottleneck_links: list[tuple[int, int]] = []
    usage: float | None = None
    if clique_id is not None:
        for clique in result.extras.get("cliques", []):
            if clique.clique_id == clique_id:
                bottleneck_links = clique.sorted_links()
                break
        usage = solution.clique_usage.get(clique_id)

    path = [tuple(link) for link in paths.get(flow_id, [])]
    dwell, active = _condition_dwell(result, path)
    if active == "unsaturated" and desire_limited:
        # Paper condition 1: the flow sits at its source's desirable
        # rate; nothing on the path ever saturated for it.
        active = "source"

    limits = result.extras.get("rate_limits", {})
    rate_limit = limits.get(flow_id)

    last_adjust: dict[str, Any] | None = None
    telemetry = result.extras.get("telemetry")
    if isinstance(telemetry, Telemetry) and telemetry.enabled:
        for event in telemetry.events_in("gmp.adjust"):
            if event.fields.get("flow") == flow_id:
                last_adjust = dict(event.fields)

    return RateExplanation(
        flow_id=flow_id,
        measured_rate=measured,
        reference_rate=reference,
        gap=measured - reference,
        gap_pct=(
            100.0 * (measured - reference) / reference if reference else 0.0
        ),
        weight=weights.get(flow_id, 1.0),
        path=path,
        desire_limited=desire_limited,
        bottleneck_clique=clique_id,
        bottleneck_links=bottleneck_links,
        bottleneck_usage=usage,
        bottleneck_capacity=capacity,
        active_condition=active,
        condition_dwell=dwell,
        rate_limit=rate_limit,
        last_adjust=last_adjust,
    )


def _condition_dwell(
    result: RunResult, path: list[tuple[int, int]]
) -> tuple[dict[str, dict[str, float]], str]:
    """Per-path-link condition dwell seconds toward the flow's
    destination, and the dominant *saturated* state over the whole
    path ("unsaturated" when nothing ever saturated)."""
    dwell: dict[str, dict[str, float]] = {}
    telemetry = result.extras.get("telemetry")
    if (
        not isinstance(telemetry, Telemetry)
        or not telemetry.enabled
        or not path
    ):
        return dwell, "unsaturated"
    destination = path[-1][1]
    wanted = {f"{a}->{b}" for a, b in path}
    for counter in telemetry.registry.instruments("gmp.condition_seconds"):
        link = counter.labels.get("link")
        if link not in wanted:
            continue
        if counter.labels.get("dest") != destination:
            continue
        state = str(counter.labels.get("state"))
        dwell.setdefault(link, {})[state] = counter.value
    totals = {state: 0.0 for state in CONDITION_STATES}
    for states in dwell.values():
        for state, seconds in states.items():
            totals[state] = totals.get(state, 0.0) + seconds
    saturated = {
        state: seconds
        for state, seconds in totals.items()
        if state != "unsaturated" and seconds > 0.0
    }
    if not saturated:
        return dwell, "unsaturated"
    return dwell, max(saturated, key=lambda state: (saturated[state], state))


def explain_all(result: RunResult) -> list[RateExplanation]:
    """Explanations for every flow of the run, in flow-id order."""
    return [
        explain_flow(result, flow_id) for flow_id in sorted(result.flow_rates)
    ]


def run_and_explain(
    scenario_name: str,
    flow_id: int | None = None,
    *,
    substrate: str = "fluid",
    duration: float = 60.0,
    seed: int = 1,
) -> list[RateExplanation]:
    """Run a named scenario under GMP with telemetry and explain flows.

    Convenience wrapper for the CLI: explains ``flow_id`` only, or
    every flow when it is None.

    Raises:
        ConfigError: on an unknown scenario name.
        AnalysisError: on an unknown flow id.
    """
    factory = SCENARIO_FACTORIES.get(scenario_name)
    if factory is None:
        raise ConfigError(
            f"unknown scenario {scenario_name!r}; pick from "
            f"{tuple(SCENARIO_FACTORIES)}"
        )
    telemetry = Telemetry(enabled=True)
    result = run_scenario(
        factory(),
        protocol="gmp",
        substrate=substrate,
        duration=duration,
        seed=seed,
        telemetry=telemetry,
    )
    if flow_id is None:
        return explain_all(result)
    return [explain_flow(result, flow_id)]


# --- command line ---------------------------------------------------------------


def explain_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro explain``."""
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="Run a scenario under GMP and explain why each "
        "flow sits at its measured rate: bottleneck clique, active "
        "local condition, and gap to the centralized maxmin reference.",
    )
    parser.add_argument(
        "scenario", help="scenario name (e.g. figure3; see repro sweep)"
    )
    parser.add_argument(
        "--flow", type=int, default=None,
        help="explain only this flow id (default: every flow)",
    )
    parser.add_argument("--substrate", default="fluid")
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="also write the structured explanations as JSON to PATH",
    )
    args = parser.parse_args(argv)

    try:
        explanations = run_and_explain(
            args.scenario,
            args.flow,
            substrate=args.substrate,
            duration=args.duration,
            seed=args.seed,
        )
    except (ConfigError, AnalysisError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    for explanation in explanations:
        print(explanation.narrative())
        print()
    if args.json_out:
        payload = json.dumps(
            [explanation.to_json() for explanation in explanations],
            indent=2,
            sort_keys=True,
        )
        Path(args.json_out).write_text(payload + "\n", encoding="utf-8")
        print(f"explanations -> {args.json_out}", file=sys.stderr)
    return 0
