"""Paper-table regression harness.

Regenerates Tables 1–4 through the cached sweep engine over multiple
seeds and compares them cell-by-cell against the paper's numbers and
shape-by-shape against the EXPERIMENTS.md assertions encoded in
:mod:`repro.fidelity.paper`.  The output is a :class:`FidelityReport`
— paper vs ours vs Δ per cell, per-seed shape verdicts, seed spread —
renderable as JSON (for CI artifacts) and aligned markdown (for
EXPERIMENTS.md, whose table blocks this module rewrites in place).

CI gates on a committed ``fidelity-baseline.json`` ratchet: a shape
assertion recorded as passing may never regress, and the baseline must
list exactly the assertions the harness produces (no stale entries),
so every perf or protocol PR is provably shape-faithful to the paper.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AnalysisError, ConfigError
from repro.fidelity.paper import (
    PAPER_TABLES,
    MeasuredColumn,
    PaperTable,
    TableMeasurement,
)
from repro.scenarios.sweep import DEFAULT_CACHE_DIR, SweepSpec, run_sweep

#: Default committed ratchet file (repo root).
DEFAULT_BASELINE_PATH = "fidelity-baseline.json"

#: Markers bracketing a generated table block in EXPERIMENTS.md.
_BLOCK_BEGIN = "<!-- fidelity:table{table_id}:begin -->"
_BLOCK_END = "<!-- fidelity:table{table_id}:end -->"


@dataclass(frozen=True)
class FidelityConfig:
    """What to regenerate, and how."""

    tables: tuple[int, ...] = (1, 2, 3, 4)
    seeds: tuple[int, ...] = (1, 2, 3)
    substrate: str = "fluid"
    duration: float = 60.0
    workers: int = 1
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR

    def __post_init__(self) -> None:
        unknown = [tid for tid in self.tables if tid not in PAPER_TABLES]
        if unknown:
            raise ConfigError(
                f"unknown paper table(s) {unknown}; pick from "
                f"{sorted(PAPER_TABLES)}"
            )
        if not self.tables or not self.seeds:
            raise ConfigError("fidelity needs at least one table and one seed")


@dataclass
class CellComparison:
    """One table cell: paper vs ours (mean over seeds) vs Δ."""

    metric: str  # "f<id>", "U", "I_mm", or "I_eq"
    protocol: str
    paper: float | None
    ours: float
    spread: float  # max - min across seeds
    delta: float | None = None
    delta_pct: float | None = None

    def __post_init__(self) -> None:
        if self.paper is not None:
            self.delta = self.ours - self.paper
            if self.paper != 0:
                self.delta_pct = 100.0 * self.delta / self.paper


@dataclass
class ShapeOutcome:
    """Verdict of one shape assertion across every seed."""

    assertion_id: str
    description: str
    applicable: bool
    passed: bool | None  # None when not applicable on this substrate
    details: list[str] = field(default_factory=list)

    @property
    def status(self) -> str:
        if not self.applicable:
            return "skip"
        return "pass" if self.passed else "fail"


@dataclass
class TableFidelity:
    """One regenerated table."""

    table_id: int
    title: str
    scenario: str
    substrate: str
    protocols: tuple[str, ...]
    seeds: tuple[int, ...]
    cells: list[CellComparison]
    shapes: list[ShapeOutcome]

    def shapes_ok(self) -> bool:
        return all(outcome.passed is not False for outcome in self.shapes)

    def to_json(self) -> dict:
        return {
            "table_id": self.table_id,
            "title": self.title,
            "scenario": self.scenario,
            "substrate": self.substrate,
            "protocols": list(self.protocols),
            "seeds": list(self.seeds),
            "cells": [vars(cell) for cell in self.cells],
            "shapes": [
                {
                    "assertion_id": outcome.assertion_id,
                    "description": outcome.description,
                    "status": outcome.status,
                    "details": outcome.details,
                }
                for outcome in self.shapes
            ],
        }

    def markdown(self) -> str:
        """The table as a markdown block (paper | ours ±spread | Δ%)."""
        headers = ["metric"]
        for protocol in self.protocols:
            headers.extend(
                [f"paper {protocol}", f"ours {protocol}", "Δ%"]
            )
        rows: list[list[str]] = []
        metrics = [
            cell.metric
            for cell in self.cells
            if cell.protocol == self.protocols[0]
        ]
        by_key = {(cell.protocol, cell.metric): cell for cell in self.cells}
        for metric in metrics:
            row = [metric]
            for protocol in self.protocols:
                cell = by_key[(protocol, metric)]
                row.append("—" if cell.paper is None else f"{cell.paper:.2f}")
                ours = f"{cell.ours:.2f}"
                if cell.spread > 0:
                    ours += f" ±{cell.spread / 2:.1f}"
                row.append(ours)
                row.append(
                    "—" if cell.delta_pct is None else f"{cell.delta_pct:+.0f}"
                )
            rows.append(row)
        lines = [f"| {' | '.join(headers)} |"]
        lines.append(f"|{'|'.join('---' for _ in headers)}|")
        lines.extend(f"| {' | '.join(row)} |" for row in rows)
        lines.append("")
        for outcome in self.shapes:
            mark = {"pass": "✓", "fail": "✗", "skip": "·"}[outcome.status]
            note = "" if outcome.applicable else " (skipped: substrate)"
            lines.append(
                f"* {mark} `{outcome.assertion_id}` — "
                f"{outcome.description}{note}"
            )
        return "\n".join(lines)


@dataclass
class FidelityReport:
    """Everything one fidelity run produced."""

    substrate: str
    duration: float
    seeds: tuple[int, ...]
    tables: list[TableFidelity]
    cache_hits: int = 0
    cache_misses: int = 0

    def shapes_ok(self) -> bool:
        return all(table.shapes_ok() for table in self.tables)

    def shape_statuses(self) -> dict[str, str]:
        """``"t<N>:<assertion-id>" -> pass|fail|skip`` for every shape."""
        return {
            f"t{table.table_id}:{outcome.assertion_id}": outcome.status
            for table in self.tables
            for outcome in table.shapes
        }

    def to_json(self) -> dict:
        return {
            "substrate": self.substrate,
            "duration": self.duration,
            "seeds": list(self.seeds),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shapes_ok": self.shapes_ok(),
            "tables": [table.to_json() for table in self.tables],
        }

    def markdown(self) -> str:
        lines: list[str] = []
        for table in self.tables:
            lines.append(f"## {table.title}")
            lines.append("")
            lines.append(self.stamp())
            lines.append("")
            lines.append(table.markdown())
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def stamp(self) -> str:
        """Provenance line stamped onto every generated block."""
        seeds = ",".join(str(seed) for seed in self.seeds)
        return (
            f"*Generated by `python -m repro fidelity` "
            f"({self.substrate} substrate, {self.duration:g} s, "
            f"seeds {seeds}; ours = mean ± half-spread across seeds).*"
        )


def _measurement(
    table: PaperTable, summaries: list[dict], substrate: str, seed: int
) -> TableMeasurement:
    """Assemble one seed's measured table from sweep summaries."""
    measured: TableMeasurement = {}
    for summary in summaries:
        if summary["seed"] != seed or summary["scenario"] != table.scenario:
            continue
        protocol = summary["protocol"]
        rates = {int(fid): rate for fid, rate in summary["flow_rates"].items()}
        normalized = {
            fid: rate / table.weights.get(fid, 1.0)
            for fid, rate in rates.items()
        }
        measured[protocol] = MeasuredColumn(
            protocol=protocol,
            substrate=substrate,
            seed=seed,
            rates=rates,
            normalized=normalized,
            u=summary["effective_throughput"],
            i_mm=summary["i_mm"],
            i_eq=summary["i_eq"],
        )
    missing = [p for p in table.protocols if p not in measured]
    if missing:
        raise AnalysisError(
            f"table {table.table_id}: sweep produced no summary for "
            f"protocol(s) {missing} at seed {seed}"
        )
    return measured


def _cells(
    table: PaperTable, per_seed: list[TableMeasurement]
) -> list[CellComparison]:
    cells: list[CellComparison] = []
    for protocol in table.protocols:
        paper_column = table.paper.get(protocol)
        columns = [measured[protocol] for measured in per_seed]

        def add(metric: str, paper_value: float | None, values: list[float]) -> None:
            mean = sum(values) / len(values)
            spread = max(values) - min(values)
            cells.append(
                CellComparison(
                    metric=metric,
                    protocol=protocol,
                    paper=paper_value,
                    ours=mean,
                    spread=spread,
                )
            )

        for flow_id in table.flow_ids():
            paper_rate = None
            if paper_column is not None and paper_column.rates is not None:
                paper_rate = paper_column.rates.get(flow_id)
            add(
                f"f{flow_id}",
                paper_rate,
                [column.rates[flow_id] for column in columns],
            )
        add(
            "U",
            paper_column.u if paper_column else None,
            [column.u for column in columns],
        )
        add(
            "I_mm",
            paper_column.i_mm if paper_column else None,
            [column.i_mm for column in columns],
        )
        add(
            "I_eq",
            paper_column.i_eq if paper_column else None,
            [column.i_eq for column in columns],
        )
    return cells


def _shapes(
    table: PaperTable, per_seed: list[TableMeasurement], substrate: str
) -> list[ShapeOutcome]:
    outcomes: list[ShapeOutcome] = []
    for assertion in table.assertions:
        if not assertion.applies_to(substrate):
            outcomes.append(
                ShapeOutcome(
                    assertion_id=assertion.assertion_id,
                    description=assertion.description,
                    applicable=False,
                    passed=None,
                    details=[
                        f"not applicable on the {substrate} substrate "
                        f"(needs {'/'.join(assertion.substrates or ())})"
                    ],
                )
            )
            continue
        details: list[str] = []
        all_passed = True
        for measured in per_seed:
            passed, detail = assertion.check(measured)
            seed = next(iter(measured.values())).seed
            details.append(f"seed {seed}: {'ok' if passed else 'FAIL'} — {detail}")
            all_passed = all_passed and passed
        outcomes.append(
            ShapeOutcome(
                assertion_id=assertion.assertion_id,
                description=assertion.description,
                applicable=True,
                passed=all_passed,
                details=details,
            )
        )
    return outcomes


def run_fidelity(config: FidelityConfig | None = None) -> FidelityReport:
    """Regenerate the requested tables and compare against the paper.

    Every (scenario, protocol, seed) cell goes through the cached
    sweep engine, so re-running the harness on unchanged code is pure
    cache hits, and results are independent of the worker count.
    """
    config = config or FidelityConfig()
    report = FidelityReport(
        substrate=config.substrate,
        duration=config.duration,
        seeds=config.seeds,
        tables=[],
    )
    for table_id in config.tables:
        table = PAPER_TABLES[table_id]
        spec = SweepSpec(
            scenarios=(table.scenario,),
            protocols=table.protocols,
            substrates=(config.substrate,),
            seeds=config.seeds,
            durations=(config.duration,),
        )
        sweep = run_sweep(
            spec, workers=config.workers, cache_dir=config.cache_dir
        )
        report.cache_hits += sweep.cache_hits
        report.cache_misses += sweep.cache_misses
        per_seed = [
            _measurement(table, sweep.results, config.substrate, seed)
            for seed in config.seeds
        ]
        report.tables.append(
            TableFidelity(
                table_id=table.table_id,
                title=table.title,
                scenario=table.scenario,
                substrate=config.substrate,
                protocols=table.protocols,
                seeds=config.seeds,
                cells=_cells(table, per_seed),
                shapes=_shapes(table, per_seed, config.substrate),
            )
        )
    return report


# --- baseline ratchet ------------------------------------------------------------


def baseline_payload(report: FidelityReport) -> dict:
    """What ``fidelity-baseline.json`` records for this report."""
    return {
        "substrate": report.substrate,
        "shapes": report.shape_statuses(),
    }


def load_baseline(path: str | Path) -> dict:
    try:
        with Path(path).open(encoding="utf-8") as handle:
            loaded = json.load(handle)
    except OSError as error:
        raise ConfigError(f"cannot read fidelity baseline {path}: {error}")
    except json.JSONDecodeError as error:
        raise ConfigError(f"fidelity baseline {path} is not JSON: {error}")
    if not isinstance(loaded, dict) or "shapes" not in loaded:
        raise ConfigError(f"fidelity baseline {path} lacks a 'shapes' map")
    return loaded


def write_baseline(path: str | Path, report: FidelityReport) -> None:
    payload = json.dumps(baseline_payload(report), indent=2, sort_keys=True)
    Path(path).write_text(payload + "\n", encoding="utf-8")


def compare_baseline(report: FidelityReport, baseline: dict) -> list[str]:
    """Regressions of ``report`` vs the committed ratchet.

    A non-empty return fails CI: a shape that regressed from the
    recorded ``pass``, a baseline entry the harness no longer produces
    (stale — the baseline only ratchets down), or a new assertion not
    yet recorded (run ``--update-baseline``).
    """
    problems: list[str] = []
    recorded: dict[str, str] = dict(baseline.get("shapes", {}))
    current = report.shape_statuses()
    for key, status in sorted(current.items()):
        before = recorded.pop(key, None)
        if before is None:
            problems.append(
                f"{key}: not in the baseline (new assertion? run "
                f"--update-baseline)"
            )
        elif before == "pass" and status != "pass":
            problems.append(f"{key}: regressed from pass to {status}")
        elif before != "pass" and status == "pass":
            problems.append(
                f"{key}: now passes but the baseline says {before} — "
                f"ratchet it (run --update-baseline)"
            )
    for key in sorted(recorded):
        problems.append(f"{key}: stale baseline entry (assertion removed?)")
    return problems


# --- EXPERIMENTS.md rewriting ----------------------------------------------------


def update_experiments(path: str | Path, report: FidelityReport) -> list[int]:
    """Rewrite the marked table blocks of EXPERIMENTS.md in place.

    Each regenerated table replaces the region between its
    ``<!-- fidelity:table<N>:begin/end -->`` markers, stamped with the
    generating command — the doc can never drift from the code again.

    Returns:
        The table ids actually rewritten.

    Raises:
        ConfigError: when a table in the report has no marker block.
    """
    text = Path(path).read_text(encoding="utf-8")
    rewritten: list[int] = []
    for table in report.tables:
        begin = _BLOCK_BEGIN.format(table_id=table.table_id)
        end = _BLOCK_END.format(table_id=table.table_id)
        pattern = re.compile(
            re.escape(begin) + r".*?" + re.escape(end), flags=re.DOTALL
        )
        if not pattern.search(text):
            raise ConfigError(
                f"{path} has no '{begin}' ... '{end}' marker block"
            )
        block = (
            f"{begin}\n{report.stamp()}\n\n{table.markdown()}\n{end}"
        )
        text = pattern.sub(lambda _match: block, text, count=1)
        rewritten.append(table.table_id)
    Path(path).write_text(text, encoding="utf-8")
    return rewritten


# --- command line ---------------------------------------------------------------


def _int_csv(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part.strip())


def fidelity_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro fidelity``.

    Exit codes: 0 — every applicable shape assertion passed (and the
    baseline, when checked, agrees); 1 — a shape failed or the
    baseline flagged a regression; 2 — bad configuration.
    """
    parser = argparse.ArgumentParser(
        prog="repro fidelity",
        description="Regenerate the paper's Tables 1-4 through the "
        "cached sweep engine and compare them cell-by-cell and "
        "shape-by-shape against the paper.",
    )
    parser.add_argument(
        "--tables", default="1,2,3,4",
        help="comma-separated paper table ids (default 1,2,3,4)",
    )
    parser.add_argument("--seeds", default="1,2,3")
    parser.add_argument("--substrate", default="fluid")
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"sweep result cache (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point; do not read or write the cache",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="write the full report JSON here",
    )
    parser.add_argument(
        "--markdown", dest="markdown_out", default=None, metavar="PATH",
        help="write the rendered markdown here (default: stdout)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE_PATH, metavar="PATH",
        help=f"shape-ratchet file (default {DEFAULT_BASELINE_PATH})",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="fail (exit 1) when any shape regressed vs the baseline, "
        "when the baseline is stale, or when it misses an assertion",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from this run's shape statuses",
    )
    parser.add_argument(
        "--update-experiments", default=None, metavar="PATH",
        help="rewrite the fidelity marker blocks of this markdown file "
        "(normally EXPERIMENTS.md) from the regenerated tables",
    )
    args = parser.parse_args(argv)

    try:
        config = FidelityConfig(
            tables=_int_csv(args.tables),
            seeds=_int_csv(args.seeds),
            substrate=args.substrate,
            duration=args.duration,
            workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
        )
        report = run_fidelity(config)
    except (ConfigError, AnalysisError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.markdown_out:
        Path(args.markdown_out).write_text(
            report.markdown(), encoding="utf-8"
        )
    else:
        print(report.markdown())
    if args.json_out:
        payload = json.dumps(report.to_json(), indent=2, sort_keys=True)
        Path(args.json_out).write_text(payload + "\n", encoding="utf-8")

    statuses = report.shape_statuses()
    counts = {
        status: sum(1 for value in statuses.values() if value == status)
        for status in ("pass", "fail", "skip")
    }
    print(
        f"shapes: {counts['pass']} pass, {counts['fail']} fail, "
        f"{counts['skip']} skipped "
        f"({report.cache_hits} cached, {report.cache_misses} computed "
        f"sweep points)",
        file=sys.stderr,
    )

    status = 0 if report.shapes_ok() else 1
    if args.update_experiments:
        try:
            rewritten = update_experiments(args.update_experiments, report)
        except (OSError, ConfigError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            f"rewrote table block(s) {rewritten} in "
            f"{args.update_experiments}",
            file=sys.stderr,
        )
    if args.update_baseline:
        write_baseline(args.baseline, report)
        print(f"baseline written -> {args.baseline}", file=sys.stderr)
    elif args.check_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        problems = compare_baseline(report, baseline)
        for problem in problems:
            print(f"baseline: {problem}", file=sys.stderr)
        if problems:
            status = 1
    return status
