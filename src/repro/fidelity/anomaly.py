"""Run-health anomaly detectors over telemetry series.

Four detectors scan a finished :class:`~repro.scenarios.results.
RunResult` (its interval-rate series, and — when the run carried a
:class:`~repro.telemetry.Telemetry` — the GMP series and events plus
the buffer occupancy trajectories) and return structured
:class:`Finding`\\ s with a time range and node/link/flow labels:

* **dead/starved flows** — a flow delivering (nearly) nothing for a
  sustained window while it demonstrably could deliver (it did
  earlier, or its maxmin reference is positive);
* **post-convergence rate oscillation** — a flow's measured rate
  swinging far beyond the AIMD limit cycle in the tail of the run;
* **GMP condition flapping** — a virtual link toggling between
  saturation conditions with short dwells long after start-up
  transients should have settled;
* **queue-occupancy divergence** — a per-destination queue whose
  time-weighted occupancy jumps between adjacent windows after
  warmup (a crash, a routing change, or a control-plane wedge).

Thresholds live in :class:`AnomalyConfig`; the defaults stay silent
on clean converged GMP runs (the ≈25 % AIMD residual oscillation of
EXPERIMENTS.md E-conv is *normal*) and flag fault-injected runs —
both pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.scenarios.results import RunResult
from repro.telemetry import Telemetry


@dataclass(frozen=True)
class AnomalyConfig:
    """Detector thresholds (all times in simulated seconds)."""

    #: Fraction of the run treated as start-up and never scanned.
    warmup_fraction: float = 0.25
    #: Window width for windowed statistics.
    window: float = 5.0
    #: A flow below this rate (pkt/s) counts as dead.
    starve_rate: float = 1.0
    #: Dead windows must cover at least this long to be a finding.
    starve_window: float = 5.0
    #: Relative peak-to-peak swing of the tail treated as oscillation.
    #: GMP's AIMD limit cycle reaches ≈0.7 for aggressive 1-hop flows
    #: on the fluid substrate, so only swings wider than the mean
    #: itself count (a crash/recover transient spans 0 -> full rate
    #: and always exceeds this).
    oscillation_threshold: float = 1.0
    #: Fraction of the run whose tail the oscillation detector scans.
    tail_fraction: float = 0.5
    #: Condition transitions after warmup that count as flapping ...
    flap_count: int = 6
    #: ... when the mean dwell between them is below this.
    flap_dwell: float = 3.0
    #: Minimum between-window jump of a queue's time-weighted mean
    #: occupancy (packets) ...
    queue_jump: float = 3.0
    #: ... and minimum relative jump, both required for a finding.
    queue_jump_rel: float = 0.5


DEFAULT_CONFIG = AnomalyConfig()


@dataclass(frozen=True)
class Finding:
    """One detected anomaly."""

    detector: str
    severity: str  # "warning" | "critical"
    start: float
    end: float
    labels: dict[str, str]
    message: str

    def to_json(self) -> dict[str, Any]:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "start": self.start,
            "end": self.end,
            "labels": dict(self.labels),
            "message": self.message,
        }

    def render(self) -> str:
        tags = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return (
            f"[{self.severity}] {self.detector} "
            f"t={self.start:.1f}–{self.end:.1f}s {{{tags}}}: {self.message}"
        )


@dataclass
class AnomalyReport:
    """All findings of one scan, in time order."""

    findings: list[Finding] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.findings)

    def by_detector(self, detector: str) -> list[Finding]:
        return [f for f in self.findings if f.detector == detector]

    def to_json(self) -> dict[str, Any]:
        return {"findings": [finding.to_json() for finding in self.findings]}

    def render(self) -> str:
        if not self.findings:
            return "anomaly scan: clean (no findings)"
        lines = [f"anomaly scan: {len(self.findings)} finding(s)"]
        lines.extend(f"  {finding.render()}" for finding in self.findings)
        return "\n".join(lines)


# --- detectors -------------------------------------------------------------------


def _interval_edges(result: RunResult) -> list[tuple[float, float]]:
    """(start, end) of every interval-rate window."""
    edges: list[tuple[float, float]] = []
    previous = 0.0
    for bound in result.interval_bounds:
        edges.append((previous, bound))
        previous = bound
    return edges


def detect_starved_flows(
    result: RunResult, config: AnomalyConfig = DEFAULT_CONFIG
) -> list[Finding]:
    """Sustained zero-delivery stretches of flows that could deliver.

    Dynamic workloads: each flow is scanned only inside its own
    lifetime window (``result.flow_lifetimes``).  A flow that
    legitimately departed mid-run delivers nothing afterwards — that is
    a departure, not starvation — and a flow arriving late gets its own
    settle grace instead of being measured against the run's warmup.
    """
    findings: list[Finding] = []
    if not result.interval_bounds:
        return findings
    warmup_end = result.duration * config.warmup_fraction
    reference = result.extras.get("maxmin_reference", {})
    edges = _interval_edges(result)
    for flow_id, rates in sorted(result.interval_rates.items()):
        arrival, departure = result.lifetime(flow_id)
        flow_warmup_end = warmup_end
        if arrival > 0.0:
            flow_warmup_end = max(warmup_end, arrival + config.window)
        could_deliver = reference.get(flow_id, 0.0) > config.starve_rate
        run_start: float | None = None
        run_end = 0.0

        def flush() -> None:
            nonlocal run_start
            if run_start is None:
                return
            if run_end - run_start >= config.starve_window and could_deliver:
                findings.append(
                    Finding(
                        detector="starved_flow",
                        severity="critical",
                        start=run_start,
                        end=run_end,
                        labels={"flow": str(flow_id)},
                        message=(
                            f"flow {flow_id} delivered < "
                            f"{config.starve_rate:g} pkt/s for "
                            f"{run_end - run_start:.1f}s"
                        ),
                    )
                )
            run_start = None

        for (start, end), rate in zip(edges, rates):
            if start < arrival - 1e-9 or end > departure + 1e-9:
                # Window not fully inside the flow's lifetime: silence
                # there is absence, not starvation.
                continue
            if end <= flow_warmup_end:
                # Start-up: remember only whether the flow ever moved.
                if rate > config.starve_rate:
                    could_deliver = True
                continue
            if rate < config.starve_rate:
                if run_start is None:
                    run_start = start
                run_end = end
            else:
                could_deliver = True
                flush()
        flush()
    return findings


def detect_rate_oscillation(
    result: RunResult, config: AnomalyConfig = DEFAULT_CONFIG
) -> list[Finding]:
    """Tail-of-run rate swings far beyond the AIMD limit cycle."""
    findings: list[Finding] = []
    tail_start = result.duration * (1.0 - config.tail_fraction)
    series: dict[int, tuple[list[float], list[float]]] = {}
    telemetry = result.extras.get("telemetry")
    if isinstance(telemetry, Telemetry) and telemetry.enabled:
        for instrument in telemetry.registry.instruments("gmp.flow_rate"):
            flow_label = instrument.labels.get("flow")
            if flow_label is not None:
                series[int(flow_label)] = (
                    list(instrument.times),
                    list(instrument.values),
                )
    if not series and result.interval_bounds:
        for flow_id, rates in result.interval_rates.items():
            series[flow_id] = (list(result.interval_bounds), list(rates))
    for flow_id, (times, values) in sorted(series.items()):
        arrival, departure = result.lifetime(flow_id)
        tail = [
            value
            for when, value in zip(times, values)
            if when >= tail_start and arrival < when <= departure + 1e-9
        ]
        if len(tail) < 3:
            continue
        mean = sum(tail) / len(tail)
        if mean <= config.starve_rate:
            continue  # dead flows are the starvation detector's beat
        swing = (max(tail) - min(tail)) / mean
        if swing > config.oscillation_threshold:
            findings.append(
                Finding(
                    detector="rate_oscillation",
                    severity="warning",
                    start=tail_start,
                    end=result.duration,
                    labels={"flow": str(flow_id)},
                    message=(
                        f"flow {flow_id} swings {swing:.2f}x its mean "
                        f"({min(tail):.1f}–{max(tail):.1f} around "
                        f"{mean:.1f} pkt/s) after t={tail_start:.1f}s"
                    ),
                )
            )
    return findings


def detect_condition_flapping(
    result: RunResult, config: AnomalyConfig = DEFAULT_CONFIG
) -> list[Finding]:
    """Virtual links whose saturation condition keeps toggling."""
    findings: list[Finding] = []
    telemetry = result.extras.get("telemetry")
    if not isinstance(telemetry, Telemetry) or not telemetry.enabled:
        return findings
    warmup_end = result.duration * config.warmup_fraction
    changes: dict[tuple[str, str], list[float]] = {}
    for event in telemetry.events_in("gmp.condition_change"):
        if event.time < warmup_end:
            continue
        key = (str(event.fields.get("link")), str(event.fields.get("dest")))
        changes.setdefault(key, []).append(event.time)
    for (link, dest), times in sorted(changes.items()):
        if len(times) < config.flap_count:
            continue
        dwell = (times[-1] - times[0]) / (len(times) - 1)
        if dwell < config.flap_dwell:
            findings.append(
                Finding(
                    detector="condition_flapping",
                    severity="warning",
                    start=times[0],
                    end=times[-1],
                    labels={"link": link, "dest": dest},
                    message=(
                        f"virtual link {link} (dest {dest}) changed "
                        f"condition {len(times)} times after warmup "
                        f"(mean dwell {dwell:.1f}s)"
                    ),
                )
            )
    return findings


def _window_means(
    times: list[float],
    values: list[float],
    start: float,
    end: float,
    width: float,
) -> list[tuple[float, float, float]]:
    """Time-weighted means of a piecewise-constant signal, per window.

    Returns ``(window_start, window_end, mean)`` triples; the signal
    holds each sampled value until the next sample.
    """
    if not times or end - start < width:
        return []
    means: list[tuple[float, float, float]] = []
    window_start = start
    while window_start + width <= end + 1e-9:
        window_end = window_start + width
        integral = 0.0
        previous_time = window_start
        current = None
        for when, value in zip(times, values):
            if when <= window_start:
                current = value
                continue
            if when >= window_end:
                break
            if current is not None:
                integral += current * (when - previous_time)
            previous_time = when
            current = value
        if current is not None:
            integral += current * (window_end - previous_time)
            means.append((window_start, window_end, integral / width))
        window_start = window_end
    return means


def detect_queue_divergence(
    result: RunResult, config: AnomalyConfig = DEFAULT_CONFIG
) -> list[Finding]:
    """Queues whose occupancy jumps between adjacent post-warmup windows."""
    findings: list[Finding] = []
    telemetry = result.extras.get("telemetry")
    if not isinstance(telemetry, Telemetry) or not telemetry.enabled:
        return findings
    warmup_end = result.duration * config.warmup_fraction
    for instrument in telemetry.registry.instruments("buffer.queue_len"):
        times = list(getattr(instrument, "times", []))
        values = list(getattr(instrument, "values", []))
        if not times:
            continue
        means = _window_means(
            times, values, warmup_end, result.duration, config.window
        )
        for (start_a, _, mean_a), (start_b, end_b, mean_b) in zip(
            means, means[1:]
        ):
            jump = abs(mean_b - mean_a)
            scale = max(mean_a, mean_b)
            if jump >= config.queue_jump and scale > 0 and (
                jump / scale >= config.queue_jump_rel
            ):
                node = instrument.labels.get("node")
                dest = instrument.labels.get("dest")
                findings.append(
                    Finding(
                        detector="queue_divergence",
                        severity="warning",
                        start=start_a,
                        end=end_b,
                        labels={"node": str(node), "dest": str(dest)},
                        message=(
                            f"queue at node {node} (dest {dest}) moved "
                            f"from mean {mean_a:.1f} to {mean_b:.1f} "
                            f"packets between adjacent {config.window:g}s "
                            f"windows"
                        ),
                    )
                )
                break  # one finding per queue is enough
    return findings


def detect_anomalies(
    result: RunResult, config: AnomalyConfig = DEFAULT_CONFIG
) -> AnomalyReport:
    """Run every detector over ``result`` and collect the findings."""
    findings = (
        detect_starved_flows(result, config)
        + detect_rate_oscillation(result, config)
        + detect_condition_flapping(result, config)
        + detect_queue_divergence(result, config)
    )
    findings.sort(key=lambda f: (f.start, f.detector, sorted(f.labels.items())))
    return AnomalyReport(findings=findings)
