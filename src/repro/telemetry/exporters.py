"""Telemetry exporters.

Three output formats:

* :func:`write_metrics_jsonl` — one JSON object per line: a ``run``
  header, counter/gauge/histogram snapshots, one ``sample`` line per
  time-series point, and one ``event`` line per structured event.
  Loads straight into pandas (``pd.read_json(path, lines=True)``).
* :func:`write_chrome_trace` — Chrome ``trace_event`` JSON: series
  become counter tracks, telemetry events and structured trace records
  become instant events on per-subsystem threads.  Load the file in
  Perfetto (https://ui.perfetto.dev) or ``about:tracing``; simulation
  seconds are mapped to trace microseconds 1:1.
* :func:`format_summary` — plain-text run summary (kernel profile,
  top counters, event counts) for terminals and logs.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from repro.sim.trace import TraceCollector
from repro.telemetry import Telemetry
from repro.telemetry.registry import (
    Counter,
    Gauge,
    SampleHistogram,
    Series,
    TimeWeightedHistogram,
    stable_instrument_key,
)

#: Simulation seconds -> trace microseconds.
_TRACE_US = 1_000_000.0


def _label_suffix(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _jsonable(fields: dict[str, Any]) -> dict[str, Any]:
    return {
        key: value
        if isinstance(value, (int, float, str, bool, type(None)))
        else str(value)
        for key, value in fields.items()
    }


# --- JSONL ---------------------------------------------------------------------


def write_metrics_jsonl(
    path: str, telemetry: Telemetry, *, run_info: dict[str, Any] | None = None
) -> int:
    """Write every metric snapshot, series point, and event as JSONL.

    Returns the number of lines written.
    """
    info = dict(telemetry.run_info)
    if run_info:
        info.update(run_info)
    with open(path, "w", encoding="utf-8") as handle:
        return _write_jsonl(handle, telemetry, info)


def run_record(info: dict[str, Any]) -> dict[str, Any]:
    """The ``run`` header record for ``info``."""
    return {"record": "run", **_jsonable(info)}


def instrument_record(instrument: Any) -> dict[str, Any]:
    """The snapshot/header record for one instrument (a series'
    sample lines are separate — see :func:`sample_record`)."""
    base = {
        "record": instrument.kind,
        "name": instrument.name,
        "labels": _jsonable(instrument.labels),
    }
    if isinstance(instrument, (Counter, Gauge)):
        return {**base, "value": instrument.value}
    if isinstance(instrument, (TimeWeightedHistogram, SampleHistogram)):
        return {**base, **instrument.snapshot()}
    if isinstance(instrument, Series):
        return {**base, "points": len(instrument), "dropped": instrument.dropped}
    return {**base, **instrument.snapshot()}


def sample_record(instrument: Series, t: float, v: float) -> dict[str, Any]:
    """One series point as a ``sample`` record."""
    return {
        "record": "sample",
        "name": instrument.name,
        "labels": _jsonable(instrument.labels),
        "t": t,
        "v": v,
    }


def event_record(event: Any) -> dict[str, Any]:
    """One telemetry event as an ``event`` record."""
    return {
        "record": "event",
        "t": event.time,
        "category": event.category,
        "fields": _jsonable(event.fields),
    }


def iter_metric_records(telemetry: Telemetry, info: dict[str, Any]):
    """Every JSONL record of a run, in the canonical export order:
    run header, instruments (each series followed by its samples),
    events, drop marker.  Both :func:`write_metrics_jsonl` and the
    streaming publisher (:mod:`repro.obs.stream`) are built on this,
    which is what makes a streamed run reconstructible byte-for-byte.
    """
    yield run_record(info)
    for instrument in telemetry.registry.instruments():
        yield instrument_record(instrument)
        if isinstance(instrument, Series):
            for t, v in zip(instrument.times, instrument.values):
                yield sample_record(instrument, t, v)
    for event in telemetry.events:
        yield event_record(event)
    if telemetry.events_dropped:
        yield {"record": "events_dropped", "count": telemetry.events_dropped}


def _write_jsonl(handle: TextIO, telemetry: Telemetry, info: dict[str, Any]) -> int:
    lines = 0
    for record in iter_metric_records(telemetry, info):
        handle.write(json.dumps(record, default=str) + "\n")
        lines += 1
    return lines


# --- Chrome trace_event --------------------------------------------------------

#: Stable thread ids per subsystem (top-level category segment).
_SUBSYSTEM_TIDS = {
    "kernel": 1,
    "mac": 2,
    "channel": 2,
    "buffer": 3,
    "gmp": 4,
    "flow": 5,
    "traffic": 5,
    "runner": 6,
    "trace": 7,
}
_DEFAULT_TID = 8
_PID = 1


def _tid_for(category: str) -> int:
    return _SUBSYSTEM_TIDS.get(category.split(".", 1)[0], _DEFAULT_TID)


def write_chrome_trace(
    path: str,
    telemetry: Telemetry,
    *,
    trace: TraceCollector | None = None,
    run_info: dict[str, Any] | None = None,
) -> int:
    """Write a Chrome ``trace_event`` JSON file.

    Series become counter tracks (``ph: "C"``); telemetry events and —
    when a :class:`TraceCollector` is supplied — structured trace
    records become instant events (``ph: "i"``) on per-subsystem
    threads.  Returns the number of trace events written.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro simulation"},
        }
    ]
    named: set[int] = set()

    def name_thread(tid: int, name: str) -> None:
        if tid not in named:
            named.add(tid)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": name},
                }
            )

    for subsystem, tid in sorted(_SUBSYSTEM_TIDS.items(), key=lambda kv: kv[1]):
        # First registration wins for shared tids (mac/channel, flow/traffic).
        name_thread(tid, subsystem)
    name_thread(_DEFAULT_TID, "other")

    count = 0
    for instrument in telemetry.registry.instruments():
        if not isinstance(instrument, Series):
            continue
        track = instrument.name + _label_suffix(instrument.labels)
        for t, v in zip(instrument.times, instrument.values):
            events.append(
                {
                    "name": track,
                    "ph": "C",
                    "ts": t * _TRACE_US,
                    "pid": _PID,
                    "tid": _tid_for(instrument.name),
                    "args": {"value": v},
                }
            )
            count += 1

    for event in telemetry.events:
        events.append(
            {
                "name": event.category,
                "ph": "i",
                "s": "t",
                "ts": event.time * _TRACE_US,
                "pid": _PID,
                "tid": _tid_for(event.category),
                "args": _jsonable(event.fields),
            }
        )
        count += 1

    if trace is not None:
        for record in trace.records():
            events.append(
                {
                    "name": record.category,
                    "ph": "i",
                    "s": "t",
                    "ts": record.time * _TRACE_US,
                    "pid": _PID,
                    "tid": _tid_for(record.category),
                    "args": _jsonable(record.fields),
                }
            )
            count += 1

    payload: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if run_info or telemetry.run_info:
        info = dict(telemetry.run_info)
        info.update(run_info or {})
        payload["otherData"] = _jsonable(info)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, default=str)
    return count


# --- plain-text summary --------------------------------------------------------


def format_summary(telemetry: Telemetry, *, top: int = 12) -> str:
    """Human-readable run summary: kernel profile, largest counters,
    series sizes, and event counts by category."""
    lines: list[str] = ["telemetry summary", "================="]

    tag_counts = [
        (instrument.labels.get("tag", "?"), instrument.value)
        for instrument in telemetry.registry.instruments("kernel.events_by_tag")
    ]
    if tag_counts:
        lines.append("")
        lines.append("kernel: dispatched events by tag")
        wall = {
            instrument.labels.get("tag", "?"): instrument.value
            for instrument in telemetry.registry.instruments(
                "kernel.handler_wall_seconds"
            )
        }
        for tag, value in sorted(tag_counts, key=lambda kv: (-kv[1], kv[0]))[:top]:
            suffix = f"  {wall[tag] * 1e3:10.2f} ms" if tag in wall else ""
            lines.append(f"  {tag:<28} {int(value):>10}{suffix}")
        throughput = next(
            iter(telemetry.registry.instruments("kernel.events_per_sec")), None
        )
        if throughput is not None and getattr(throughput, "value", None):
            lines.append(f"  events/sec (wall): {throughput.value:,.0f}")

    hists = [
        instrument
        for instrument in telemetry.registry.instruments("kernel.handler_wall_hist")
        if isinstance(instrument, SampleHistogram) and instrument.count
    ]
    if hists:
        lines.append("")
        lines.append("kernel: handler wall time (top by total, us)")
        header = (
            f"  {'tag':<28} {'count':>10} {'p50':>9} {'p95':>9}"
            f" {'p99':>9} {'total ms':>10}"
        )
        lines.append(header)
        # Rank by where the wall time actually went, not call count.
        for hist in sorted(
            hists, key=lambda h: (-h.total, stable_instrument_key(h))
        )[:top]:
            tag = hist.labels.get("tag", "?")
            lines.append(
                f"  {tag:<28} {hist.count:>10}"
                f" {hist.quantile(0.50) * 1e6:>9.1f}"
                f" {hist.quantile(0.95) * 1e6:>9.1f}"
                f" {hist.quantile(0.99) * 1e6:>9.1f}"
                f" {hist.total * 1e3:>10.2f}"
            )

    counters = [
        instrument
        for instrument in telemetry.registry.instruments()
        if isinstance(instrument, Counter)
        and instrument.name != "kernel.events_by_tag"
        and instrument.value > 0
    ]
    if counters:
        lines.append("")
        lines.append(f"top counters (of {len(counters)} non-zero)")
        # Rank by value; break ties with the canonical instrument key
        # so equal counters cannot swap lines between runs.
        for instrument in sorted(
            counters, key=lambda c: (-c.value, stable_instrument_key(c))
        )[:top]:
            lines.append(
                f"  {instrument.name + _label_suffix(instrument.labels):<44}"
                f" {instrument.value:>12.3f}"
            )

    series = [
        instrument
        for instrument in telemetry.registry.instruments()
        if isinstance(instrument, Series) and len(instrument)
    ]
    if series:
        lines.append("")
        lines.append(f"time series: {len(series)} populated")
        total = sum(len(s) for s in series)
        dropped = sum(s.dropped for s in series)
        lines.append(f"  {total} points stored, {dropped} dropped")

    if telemetry.events:
        lines.append("")
        lines.append("events by category")
        by_category: dict[str, int] = {}
        for event in telemetry.events:
            by_category[event.category] = by_category.get(event.category, 0) + 1
        for category in sorted(by_category):
            lines.append(f"  {category:<28} {by_category[category]:>10}")
        if telemetry.events_dropped:
            lines.append(f"  (+{telemetry.events_dropped} dropped at the cap)")

    return "\n".join(lines)


# --- Prometheus text exposition -------------------------------------------------


def _prom_name(name: str, suffix: str = "") -> str:
    """``repro.`` metric name -> Prometheus metric name.

    Dots and every other illegal character become underscores, and all
    metrics share the ``repro_`` namespace prefix.
    """
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}{suffix}"


def _prom_escape(value: Any) -> str:
    text = str(value)
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: dict[str, Any], extra: str = "") -> str:
    parts = [
        f'{key}="{_prom_escape(value)}"' for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _prom_float(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def _prom_histogram_lines(
    name: str,
    labels: dict[str, Any],
    bounds: tuple[float, ...],
    per_bucket: list[float],
    total: float,
    count: float,
) -> list[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` lines for one
    histogram instrument (works for both counted and time-weighted
    buckets — Prometheus histograms only require monotone buckets)."""
    lines = []
    cumulative = 0.0
    for bound, in_bucket in zip(bounds, per_bucket):
        cumulative += in_bucket
        le = 'le="' + _prom_float(bound) + '"'
        lines.append(
            f"{name}_bucket{_prom_labels(labels, le)} {_prom_float(cumulative)}"
        )
    cumulative += per_bucket[len(bounds)] if len(per_bucket) > len(bounds) else 0.0
    lines.append(
        f"{name}_bucket" + _prom_labels(labels, 'le="+Inf"')
        + f" {_prom_float(cumulative)}"
    )
    lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_float(total)}")
    lines.append(f"{name}_count{_prom_labels(labels)} {_prom_float(count)}")
    return lines


def render_metrics_prometheus(telemetry: Telemetry) -> str:
    """Render the registry in Prometheus text exposition format 0.0.4.

    Instruments are walked in ``stable_instrument_key`` order, so two
    renders of the same registry are byte-identical.  Mapping:

    * counters -> ``repro_<name>_total`` (``TYPE counter``);
    * gauges -> ``repro_<name>`` (unset gauges are skipped);
    * sample histograms -> cumulative ``_bucket``/``_sum``/``_count``;
    * time-weighted histograms -> the same shape with seconds-in-bucket
      as the (monotone) bucket values;
    * series -> a gauge of the most recent value, plus a
      ``_points_total`` counter of stored points.
    """
    groups: dict[tuple[str, str, str], list[str]] = {}

    def emit(kind: str, prom_name: str, prom_type: str, lines: list[str]) -> None:
        group = groups.setdefault((kind, prom_name, prom_type), [])
        group.extend(lines)

    for instrument in telemetry.registry.instruments():
        labels = instrument.labels
        if isinstance(instrument, Counter):
            name = _prom_name(instrument.name, "_total")
            emit(
                "counter",
                name,
                "counter",
                [f"{name}{_prom_labels(labels)} {_prom_float(instrument.value)}"],
            )
        elif isinstance(instrument, Gauge):
            if instrument.value is None:
                continue
            name = _prom_name(instrument.name)
            emit(
                "gauge",
                name,
                "gauge",
                [f"{name}{_prom_labels(labels)} {_prom_float(instrument.value)}"],
            )
        elif isinstance(instrument, SampleHistogram):
            name = _prom_name(instrument.name)
            emit(
                "sample_histogram",
                name,
                "histogram",
                _prom_histogram_lines(
                    name,
                    labels,
                    instrument.bounds,
                    [float(c) for c in instrument.bucket_counts],
                    instrument.total,
                    float(instrument.count),
                ),
            )
        elif isinstance(instrument, TimeWeightedHistogram):
            name = _prom_name(instrument.name, "_seconds")
            emit(
                "histogram",
                name,
                "histogram",
                _prom_histogram_lines(
                    name,
                    labels,
                    instrument.bounds,
                    list(instrument.bucket_time),
                    instrument.weighted_sum,
                    instrument.total_time,
                ),
            )
        elif isinstance(instrument, Series):
            if not instrument.values:
                continue
            name = _prom_name(instrument.name)
            emit(
                "series",
                name,
                "gauge",
                [f"{name}{_prom_labels(labels)} {_prom_float(instrument.values[-1])}"],
            )
            points = _prom_name(instrument.name, "_points_total")
            emit(
                "series_points",
                points,
                "counter",
                [f"{points}{_prom_labels(labels)} {_prom_float(len(instrument))}"],
            )

    out: list[str] = []
    seen_types: set[str] = set()
    for (_kind, prom_name, prom_type), lines in groups.items():
        if prom_name not in seen_types:
            seen_types.add(prom_name)
            out.append(f"# TYPE {prom_name} {prom_type}")
        out.extend(lines)
    if telemetry.events:
        name = "repro_telemetry_events_total"
        out.append(f"# TYPE {name} counter")
        by_category: dict[str, int] = {}
        for event in telemetry.events:
            by_category[event.category] = by_category.get(event.category, 0) + 1
        for category in sorted(by_category):
            out.append(
                f'{name}{{category="{_prom_escape(category)}"}} '
                f"{_prom_float(by_category[category])}"
            )
    return "\n".join(out) + "\n" if out else ""


def write_metrics_prometheus(path: str, telemetry: Telemetry) -> int:
    """Write :func:`render_metrics_prometheus` to ``path``.

    Returns:
        The number of lines written (comments included).
    """
    text = render_metrics_prometheus(telemetry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n")
