"""Telemetry: metrics, structured protocol events, and profiling.

The subsystem has three parts:

* :class:`~repro.telemetry.registry.MetricsRegistry` — counters,
  gauges, time-weighted histograms, and time-series probes keyed by
  node/link/flow labels (see :mod:`repro.telemetry.registry`);
* a bounded **event log** (:meth:`Telemetry.event`) for discrete,
  structured happenings — GMP rate adjustments, link-condition
  transitions, bandwidth violations — that analysis joins against;
* kernel **profiling** (events per tag, handler wall time, events/sec)
  collected by the simulator when ``profile=True``.

A :class:`Telemetry` instance is attached to the
:class:`~repro.sim.kernel.Simulator` (``sim.telemetry``); every model
component instruments itself through it.  The default is the shared
:data:`NULL_TELEMETRY`, which is disabled: instrumented components
cache ``telemetry.enabled`` at construction and skip their hot-path
bookkeeping entirely, so an un-instrumented run costs nothing and
dispatches exactly the same events as before the subsystem existed —
telemetry never schedules simulation events, even when enabled.

Exporters live in :mod:`repro.telemetry.exporters`: JSONL for metric
and event records, Chrome ``trace_event`` JSON for Perfetto /
``about:tracing`` timelines, and a plain-text summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Instrument,
    MetricsRegistry,
    SampleHistogram,
    Series,
    TimeWeightedHistogram,
    stable_instrument_key,
)

#: Cap on stored telemetry events; excess events are counted, not kept.
DEFAULT_EVENT_LIMIT = 200_000


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured event: time, dotted category, free-form fields."""

    time: float
    category: str
    fields: dict[str, Any] = field(default_factory=dict)


class Telemetry:
    """Facade bundling the metrics registry, the event log, and the
    profiling switches for one run.

    Args:
        enabled: master switch; a disabled instance stores nothing.
        profile: also measure per-event-tag wall time in the kernel
            (adds two clock reads per dispatched event, so it is a
            separate opt-in on top of ``enabled``).
        series_limit: default point cap per time series.
        event_limit: cap on stored events.

    A Telemetry instance accumulates for its lifetime — hand a fresh
    one to each :func:`~repro.scenarios.runner.run_scenario` call.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        profile: bool = False,
        series_limit: int | None = None,
        event_limit: int = DEFAULT_EVENT_LIMIT,
    ) -> None:
        self.enabled = enabled
        self.profile = profile and enabled
        if series_limit is not None:
            self.registry = MetricsRegistry(
                enabled=enabled, series_limit=series_limit
            )
        else:
            self.registry = MetricsRegistry(enabled=enabled)
        self._event_limit = event_limit
        self.events: list[TelemetryEvent] = []
        self.events_dropped = 0
        self.run_info: dict[str, Any] = {}

    def event(self, time: float, category: str, **fields: Any) -> None:
        """Record one structured event (no-op when disabled)."""
        if not self.enabled:
            return
        if len(self.events) >= self._event_limit:
            self.events_dropped += 1
            return
        self.events.append(TelemetryEvent(time=time, category=category, fields=fields))

    def events_in(self, category: str) -> list[TelemetryEvent]:
        """Stored events of one exact category, in time order."""
        return [event for event in self.events if event.category == category]

    def finalize(self, now: float) -> None:
        """Close open measurement intervals at the end of a run."""
        self.registry.finalize(now)


#: Shared disabled instance used wherever no telemetry was requested.
NULL_TELEMETRY = Telemetry(enabled=False)

__all__ = [
    "Counter",
    "Gauge",
    "Instrument",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "SampleHistogram",
    "Series",
    "Telemetry",
    "TelemetryEvent",
    "TimeWeightedHistogram",
    "stable_instrument_key",
]
