"""The metrics registry: counters, gauges, time-weighted histograms,
and time-series probes, keyed by name + labels.

Design goals, in order:

1. **Near-zero cost when disabled.**  A disabled registry hands out
   shared null instruments whose mutators are no-ops; instrumented
   components additionally cache ``registry.enabled`` at construction
   so their hot paths skip even the no-op call.
2. **Deterministic.**  Instruments never touch wall clocks or RNGs;
   every timestamp is supplied by the caller (simulation time), so an
   instrumented run replays identically.
3. **Flat, greppable naming.**  Metric names are dotted
   (``mac.airtime_seconds``); labels are keyword arguments
   (``node=3``, ``link="1->2"``, ``flow=2``, ``state="full"``).  The
   same (name, labels) pair always returns the same instrument.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterator

from repro.errors import ConfigError

#: Default cap on stored points per time series; excess points are
#: counted in ``Series.dropped`` instead of silently vanishing.
DEFAULT_SERIES_LIMIT = 100_000

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def stable_instrument_key(
    instrument: "Instrument",
) -> tuple[str, str, tuple[tuple[str, str], ...]]:
    """Canonical ``(kind, name, sorted stringified labels)`` sort key.

    The one ordering every consumer of labeled instruments — the
    registry iterator, the exporters, tests — must share.  Label
    values are stringified so mixed int/str labels under the same
    metric name stay comparable; nothing here depends on ``id()``,
    ``repr()`` formatting, or hash order.
    """
    return (
        instrument.kind,
        instrument.name,
        tuple(
            (key, str(value))
            for key, value in sorted(instrument.labels.items())
        ),
    )


class Instrument:
    """Base class: identity (name + labels) and export plumbing."""

    kind = "instrument"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)

    def snapshot(self) -> dict[str, Any]:
        """Exportable view of the current value(s)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tags = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"<{type(self).__name__} {self.name}{{{tags}}}>"


class Counter(Instrument):
    """Monotonically increasing count (packets, retries, seconds)."""

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge(Instrument):
    """Last-written value (queue length, events/sec, rate limit)."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class TimeWeightedHistogram(Instrument):
    """Dwell time per value bucket.

    Tracks a piecewise-constant signal (queue length, saturation
    state index): :meth:`update` closes the dwell interval of the
    previous value and opens one for the new value.  ``bucket_time[i]``
    is the total time spent with ``bounds[i-1] < value <= bounds[i]``
    (first bucket: ``value <= bounds[0]``; last: above every bound).
    """

    kind = "histogram"

    def __init__(
        self, name: str, labels: dict[str, Any], bounds: tuple[float, ...]
    ) -> None:
        super().__init__(name, labels)
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigError(
                f"histogram {name} needs sorted, non-empty bounds: {bounds}"
            )
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_time = [0.0] * (len(self.bounds) + 1)
        self._current: float | None = None
        self._since = 0.0
        self.weighted_sum = 0.0  # integral of value over time
        self.total_time = 0.0

    def update(self, now: float, value: float) -> None:
        """The signal takes ``value`` from ``now`` on."""
        self._accumulate(now)
        self._current = float(value)
        self._since = now

    def finalize(self, now: float) -> None:
        """Close the open dwell interval at the end of a run."""
        self._accumulate(now)
        self._since = now

    def _accumulate(self, now: float) -> None:
        if self._current is None:
            return
        dwell = now - self._since
        if dwell <= 0:
            return
        index = bisect.bisect_left(self.bounds, self._current)
        self.bucket_time[index] += dwell
        self.weighted_sum += self._current * dwell
        self.total_time += dwell

    @property
    def time_weighted_mean(self) -> float:
        """Time-average of the signal (0.0 before any dwell closes)."""
        if self.total_time <= 0:
            return 0.0
        return self.weighted_sum / self.total_time

    def snapshot(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "bucket_time": list(self.bucket_time),
            "time_weighted_mean": self.time_weighted_mean,
            "total_time": self.total_time,
        }


class Series(Instrument):
    """Append-only (time, value) probe with change compression.

    :meth:`record` stores every sample; :meth:`record_changed` skips
    samples equal to the previous value, which keeps long steady-state
    stretches from bloating the export while preserving the exact
    trajectory of a piecewise-constant signal.  A full series counts
    further samples in ``dropped`` rather than silently vanishing.
    """

    kind = "series"

    def __init__(
        self, name: str, labels: dict[str, Any], limit: int | None
    ) -> None:
        super().__init__(name, labels)
        self.times: list[float] = []
        self.values: list[float] = []
        self.limit = limit
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.times)

    def record(self, now: float, value: float) -> None:
        if self.limit is not None and len(self.times) >= self.limit:
            self.dropped += 1
            return
        self.times.append(now)
        self.values.append(float(value))

    def record_changed(self, now: float, value: float) -> None:
        """Record only if ``value`` differs from the last sample."""
        if self.values and self.values[-1] == value:
            return
        self.record(now, value)

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.times, self.values))

    def snapshot(self) -> dict[str, Any]:
        return {
            "points": [[t, v] for t, v in zip(self.times, self.values)],
            "dropped": self.dropped,
        }


class SampleHistogram(Instrument):
    """Count-per-bucket distribution of individual observations.

    Unlike :class:`TimeWeightedHistogram` (dwell time of a
    piecewise-constant signal), this counts discrete samples — handler
    wall times, batch sizes — and answers quantile queries by linear
    interpolation inside the bucket that crosses the requested rank.
    ``bucket_counts[i]`` is the number of observations with
    ``bounds[i-1] < value <= bounds[i]`` (first bucket: ``value <=
    bounds[0]``; last: above every bound).
    """

    kind = "sample_histogram"

    def __init__(
        self, name: str, labels: dict[str, Any], bounds: tuple[float, ...]
    ) -> None:
        super().__init__(name, labels)
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigError(
                f"sample histogram {name} needs sorted, non-empty bounds: {bounds}"
            )
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def merge_counts(self, bucket_counts: list[int], total: float) -> None:
        """Fold pre-bucketed counts in (the kernel buckets during the
        run and merges once at the end, keeping the hot path flat)."""
        if len(bucket_counts) != len(self.bucket_counts):
            raise ConfigError(
                f"sample histogram {self.name} merge width mismatch: "
                f"{len(bucket_counts)} != {len(self.bucket_counts)}"
            )
        for index, extra in enumerate(bucket_counts):
            self.bucket_counts[index] += extra
        self.count += sum(bucket_counts)
        self.total += total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from the buckets.

        Interpolates linearly inside the crossing bucket; observations
        above every bound report the last bound (a floor — exact values
        were never kept).
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must lie in [0, 1]: {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.bucket_counts):
            if bucket == 0:
                continue
            if cumulative + bucket >= rank:
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.bounds[-1]
                )
                lower = self.bounds[index - 1] if index > 0 else 0.0
                if index >= len(self.bounds):
                    return upper
                fraction = (rank - cumulative) / bucket
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket
        return self.bounds[-1]

    def snapshot(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(TimeWeightedHistogram):
    __slots__ = ()

    def update(self, now: float, value: float) -> None:
        pass

    def finalize(self, now: float) -> None:
        pass


class _NullSeries(Series):
    __slots__ = ()

    def record(self, now: float, value: float) -> None:
        pass

    def record_changed(self, now: float, value: float) -> None:
        pass


class _NullSampleHistogram(SampleHistogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def merge_counts(self, bucket_counts: list[int], total: float) -> None:
        pass


NULL_COUNTER = _NullCounter("null", {})
NULL_GAUGE = _NullGauge("null", {})
NULL_HISTOGRAM = _NullHistogram("null", {}, (0.0,))
NULL_SERIES = _NullSeries("null", {}, limit=0)
NULL_SAMPLE_HISTOGRAM = _NullSampleHistogram("null", {}, (0.0,))


class MetricsRegistry:
    """Factory and store for instruments.

    Args:
        enabled: master switch.  A disabled registry stores nothing and
            every accessor returns a shared null instrument.
        series_limit: default point cap for :class:`Series` probes.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        series_limit: int | None = DEFAULT_SERIES_LIMIT,
    ) -> None:
        self.enabled = enabled
        self.series_limit = series_limit
        self._instruments: dict[tuple[str, str, LabelKey], Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(
        self,
        kind: str,
        name: str,
        labels: dict[str, Any],
        factory: Callable[[], Instrument],
    ) -> Instrument:
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._get("counter", name, labels, lambda: Counter(name, labels))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._get("gauge", name, labels, lambda: Gauge(name, labels))

    def histogram(
        self, name: str, bounds: tuple[float, ...], **labels: Any
    ) -> TimeWeightedHistogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get(
            "histogram",
            name,
            labels,
            lambda: TimeWeightedHistogram(name, labels, bounds),
        )

    def sample_histogram(
        self, name: str, bounds: tuple[float, ...], **labels: Any
    ) -> SampleHistogram:
        if not self.enabled:
            return NULL_SAMPLE_HISTOGRAM
        return self._get(
            "sample_histogram",
            name,
            labels,
            lambda: SampleHistogram(name, labels, bounds),
        )

    def series(
        self, name: str, *, limit: int | None = None, **labels: Any
    ) -> Series:
        if not self.enabled:
            return NULL_SERIES
        cap = self.series_limit if limit is None else limit
        return self._get(
            "series", name, labels, lambda: Series(name, labels, cap)
        )

    def instruments(self, name: str | None = None) -> Iterator[Instrument]:
        """All instruments (optionally filtered by exact name), in
        the canonical :func:`stable_instrument_key` order."""
        for instrument in sorted(
            self._instruments.values(), key=stable_instrument_key
        ):
            if name is None or instrument.name == name:
                yield instrument

    def finalize(self, now: float) -> None:
        """Close every histogram's open dwell interval."""
        for instrument in self._instruments.values():
            if isinstance(instrument, TimeWeightedHistogram):
                instrument.finalize(now)
