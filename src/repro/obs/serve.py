# simcheck: allow-file[DET001] service-mode wall-clock reads are
# operator-facing (events/s gauges, session manifest timing); nothing
# read here ever feeds the simulation.
"""Service mode: host a paced run behind a live HTTP control plane.

``python -m repro serve figure3 --pace 20`` boots one scenario inside
a persistent process: the simulation runs on the main thread (throttled
to ``pace`` simulated seconds per wall second, or free-running), while
a stdlib :class:`http.server.ThreadingHTTPServer` answers read
endpoints (``/status``, ``/metrics``, ``/health``, ``/alerts``,
``/flows``, ``/flows/<id>``) and accepts control commands
(``POST /flows``, ``DELETE /flows/<id>``, ``POST /faults``,
``POST /shutdown``).

**Determinism by construction.**  HTTP threads never touch simulation
state: a control request only enqueues a command on the
:class:`ServeController`'s thread-safe queue and returns ``202`` with
the command's sequence number.  The controller is a kernel
:class:`~repro.sim.kernel.RunMonitor`; at each monitor tick — a
deterministic function of the simulated clock — it drains the queue on
the *simulation* thread, applies each command through the
:class:`~repro.scenarios.runner.LiveRunHandle` (flow graft/retire via
the churn engine, faults via the injector, graceful stop), and
journals the applied command with its tick time to ``commands.jsonl``.
Because tick times and application order are recorded, ``python -m
repro serve --replay commands.jsonl`` re-runs the session headless,
re-applies every command at the identical simulated instant, and must
reproduce the identical replay digest and dispatched-event count — the
journal's ``serve_close`` record carries both for self-verification.

Wall-clock pacing (:meth:`Simulator.run`'s ``pace``) only ever sleeps,
so the digest is invariant across pace settings, including the
free-running replay.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigError, ReproError
from repro.faults.schedule import (
    ControlLoss,
    FaultEvent,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    PacketLossBurst,
)
from repro.obs.health import HealthConfig, HealthMonitor, jsonl_delivery
from repro.obs.sinks import SqliteSink
from repro.obs.stream import StreamPublisher
from repro.sim.replay import ReplaySanitizer
from repro.telemetry import Telemetry

JOURNAL_VERSION = 1


# --- fault command vocabulary ---------------------------------------------------


def fault_event_from_args(args: dict[str, Any], now: float) -> FaultEvent:
    """Build the :class:`FaultEvent` a ``POST /faults`` body describes,
    anchored at simulated time ``now``.

    Kinds: ``crash``/``recover`` (``node``), ``degrade`` (``link``,
    ``loss`` and/or ``cap``), ``restore`` (``link``), ``ctrl``
    (``drop``, ``for`` seconds), ``burst`` (``link``, ``loss``,
    ``for`` seconds).  Windowed kinds measure ``for`` from the moment
    of application, which is the journaled tick time — so a replayed
    window is identical.
    """

    def link_of(value: Any) -> tuple[int, int]:
        if not isinstance(value, (list, tuple)) or len(value) != 2:
            raise ConfigError(f"fault link must be [i, j]: {value!r}")
        return (int(value[0]), int(value[1]))

    kind = args.get("kind")
    if kind == "crash":
        return NodeCrash(at=now, node=int(args["node"]))
    if kind == "recover":
        return NodeRecover(at=now, node=int(args["node"]))
    if kind == "degrade":
        loss = args.get("loss")
        cap = args.get("cap")
        if loss is None and cap is None:
            raise ConfigError("degrade needs 'loss' and/or 'cap'")
        return LinkDegrade(
            at=now,
            link=link_of(args["link"]),
            loss_rate=float(loss) if loss is not None else None,
            capacity_pps=float(cap) if cap is not None else None,
        )
    if kind == "restore":
        return LinkRestore(at=now, link=link_of(args["link"]))
    if kind == "ctrl":
        return ControlLoss(
            at=now,
            drop_prob=float(args["drop"]),
            until=now + float(args["for"]),
        )
    if kind == "burst":
        return PacketLossBurst(
            at=now,
            link=link_of(args["link"]),
            loss_rate=float(args["loss"]),
            until=now + float(args["for"]),
        )
    raise ConfigError(
        f"unknown fault kind {kind!r}; pick from "
        "crash/recover/degrade/restore/ctrl/burst"
    )


# --- the command queue ----------------------------------------------------------


class CommandQueue:
    """Thread-safe FIFO of ``(seq, op, args)`` control commands.

    HTTP worker threads :meth:`submit`; the simulation thread
    :meth:`drain`s at monitor ticks.  Sequence numbers are assigned at
    submission under the lock, so journal order is submission order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: list[tuple[int, str, dict[str, Any]]] = []
        self._next_seq = 1

    def submit(self, op: str, args: dict[str, Any]) -> int:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._items.append((seq, op, dict(args)))
            return seq

    def drain(self) -> list[tuple[int, str, dict[str, Any]]]:
        with self._lock:
            items, self._items = self._items, []
            return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


# --- the controller (a kernel run monitor) --------------------------------------


@dataclass
class AppliedCommand:
    """One command the controller applied, as journaled."""

    seq: int
    t: float
    op: str
    args: dict[str, Any]
    result: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "record": "command",
            "seq": self.seq,
            "t": self.t,
            "op": self.op,
            "args": self.args,
            "result": self.result,
        }


class ServeController:
    """Applies queued control commands at kernel monitor ticks.

    Live mode (``script=None``): commands arrive via :meth:`submit`
    from any thread; each tick drains the queue, applies the commands
    in submission order through the bound
    :class:`~repro.scenarios.runner.LiveRunHandle`, and appends one
    journal line per command.  A command that fails (unknown flow,
    invalid fault, ...) journals its error string instead of raising —
    a bad request must not kill the session.

    Replay mode (``script`` = the journal's command records): no queue,
    no journal writes; each tick applies every scripted command whose
    recorded tick time has been reached, in sequence order.  Tick
    times are deterministic functions of the event sequence, so the
    replayed commands land at the identical simulated instants and the
    run reproduces the live session's digest.
    """

    def __init__(
        self,
        *,
        interval: float = 0.25,
        journal: Callable[[dict[str, Any]], None] | None = None,
        script: list[AppliedCommand] | None = None,
    ) -> None:
        if interval <= 0:
            raise ConfigError(f"command interval must be positive: {interval}")
        self._interval = interval
        self._journal = journal
        self._script = script
        self._script_index = 0
        self.queue = CommandQueue()
        self.applied: list[AppliedCommand] = []
        self.sim: Any = None
        self.handle: Any = None
        self.ticks = 0
        self.last_tick = 0.0
        self.ended_at: float | None = None
        self.aborted: str | None = None
        self._wall_last = 0.0
        self._events_last = 0
        self.events_per_sec = 0.0

    @property
    def interval(self) -> float:
        return self._interval

    def bind(self, sim: Any, handle: Any) -> None:
        """Called by the runner once the stack is assembled."""
        self.sim = sim
        self.handle = handle
        self._wall_last = time.monotonic()
        sim.attach_monitor(self)

    def submit(self, op: str, args: dict[str, Any]) -> int:
        """Enqueue a command from any thread; returns its sequence
        number (the journal key)."""
        if self._script is not None:
            raise ConfigError("replay controller does not accept live commands")
        return self.queue.submit(op, args)

    # --- tick-context application ---------------------------------------------

    def on_tick(self, now: float) -> None:
        self.ticks += 1
        self.last_tick = now
        wall = time.monotonic()
        if wall > self._wall_last:
            events = self.sim.events_processed
            self.events_per_sec = (events - self._events_last) / (
                wall - self._wall_last
            )
            self._events_last = events
            self._wall_last = wall
        if self._script is not None:
            while self._script_index < len(self._script):
                command = self._script[self._script_index]
                if command.t > now:
                    break
                self._script_index += 1
                self._apply(command.seq, now, command.op, command.args)
            return
        for seq, op, args in self.queue.drain():
            self._apply(seq, now, op, args)

    def on_abort(self, now: float, error: BaseException) -> None:
        self.aborted = f"{type(error).__name__}: {error}"
        if self._journal is not None:
            self._journal(
                {"record": "serve_abort", "t": now, "error": self.aborted}
            )

    def finalize(self, now: float) -> None:
        """Called by the runner after ``sim.run`` returns."""
        self.ended_at = now

    def _apply(
        self, seq: int, now: float, op: str, args: dict[str, Any]
    ) -> None:
        canonical = dict(args)
        try:
            result = self._dispatch(op, canonical, now)
        except ReproError as error:
            result = {"error": f"{type(error).__name__}: {error}"}
        applied = AppliedCommand(
            seq=seq, t=now, op=op, args=canonical, result=result
        )
        self.applied.append(applied)
        if self._journal is not None:
            self._journal(applied.to_json())

    def _dispatch(
        self, op: str, args: dict[str, Any], now: float
    ) -> dict[str, Any]:
        handle = self.handle
        if op == "add_flow":
            flow = handle.add_flow(
                int(args["source"]),
                int(args["destination"]),
                flow_id=(
                    int(args["flow_id"]) if args.get("flow_id") is not None
                    else None
                ),
                weight=float(args.get("weight", 1.0)),
                desired_rate=float(args.get("desired_rate", 800.0)),
                packet_bytes=int(args.get("packet_bytes", 1024)),
            )
            # Canonicalize the assigned id into the journaled args so a
            # replay grafts the identical flow even though its id was
            # chosen at apply time.
            args["flow_id"] = flow.flow_id
            return {"flow_id": flow.flow_id}
        if op == "remove_flow":
            handle.remove_flow(int(args["flow_id"]))
            return {"removed": int(args["flow_id"])}
        if op == "fault":
            event = fault_event_from_args(args, now)
            return {"applied": handle.inject_fault(event)}
        if op == "shutdown":
            handle.stop()
            return {"stopped_at": now}
        raise ConfigError(f"unknown control op {op!r}")


# --- the session journal --------------------------------------------------------


class SessionJournal:
    """Append-only ``commands.jsonl`` writer (one JSON object per
    line, flushed per write so a killed session keeps every applied
    command)."""

    def __init__(self, path: str, header: dict[str, Any]) -> None:
        self.path = str(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.write(
            {"record": "serve_header", "version": JOURNAL_VERSION, **header}
        )

    def write(self, record: dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


def load_journal(
    path: str,
) -> tuple[dict[str, Any], list[AppliedCommand], dict[str, Any] | None]:
    """Read a ``commands.jsonl`` back: (header, commands, close record
    or None when the session died before closing)."""
    header: dict[str, Any] | None = None
    commands: list[AppliedCommand] = []
    close: dict[str, Any] | None = None
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("record")
            if kind == "serve_header":
                header = record
            elif kind == "command":
                commands.append(
                    AppliedCommand(
                        seq=int(record["seq"]),
                        t=float(record["t"]),
                        op=str(record["op"]),
                        args=dict(record["args"]),
                        result=dict(record.get("result", {})),
                    )
                )
            elif kind == "serve_close":
                close = record
    if header is None:
        raise ConfigError(f"{path} has no serve_header record")
    commands.sort(key=lambda command: command.seq)
    return header, commands, close


# --- session orchestration ------------------------------------------------------


@dataclass
class ServeConfig:
    """Everything one served session needs (also journaled, so a
    replay can rebuild the identical run)."""

    scenario: str = "figure3"
    protocol: str = "gmp"
    substrate: str = "fluid"
    duration: float = 3600.0
    seed: int = 1
    traffic: str = "cbr"
    pace: float | None = None
    command_interval: float = 0.25
    host: str = "127.0.0.1"
    port: int = 0
    session_dir: str = "serve-session"
    stream_db: bool = False
    stream_interval: float = 1.0
    health: bool = True
    health_interval: float = 1.0

    def run_kwargs(self) -> dict[str, Any]:
        """The :func:`run_scenario` kwargs that shape the event
        sequence (everything a replay must reproduce exactly)."""
        return {
            "protocol": self.protocol,
            "substrate": self.substrate,
            "duration": self.duration,
            "seed": self.seed,
            "traffic": self.traffic,
        }

    def header(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "substrate": self.substrate,
            "duration": self.duration,
            "seed": self.seed,
            "traffic": self.traffic,
            "pace": self.pace,
            "command_interval": self.command_interval,
        }


def _build_scenario(name: str):
    from repro.scenarios.sweep import SCENARIO_FACTORIES

    if name not in SCENARIO_FACTORIES:
        raise ConfigError(
            f"unknown scenario {name!r}; pick from "
            f"{tuple(SCENARIO_FACTORIES)}"
        )
    return SCENARIO_FACTORIES[name]()


def serve_session(
    config: ServeConfig,
    *,
    ready: Callable[[int], None] | None = None,
    emit: Callable[[str], None] = print,
) -> dict[str, Any]:
    """Run one served session to completion; returns the manifest.

    The HTTP plane comes up first (``ready(port)`` fires once it
    listens — with ``port=0`` the OS picks a free one), then the
    simulation runs on the calling thread until the scenario duration
    elapses or a ``POST /shutdown`` command lands.  On the way out the
    run finalizes exactly like a batch run (stream sinks flushed and
    closed, final health sweep), the journal gains its ``serve_close``
    digest record, and ``manifest.json`` summarizes the session.
    """
    import os

    from repro.obs.httpapi import make_server
    from repro.scenarios.runner import run_scenario

    scenario = _build_scenario(config.scenario)
    os.makedirs(config.session_dir, exist_ok=True)
    journal_path = os.path.join(config.session_dir, "commands.jsonl")
    alerts_path = os.path.join(config.session_dir, "alerts.jsonl")
    journal = SessionJournal(journal_path, config.header())
    controller = ServeController(
        interval=config.command_interval, journal=journal.write
    )

    telemetry = Telemetry(enabled=True)
    sanitizer = ReplaySanitizer()
    stream = None
    sink = None
    if config.stream_db:
        sink = SqliteSink(os.path.join(config.session_dir, "stream.db"))
        stream = StreamPublisher(
            telemetry, [sink], interval=config.stream_interval
        )
    health = None
    if config.health:
        health = HealthMonitor(
            HealthConfig(interval=config.health_interval),
            deliveries=[jsonl_delivery(alerts_path)],
        )

    server, server_thread = make_server(controller, config.host, config.port)
    port = server.server_address[1]
    emit(f"serving {config.scenario} on http://{config.host}:{port}")
    if ready is not None:
        ready(port)

    wall_start = time.monotonic()
    error_text: str | None = None
    result = None
    try:
        result = run_scenario(
            scenario,
            telemetry=telemetry,
            sanitizer=sanitizer,
            stream=stream,
            health=health,
            control=controller,
            pace=config.pace,
            **config.run_kwargs(),
        )
    except ReproError as error:
        error_text = f"{type(error).__name__}: {error}"
    finally:
        server.shutdown()
        server_thread.join(timeout=5.0)
        server.server_close()

    manifest: dict[str, Any] = {
        **config.header(),
        "http_port": port,
        "wall_seconds": time.monotonic() - wall_start,
        "commands_applied": len(controller.applied),
        "journal": journal_path,
    }
    if result is not None:
        digest = result.extras["replay_digest"]
        events = result.extras["events_processed"]
        journal.write(
            {
                "record": "serve_close",
                "t": result.duration if controller.ended_at is None
                else controller.ended_at,
                "events": events,
                "digest": digest,
                "commands": len(controller.applied),
            }
        )
        manifest.update(
            {
                "ended_at": controller.ended_at,
                "events": events,
                "replay_digest": digest,
                "flows_measured": len(result.flow_rates),
                "alerts": (
                    len(result.extras["health"].alerts())
                    if "health" in result.extras
                    else 0
                ),
            }
        )
    else:
        manifest["error"] = error_text
    journal.close()
    if sink is not None:
        sink.close()
    manifest_path = os.path.join(config.session_dir, "manifest.json")
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    manifest["manifest"] = manifest_path
    if error_text is not None:
        raise ConfigError(f"served session failed: {error_text}")
    return manifest


def replay_session(
    journal_path: str, *, emit: Callable[[str], None] = print
) -> dict[str, Any]:
    """Re-run a served session headless from its command journal.

    Rebuilds the scenario from the journal header, applies every
    journaled command at its recorded tick time, and compares the
    resulting replay digest + event count against the journal's
    ``serve_close`` record.  Returns a report dict with ``matches``
    (None when the original session never closed cleanly).
    """
    from repro.scenarios.runner import run_scenario

    header, commands, close = load_journal(journal_path)
    config = ServeConfig(
        scenario=str(header["scenario"]),
        protocol=str(header["protocol"]),
        substrate=str(header["substrate"]),
        duration=float(header["duration"]),
        seed=int(header["seed"]),
        traffic=str(header.get("traffic", "cbr")),
        command_interval=float(header.get("command_interval", 0.25)),
    )
    scenario = _build_scenario(config.scenario)
    controller = ServeController(
        interval=config.command_interval, script=commands
    )
    sanitizer = ReplaySanitizer()
    result = run_scenario(
        scenario,
        sanitizer=sanitizer,
        control=controller,
        **config.run_kwargs(),
    )
    digest = result.extras["replay_digest"]
    events = result.extras["events_processed"]
    report: dict[str, Any] = {
        "digest": digest,
        "events": events,
        "commands_applied": len(controller.applied),
        "commands_journaled": len(commands),
        "matches": None,
    }
    if close is not None:
        report["expected_digest"] = close["digest"]
        report["expected_events"] = close["events"]
        report["matches"] = (
            digest == close["digest"] and events == close["events"]
        )
    status = {True: "MATCH", False: "MISMATCH", None: "no close record"}[
        report["matches"]
    ]
    emit(
        f"replay: {report['commands_applied']}/{len(commands)} commands, "
        f"{events} events, digest {digest[:16]}... [{status}]"
    )
    return report


# --- CLI ------------------------------------------------------------------------


def serve_main(argv: list[str] | None = None) -> int:
    """``python -m repro serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Host a paced simulation behind a live HTTP observability "
            "and control plane, or replay a served session's command "
            "journal."
        ),
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario name (figure*/scale*); omit with --replay",
    )
    parser.add_argument("--replay", metavar="JOURNAL", default=None)
    parser.add_argument("--protocol", default="gmp")
    parser.add_argument("--substrate", default="fluid")
    parser.add_argument("--duration", type=float, default=3600.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--traffic", default="cbr")
    parser.add_argument(
        "--pace",
        type=float,
        default=None,
        help="max simulated seconds per wall second (default: free-run)",
    )
    parser.add_argument("--command-interval", type=float, default=0.25)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--session-dir", default="serve-session")
    parser.add_argument(
        "--stream-db",
        action="store_true",
        help="stream telemetry into <session-dir>/stream.db",
    )
    parser.add_argument("--no-health", action="store_true")
    args = parser.parse_args(argv)

    try:
        if args.replay is not None:
            report = replay_session(args.replay)
            if report["matches"] is False:
                return 1
            return 0
        if args.scenario is None:
            parser.error("a scenario name (or --replay) is required")
        config = ServeConfig(
            scenario=args.scenario,
            protocol=args.protocol,
            substrate=args.substrate,
            duration=args.duration,
            seed=args.seed,
            traffic=args.traffic,
            pace=args.pace,
            command_interval=args.command_interval,
            host=args.host,
            port=args.port,
            session_dir=args.session_dir,
            stream_db=args.stream_db,
            health=not args.no_health,
        )
        manifest = serve_session(config)
    except ReproError as error:
        print(f"error: {error}")
        return 2
    print(
        f"session closed: {manifest.get('events', '?')} events, "
        f"{manifest['commands_applied']} commands, "
        f"manifest at {manifest['manifest']}"
    )
    return 0
