"""Fleet-style performance/fidelity trend reporting.

Every PR ships a ``BENCH_<n>.json`` artifact
(:mod:`benchmarks.bench_json`); each one is a point-in-time snapshot,
but the repository accumulates them, and the question CI actually
wants answered is a *trajectory*: is the kernel getting faster PR over
PR, did a speedup claimed three PRs ago survive, is the fidelity
pass-rate stable?

``python -m repro perftrend`` ingests the whole artifact history plus
the committed fidelity baseline and renders per-metric, per-PR tables:

* benchmark means (ms) per PR, with the ratio of the newest to the
  oldest measurement (>1 = faster now);
* claimed same-PR speedups, where artifacts carry a ``pre_pr``
  section;
* sweep-engine figures (cached-rerun speedup, cache hit rate);
* the fidelity shape pass/skip/fail counts of the committed baseline.

Output is markdown (for CI job summaries) or JSON (for machines).
Wall-clock numbers from different machines are not comparable — the
report shows trajectories, it does not gate; gating stays with
``benchmarks/compare_bench.py`` and its committed baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError

_BENCH_NAME = re.compile(r"BENCH_(\d+)\.json$")

#: Sweep-demo figures worth trending (label: artifact key).
_SWEEP_FIGURES = (
    ("cached rerun speedup", "cached_rerun_speedup"),
    ("cache hit rate", "cache_hit_rate"),
    ("2-worker speedup", "two_worker_speedup"),
)


@dataclass(frozen=True)
class BenchPoint:
    """One artifact: a PR's benchmark snapshot."""

    label: str  # "PR 4"
    order: int  # sort key (the PR number)
    path: str
    benchmarks: dict[str, dict[str, float]]
    speedups: dict[str, float] = field(default_factory=dict)
    sweep: dict[str, float] = field(default_factory=dict)
    scale: dict[str, dict[str, float]] = field(default_factory=dict)


@dataclass
class TrendReport:
    """The assembled history, oldest PR first."""

    points: list[BenchPoint]
    fidelity: dict[str, Any] = field(default_factory=dict)

    @property
    def metrics(self) -> list[str]:
        """Every benchmark name seen in any artifact, sorted."""
        names: set[str] = set()
        for point in self.points:
            names.update(point.benchmarks)
        return sorted(names)


def _artifact_order(path: pathlib.Path, payload: dict[str, Any]) -> int:
    """PR number of an artifact: the ``pr`` field (schema 2), else the
    number in the ``BENCH_<n>.json`` filename."""
    pr = payload.get("pr")
    if isinstance(pr, int):
        return pr
    match = _BENCH_NAME.search(path.name)
    if match:
        return int(match.group(1))
    raise ConfigError(
        f"cannot order {path}: no 'pr' field and no BENCH_<n>.json name"
    )


def load_trend(
    bench_paths: list[str],
    *,
    fidelity_path: str | None = None,
) -> TrendReport:
    """Load artifacts (any schema version) into a :class:`TrendReport`."""
    points: list[BenchPoint] = []
    for raw in bench_paths:
        path = pathlib.Path(raw)
        with path.open(encoding="utf-8") as handle:
            payload = json.load(handle)
        benchmarks = payload.get("benchmarks")
        if not isinstance(benchmarks, dict):
            raise ConfigError(f"{path} has no 'benchmarks' mapping")
        order = _artifact_order(path, payload)
        points.append(
            BenchPoint(
                label=f"PR {order}",
                order=order,
                path=str(path),
                benchmarks=benchmarks,
                speedups=dict(payload.get("speedups", {})),
                sweep=dict(payload.get("sweep", {})),
                scale=dict(payload.get("scale", {})),
            )
        )
    points.sort(key=lambda p: (p.order, p.path))
    fidelity: dict[str, Any] = {}
    if fidelity_path is not None:
        fidelity_file = pathlib.Path(fidelity_path)
        if fidelity_file.exists():
            with fidelity_file.open(encoding="utf-8") as handle:
                fidelity = json.load(handle)
    return TrendReport(points=points, fidelity=fidelity)


def _mean_ms(point: BenchPoint, metric: str) -> float | None:
    stats = point.benchmarks.get(metric)
    if not stats:
        return None
    mean = stats.get("mean_s")
    return mean * 1e3 if isinstance(mean, (int, float)) else None


def _p95_ms(point: BenchPoint, metric: str) -> float | None:
    stats = point.benchmarks.get(metric)
    if not stats:
        return None
    p95 = stats.get("p95_s")
    return p95 * 1e3 if isinstance(p95, (int, float)) else None


def _fidelity_counts(fidelity: dict[str, Any]) -> dict[str, int]:
    counts = {"pass": 0, "skip": 0, "fail": 0}
    for verdict in fidelity.get("shapes", {}).values():
        counts[verdict] = counts.get(verdict, 0) + 1
    return counts


def trend_json(report: TrendReport) -> dict[str, Any]:
    """Machine-readable trend payload."""
    metrics: dict[str, Any] = {}
    for metric in report.metrics:
        series = []
        for point in report.points:
            entry: dict[str, Any] = {"pr": point.order}
            mean = _mean_ms(point, metric)
            if mean is not None:
                entry["mean_ms"] = mean
            p95 = _p95_ms(point, metric)
            if p95 is not None:
                entry["p95_ms"] = p95
            speedup = point.speedups.get(metric)
            if speedup is not None:
                entry["claimed_speedup"] = speedup
            series.append(entry)
        measured = [e["mean_ms"] for e in series if "mean_ms" in e]
        metrics[metric] = {
            "series": series,
            "trend_ratio": (
                measured[0] / measured[-1]
                if len(measured) >= 2 and measured[-1] > 0
                else None
            ),
        }
    payload: dict[str, Any] = {
        "schema": "repro-perftrend/1",
        "artifacts": [point.path for point in report.points],
        "metrics": metrics,
    }
    sweep = {
        point.label: point.sweep for point in report.points if point.sweep
    }
    if sweep:
        payload["sweep"] = sweep
    scale = {
        point.label: point.scale for point in report.points if point.scale
    }
    if scale:
        payload["scale"] = scale
    if report.fidelity:
        counts = _fidelity_counts(report.fidelity)
        total = sum(counts.values())
        payload["fidelity"] = {
            **counts,
            "total": total,
            "pass_rate": counts["pass"] / total if total else None,
            "substrate": report.fidelity.get("substrate"),
        }
    return payload


def _format_cell(value: float | None, fmt: str = "{:.3f}") -> str:
    return fmt.format(value) if value is not None else "—"


def render_trend(report: TrendReport) -> str:
    """Markdown trend tables (CI job-summary friendly)."""
    if not report.points:
        return "# Performance trend\n\nNo benchmark artifacts found.\n"
    labels = [point.label for point in report.points]
    lines = ["# Performance trend", ""]
    lines.append(
        f"{len(report.points)} artifact(s): "
        + ", ".join(f"`{point.path}`" for point in report.points)
    )
    lines.append("")
    lines.append("## Benchmark means (ms)")
    lines.append("")
    lines.append(
        "| benchmark | " + " | ".join(labels) + " | oldest/newest |"
    )
    lines.append("|" + "---|" * (len(labels) + 2))
    for metric in report.metrics:
        means = [_mean_ms(point, metric) for point in report.points]
        measured = [m for m in means if m is not None]
        ratio = (
            f"{measured[0] / measured[-1]:.2f}x"
            if len(measured) >= 2 and measured[-1] > 0
            else "—"
        )
        cells = " | ".join(_format_cell(mean) for mean in means)
        lines.append(f"| {metric} | {cells} | {ratio} |")

    if any(any(_p95_ms(p, m) is not None for m in report.metrics)
           for p in report.points):
        lines.append("")
        lines.append("## Benchmark p95 (ms)")
        lines.append("")
        lines.append("| benchmark | " + " | ".join(labels) + " |")
        lines.append("|" + "---|" * (len(labels) + 1))
        for metric in report.metrics:
            p95s = [_p95_ms(point, metric) for point in report.points]
            if all(p is None for p in p95s):
                continue
            cells = " | ".join(_format_cell(p) for p in p95s)
            lines.append(f"| {metric} | {cells} |")

    if any(point.speedups for point in report.points):
        lines.append("")
        lines.append("## Claimed same-PR speedups (vs each PR's pre revision)")
        lines.append("")
        lines.append("| benchmark | " + " | ".join(labels) + " |")
        lines.append("|" + "---|" * (len(labels) + 1))
        for metric in report.metrics:
            speedups = [point.speedups.get(metric) for point in report.points]
            if all(s is None for s in speedups):
                continue
            cells = " | ".join(
                _format_cell(s, "{:.2f}x") for s in speedups
            )
            lines.append(f"| {metric} | {cells} |")

    sweep_points = [point for point in report.points if point.sweep]
    if sweep_points:
        lines.append("")
        lines.append("## Sweep engine")
        lines.append("")
        lines.append(
            "| figure | " + " | ".join(p.label for p in sweep_points) + " |"
        )
        lines.append("|" + "---|" * (len(sweep_points) + 1))
        for label, key in _SWEEP_FIGURES:
            values = [point.sweep.get(key) for point in sweep_points]
            if all(v is None for v in values):
                continue
            cells = " | ".join(_format_cell(v, "{:.2f}") for v in values)
            lines.append(f"| {label} | {cells} |")

    scale_points = [point for point in report.points if point.scale]
    if scale_points:
        lines.append("")
        lines.append("## Scaling vs N")
        lines.append("")
        lines.append(
            "Pipeline build (topology→links→contention→cliques) and "
            "fluid-substrate throughput at each city-scale point."
        )
        lines.append("")

        def _nodes(name: str) -> int:
            for point in scale_points:
                entry = point.scale.get(name)
                if entry and isinstance(entry.get("nodes"), (int, float)):
                    return int(entry["nodes"])
            return 0

        names = sorted(
            {name for point in scale_points for name in point.scale},
            key=_nodes,
        )
        header = "| scenario | nodes |"
        divider = "|---|---|"
        for point in scale_points:
            header += f" {point.label} build (s) | {point.label} sim-s/s |"
            divider += "---|---|"
        lines.append(header)
        lines.append(divider)
        for name in names:
            row = f"| {name} | {_nodes(name) or '—'} |"
            for point in scale_points:
                entry = point.scale.get(name, {})
                row += (
                    f" {_format_cell(entry.get('build_s'), '{:.2f}')} |"
                    f" {_format_cell(entry.get('sim_seconds_per_second'))} |"
                )
            lines.append(row)

    if report.fidelity:
        counts = _fidelity_counts(report.fidelity)
        total = sum(counts.values())
        lines.append("")
        lines.append("## Fidelity baseline")
        lines.append("")
        lines.append(
            f"{counts['pass']}/{total} shapes pass "
            f"({counts['skip']} skipped, {counts['fail']} failing) on the "
            f"`{report.fidelity.get('substrate', '?')}` substrate — "
            f"pass rate {counts['pass'] / total:.0%}."
            if total
            else "Fidelity baseline present but empty."
        )

    lines.append("")
    return "\n".join(lines)


def perftrend_main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro perftrend [artifacts...]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro perftrend",
        description="Render the BENCH_*.json history as a trend report.",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        help="BENCH_*.json artifacts (default: BENCH_*.json in the "
        "current directory)",
    )
    parser.add_argument(
        "--fidelity",
        default="fidelity-baseline.json",
        help="fidelity baseline JSON (default: %(default)s; skipped "
        "silently when absent)",
    )
    parser.add_argument(
        "--format", choices=("markdown", "json"), default="markdown"
    )
    parser.add_argument("--out", default=None, help="write here instead of stdout")
    args = parser.parse_args(argv)

    paths = args.artifacts
    if not paths:
        paths = sorted(
            str(p) for p in pathlib.Path(".").glob("BENCH_*.json")
        )
    if not paths:
        print("perftrend: no BENCH_*.json artifacts found")
        return 1
    report = load_trend(paths, fidelity_path=args.fidelity)
    if args.format == "json":
        text = json.dumps(trend_json(report), indent=2, sort_keys=True) + "\n"
    else:
        text = render_trend(report)
    if args.out:
        pathlib.Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0
