"""The HTTP plane of service mode: stdlib-only routing and handlers.

One :class:`http.server.ThreadingHTTPServer` fronts a live
:class:`~repro.obs.serve.ServeController`.  Read endpoints inspect the
run directly (plain attribute reads of live state — safe under the
GIL, with a bounded retry for the rare ``RuntimeError`` when a dict is
resized mid-iteration); control endpoints only *enqueue* commands and
answer ``202 Accepted`` with the command's sequence number — the
simulation thread applies them at the next monitor tick (see
:mod:`repro.obs.serve` for the determinism story).

Endpoints:

====== ==================== ==========================================
Method Path                 Meaning
====== ==================== ==========================================
GET    ``/status``          sim time, events/s, queue depth, streams
GET    ``/metrics``         Prometheus text exposition (live registry)
GET    ``/health``          health-monitor probe state + alert counts
GET    ``/alerts``          full alert log
GET    ``/flows``           every flow with live measured rate
GET    ``/flows/<id>``      per-flow explainer (bottleneck clique,
                            dominant GMP condition, reference gap)
POST   ``/flows``           enqueue a flow arrival
DELETE ``/flows/<id>``      enqueue a flow departure
POST   ``/faults``          enqueue a fault (crash/degrade/ctrl/...)
POST   ``/shutdown``        enqueue a graceful stop
====== ==================== ==========================================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.errors import ConfigError, ReproError

#: Attempts for reads racing the simulation thread's dict mutations.
_READ_RETRIES = 3


class Unavailable(Exception):
    """The resource exists but cannot be served right now (503)."""


class NotFound(Exception):
    """No such resource (404)."""


def _with_retries(read: Callable[[], Any]) -> Any:
    for attempt in range(_READ_RETRIES):
        try:
            return read()
        except RuntimeError:
            # Dict resized during iteration: the sim thread got between
            # us and the data.  Transient by nature — retry.
            if attempt == _READ_RETRIES - 1:
                raise
    raise AssertionError("unreachable")


class ServeApi:
    """Route table + handlers, separated from the socket machinery so
    tests can drive it without a listening server."""

    def __init__(self, controller: Any) -> None:
        self.controller = controller

    # --- helpers ---------------------------------------------------------------

    def _handle(self) -> Any:
        handle = self.controller.handle
        if handle is None:
            raise Unavailable("simulation still starting")
        return handle

    # --- read endpoints --------------------------------------------------------

    def status(self) -> dict[str, Any]:
        controller = self.controller
        handle = self._handle()
        stream = handle.stream
        payload = {
            **handle.run_info(),
            "t": handle.now,
            "events": handle.events_processed,
            "events_per_sec_wall": controller.events_per_sec,
            "queue_depth": handle.queue_depth,
            "commands_applied": len(controller.applied),
            "commands_pending": len(controller.queue),
            "controller_ticks": controller.ticks,
            "last_tick": controller.last_tick,
        }
        if stream is not None:
            payload["stream"] = {
                "flushes": stream.flushes,
                "records_streamed": stream.records_streamed,
            }
        return payload

    def metrics_text(self) -> str:
        from repro.telemetry.exporters import render_metrics_prometheus

        telemetry = self._handle().telemetry
        if telemetry is None or not telemetry.enabled:
            raise Unavailable("telemetry is not enabled for this session")
        return _with_retries(lambda: render_metrics_prometheus(telemetry))

    def health(self) -> dict[str, Any]:
        health = self._handle().health
        if health is None:
            return {"enabled": False}
        alerts = _with_retries(health.alerts)
        return {
            "enabled": True,
            "ticks": health.ticks,
            "interval": health.interval,
            "alerts": len(alerts),
            "raised_total": sum(alert.count for alert in alerts),
            "probes": sorted({alert.probe for alert in alerts}),
        }

    def alerts(self) -> list[dict[str, Any]]:
        health = self._handle().health
        if health is None:
            return []
        return _with_retries(
            lambda: [alert.to_json() for alert in health.alerts()]
        )

    def flows(self) -> list[dict[str, Any]]:
        return _with_retries(self._handle().flows_summary)

    def flow_detail(self, flow_id: int) -> dict[str, Any]:
        from repro.fidelity.explain import explain_flow

        def read() -> dict[str, Any]:
            result = self._handle().partial_result()
            if flow_id not in result.flow_rates:
                raise NotFound(f"no flow {flow_id} in this run")
            return explain_flow(result, flow_id).to_json()

        return _with_retries(read)

    # --- control endpoints -----------------------------------------------------

    def submit(self, op: str, args: dict[str, Any]) -> dict[str, Any]:
        seq = self.controller.submit(op, args)
        return {"accepted": True, "op": op, "seq": seq}


def _flow_id_of(path: str) -> int | None:
    tail = path[len("/flows/"):]
    try:
        return int(tail)
    except ValueError:
        return None


class _Handler(BaseHTTPRequestHandler):
    api: ServeApi  # injected by make_server

    # Quiet by default: one log line per request on stderr would swamp
    # the operator console the daemon shares.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # --- plumbing --------------------------------------------------------------

    def _send(
        self, status: int, payload: Any, content_type: str = "application/json"
    ) -> None:
        body = (
            payload
            if isinstance(payload, bytes)
            else json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ConfigError("request body must be a JSON object")
        return data

    def _guarded(self, respond: Callable[[], None]) -> None:
        try:
            respond()
        except Unavailable as error:
            self._error(503, str(error))
        except NotFound as error:
            self._error(404, str(error))
        except (ConfigError, ReproError, ValueError, KeyError) as error:
            self._error(400, f"{type(error).__name__}: {error}")
        except RuntimeError:
            self._error(503, "live state busy; retry")

    # --- methods ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        api = self.api
        path = self.path.split("?", 1)[0].rstrip("/") or "/"

        def respond() -> None:
            if path == "/status":
                self._send(200, api.status())
            elif path == "/metrics":
                self._send(
                    200,
                    api.metrics_text().encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/health":
                self._send(200, api.health())
            elif path == "/alerts":
                self._send(200, api.alerts())
            elif path == "/flows":
                self._send(200, api.flows())
            elif path.startswith("/flows/"):
                flow_id = _flow_id_of(path)
                if flow_id is None:
                    self._error(400, f"bad flow id in {path!r}")
                else:
                    self._send(200, api.flow_detail(flow_id))
            else:
                self._error(404, f"no such endpoint {path!r}")

        self._guarded(respond)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        api = self.api
        path = self.path.split("?", 1)[0].rstrip("/")

        def respond() -> None:
            if path == "/flows":
                self._send(202, api.submit("add_flow", self._body()))
            elif path == "/faults":
                self._send(202, api.submit("fault", self._body()))
            elif path == "/shutdown":
                self._send(202, api.submit("shutdown", {}))
            else:
                self._error(404, f"no such endpoint {path!r}")

        self._guarded(respond)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        api = self.api
        path = self.path.split("?", 1)[0].rstrip("/")

        def respond() -> None:
            if path.startswith("/flows/"):
                flow_id = _flow_id_of(path)
                if flow_id is None:
                    self._error(400, f"bad flow id in {path!r}")
                else:
                    self._send(
                        202, api.submit("remove_flow", {"flow_id": flow_id})
                    )
            else:
                self._error(404, f"no such endpoint {path!r}")

        self._guarded(respond)


def make_server(
    controller: Any, host: str, port: int
) -> tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the HTTP plane on a daemon thread; returns the live
    server (``server.server_address[1]`` is the bound port — pass
    ``port=0`` to let the OS pick) and its thread.  Call
    ``server.shutdown()`` then join the thread to stop it."""
    api = ServeApi(controller)
    handler = type("BoundHandler", (_Handler,), {"api": api})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return server, thread
