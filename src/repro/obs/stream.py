"""Streaming telemetry publisher.

The :class:`StreamPublisher` bridges a run's in-memory
:class:`~repro.telemetry.Telemetry` to durable
:class:`~repro.obs.sinks.TelemetrySink` backends *while the run is in
flight*.  It implements the kernel's
:class:`~repro.sim.kernel.RunMonitor` protocol: the simulator ticks it
between event dispatches each time the simulated clock crosses its
``interval``, and on each tick it emits every series point and
telemetry event recorded since the previous tick, then flushes the
sinks.  Records are built by the exact same constructors the JSONL
exporter uses (:mod:`repro.telemetry.exporters`), so a streamed line
is byte-identical to the line the end-of-run export would have
written.

Lifecycle:

* ``close(now)`` (clean end of run) — flush the incremental tail, then
  write the final ``run`` header and one snapshot record per
  instrument in the canonical export order, so the stream carries
  everything :func:`~repro.telemetry.exporters.write_metrics_jsonl`
  would.  :func:`reconstruct_jsonl` reorders a closed stream back into
  the exporter's exact byte layout.
* ``on_abort(now, error)`` (kernel watchdog tripped) — same flush plus
  a ``stream_abort`` record and the tail of the replay sanitizer's
  event journal, so a wedged run leaves behind both its telemetry and
  the last events it dispatched before dying.

The publisher only ever *reads* simulator state; it schedules nothing
and draws no randomness, so streaming leaves the dispatched event
sequence and the replay digest bit-identical.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ConfigError
from repro.obs.sinks import TelemetrySink
from repro.telemetry import Telemetry
from repro.telemetry.exporters import (
    event_record,
    instrument_record,
    run_record,
    sample_record,
)
from repro.telemetry.registry import Series, stable_instrument_key

#: Replay-journal entries included in an abort dump.
ABORT_JOURNAL_TAIL = 50

#: Stream-control record kinds (not part of the exporter layout).
CONTROL_RECORDS = ("stream_open", "stream_close", "stream_abort", "journal")


class StreamPublisher:
    """Incrementally publish one run's telemetry to sinks.

    Args:
        telemetry: the run's (enabled) telemetry instance.
        sinks: one or more sinks; every record goes to all of them.
        interval: simulated seconds between flushes.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        sinks: list[TelemetrySink] | TelemetrySink,
        *,
        interval: float = 1.0,
    ) -> None:
        if not telemetry.enabled:
            raise ConfigError("streaming needs an enabled Telemetry instance")
        if interval <= 0:
            raise ConfigError(f"stream interval must be positive: {interval}")
        self.telemetry = telemetry
        self.sinks = [sinks] if isinstance(sinks, TelemetrySink) else list(sinks)
        if not self.sinks:
            raise ConfigError("streaming needs at least one sink")
        self.interval = float(interval)
        self._series_cursors: dict[Any, int] = {}
        self._event_cursor = 0
        self._sanitizer: Any = None
        self.flushes = 0
        self.records_streamed = 0
        self.closed = False
        self.aborted = False
        self._emit({"record": "stream_open", "interval": self.interval})

    # --- plumbing ---------------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.write(record)
        self.records_streamed += 1

    def bind(self, sim: Any) -> None:
        """Attach to a simulator as a passive run monitor."""
        sim.attach_monitor(self)
        self._sanitizer = getattr(sim, "sanitizer", None)

    # --- incremental flushing ---------------------------------------------

    def _flush_increments(self) -> int:
        """Emit every series point and event recorded since the last
        flush; returns the number of records emitted."""
        emitted = 0
        for instrument in self.telemetry.registry.instruments():
            if not isinstance(instrument, Series):
                continue
            key = stable_instrument_key(instrument)
            cursor = self._series_cursors.get(key, 0)
            for index in range(cursor, len(instrument.times)):
                self._emit(
                    sample_record(
                        instrument,
                        instrument.times[index],
                        instrument.values[index],
                    )
                )
                emitted += 1
            self._series_cursors[key] = len(instrument.times)
        events = self.telemetry.events
        for index in range(self._event_cursor, len(events)):
            self._emit(event_record(events[index]))
            emitted += 1
        self._event_cursor = len(events)
        return emitted

    # --- RunMonitor hooks --------------------------------------------------

    def on_tick(self, now: float) -> None:
        """Kernel hook: stream the increments, make them durable."""
        if self.closed:
            return
        self._flush_increments()
        self.flushes += 1
        for sink in self.sinks:
            sink.flush()

    def on_abort(self, now: float, error: BaseException) -> None:
        """Kernel hook: a watchdog tripped — dump everything we have.

        Emits the incremental tail, an ``stream_abort`` marker, the
        final partial snapshots, and the tail of the replay journal
        (when a sanitizer is attached), then closes the sinks.  The
        stream cannot be reconstructed into a clean export — the run
        never finished — but every byte recorded up to the abort is on
        disk when the watchdog error propagates.
        """
        if self.closed:
            return
        self._flush_increments()
        self._emit(
            {
                "record": "stream_abort",
                "t": now,
                "error": str(error),
            }
        )
        # Close open dwell intervals so histogram snapshots are honest
        # about the time actually covered.
        self.telemetry.finalize(now)
        info = dict(self.telemetry.run_info)
        info["aborted"] = True
        self._emit(run_record(info))
        for instrument in self.telemetry.registry.instruments():
            self._emit(instrument_record(instrument))
        if self.telemetry.events_dropped:
            self._emit(
                {"record": "events_dropped", "count": self.telemetry.events_dropped}
            )
        journal = getattr(self._sanitizer, "journal", None)
        if journal:
            for entry in journal[-ABORT_JOURNAL_TAIL:]:
                self._emit(
                    {
                        "record": "journal",
                        "index": entry.index,
                        "t": entry.time,
                        "tag": entry.tag,
                        "digest": entry.digest,
                    }
                )
        self.aborted = True
        self._finish()

    # --- clean shutdown ----------------------------------------------------

    def close(self, now: float) -> None:
        """End of a clean run: flush the tail, write the final header
        and snapshot block, close the sinks.

        Call *after* ``telemetry.finalize`` and after ``run_info`` has
        its final fields, so the streamed header and snapshots carry
        exactly what the end-of-run export would.
        """
        if self.closed:
            return
        self._flush_increments()
        self._emit(run_record(dict(self.telemetry.run_info)))
        for instrument in self.telemetry.registry.instruments():
            self._emit(instrument_record(instrument))
        if self.telemetry.events_dropped:
            self._emit(
                {"record": "events_dropped", "count": self.telemetry.events_dropped}
            )
        self._emit(
            {
                "record": "stream_close",
                "t": now,
                "flushes": self.flushes,
                "records": self.records_streamed + 1,
            }
        )
        self._finish()

    def _finish(self) -> None:
        self.closed = True
        for sink in self.sinks:
            sink.close()


def _series_key(record: dict[str, Any]) -> tuple[str, str]:
    return (record["name"], json.dumps(record["labels"], sort_keys=True))


def reconstruct_jsonl(records: list[dict[str, Any]]) -> str:
    """Reorder a closed stream into the exporter's exact byte layout.

    Given the records of one cleanly closed run (e.g. from
    :meth:`RingSink.records` or :meth:`SqliteSink.records`), produce
    text byte-identical to what
    :func:`~repro.telemetry.exporters.write_metrics_jsonl` writes for
    the same run: run header, instruments in canonical order with each
    series' samples inline, events, drop marker.  Raises
    :class:`~repro.errors.ConfigError` on a stream with no run header
    (i.e. never closed) or an aborted stream.
    """
    header: dict[str, Any] | None = None
    snapshots: list[dict[str, Any]] = []
    samples: dict[tuple[str, str], list[dict[str, Any]]] = {}
    events: list[dict[str, Any]] = []
    dropped: dict[str, Any] | None = None
    for record in records:
        kind = record.get("record")
        if kind == "stream_abort":
            raise ConfigError("cannot reconstruct an aborted stream")
        if kind in CONTROL_RECORDS:
            continue
        if kind == "run":
            header = record
        elif kind == "sample":
            samples.setdefault(_series_key(record), []).append(record)
        elif kind == "event":
            events.append(record)
        elif kind == "events_dropped":
            dropped = record
        else:
            snapshots.append(record)
    if header is None:
        raise ConfigError("stream has no run header (was it closed?)")
    ordered: list[dict[str, Any]] = [header]
    for snapshot in snapshots:
        ordered.append(snapshot)
        if snapshot.get("record") == "series":
            ordered.extend(samples.get(_series_key(snapshot), []))
    ordered.extend(events)
    if dropped is not None:
        ordered.append(dropped)
    return "".join(json.dumps(record, default=str) + "\n" for record in ordered)
