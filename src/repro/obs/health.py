"""In-run health monitoring with deduplicated, cooldown-gated alerts.

The :class:`HealthMonitor` is a kernel
:class:`~repro.sim.kernel.RunMonitor`: the simulator ticks it between
event dispatches on a simulated-clock cadence, and on each tick it
evaluates two families of checks over sliding windows of the live run:

* **liveness probes** computed directly from kernel counters and
  telemetry tails — event-rate stall (the run went quiet relative to
  its own history), queue growth (an occupancy climbing monotonically
  through the window), and GMP condition flap (a virtual link toggling
  saturation conditions rapidly *right now*);
* the **end-of-run anomaly detectors** of :mod:`repro.fidelity.anomaly`
  (starved flows, rate oscillation, condition flapping, queue
  divergence), run mid-flight over a *partial*
  :class:`~repro.scenarios.results.RunResult` snapshot supplied by the
  scenario runner.

Findings become :class:`Alert` records in an :class:`AlertLog`, which
deduplicates by (probe, labels), tracks first/last-seen times and a
repeat count, and re-delivers a persisting alert only after a cooldown.
Delivery is pluggable: :func:`console_delivery`,
:func:`jsonl_delivery`, and :func:`webhook_delivery` (HTTP POST with
bounded retry and a dead-letter file) ship with the module; anything
callable with one :class:`Alert` works.

Everything here observes only — no events are scheduled, no randomness
drawn — so a monitored run dispatches the identical event sequence and
replay digest as an unmonitored one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.errors import ConfigError
from repro.fidelity.anomaly import (
    DEFAULT_CONFIG,
    AnomalyConfig,
    detect_condition_flapping,
    detect_queue_divergence,
    detect_rate_oscillation,
    detect_starved_flows,
)
from repro.scenarios.results import RunResult

#: The anomaly detectors the monitor can run mid-flight, by name.
ANOMALY_DETECTORS = {
    "starved_flow": detect_starved_flows,
    "rate_oscillation": detect_rate_oscillation,
    "condition_flapping": detect_condition_flapping,
    "queue_divergence": detect_queue_divergence,
}

#: Detectors evaluated by default.  ``rate_oscillation`` is opt-in:
#: scanned mid-run it sees convergence transients (and churn-induced
#: reallocations) that the end-of-run scan legitimately excludes.
DEFAULT_DETECTORS = ("starved_flow", "condition_flapping", "queue_divergence")


@dataclass(frozen=True)
class HealthConfig:
    """Monitor cadence, probe thresholds, and alert gating
    (times in simulated seconds)."""

    #: Evaluation cadence.
    interval: float = 1.0
    #: Sliding-window width for the liveness probes.
    window: float = 5.0
    #: No checks before this time: start-up is legitimately weird.
    grace: float = 10.0
    #: Minimum gap before a persisting alert is re-delivered.
    cooldown: float = 10.0
    #: Window event rate below this fraction of the pre-window mean
    #: rate counts as a stall.
    stall_fraction: float = 0.25
    #: Net in-window queue growth (packets, never dipping below the
    #: window's opening value) that counts as runaway growth.
    queue_growth: float = 25.0
    #: Condition changes of one virtual link within the window that
    #: count as live flapping.
    flap_window_count: int = 8
    #: Which :data:`ANOMALY_DETECTORS` to run mid-flight.
    detectors: tuple[str, ...] = DEFAULT_DETECTORS
    #: Thresholds for those detectors.
    anomaly: AnomalyConfig = DEFAULT_CONFIG


@dataclass
class Alert:
    """One deduplicated health condition."""

    probe: str
    severity: str  # "warning" | "critical"
    labels: dict[str, str]
    message: str
    first_seen: float
    last_seen: float
    count: int = 1
    deliveries: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "probe": self.probe,
            "severity": self.severity,
            "labels": dict(self.labels),
            "message": self.message,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "count": self.count,
        }

    def render(self) -> str:
        tags = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        seen = (
            f"t={self.first_seen:.1f}s"
            if self.count == 1
            else f"t={self.first_seen:.1f}–{self.last_seen:.1f}s x{self.count}"
        )
        return f"[{self.severity}] {self.probe} {seen} {{{tags}}}: {self.message}"


AlertKey = tuple[str, tuple[tuple[str, str], ...]]
Delivery = Callable[[Alert], None]


class AlertLog:
    """Deduplicating, cooldown-gated alert store.

    The first occurrence of a (probe, labels) condition is delivered
    immediately; while it persists, the stored alert's ``last_seen``
    and ``count`` advance but delivery repeats only every ``cooldown``
    simulated seconds — a flapping probe cannot flood the hooks.
    """

    def __init__(
        self,
        *,
        deliveries: tuple[Delivery, ...] | list[Delivery] = (),
        cooldown: float = 10.0,
    ) -> None:
        self.deliveries = list(deliveries)
        self.cooldown = cooldown
        self._alerts: dict[AlertKey, Alert] = {}
        self._last_delivered: dict[AlertKey, float] = {}

    def __len__(self) -> int:
        return len(self._alerts)

    def raise_alert(
        self,
        now: float,
        probe: str,
        severity: str,
        labels: dict[str, str],
        message: str,
    ) -> Alert:
        """Record one observation of a condition; deliver if due."""
        key: AlertKey = (probe, tuple(sorted(labels.items())))
        alert = self._alerts.get(key)
        if alert is None:
            alert = Alert(
                probe=probe,
                severity=severity,
                labels=dict(labels),
                message=message,
                first_seen=now,
                last_seen=now,
            )
            self._alerts[key] = alert
            self._deliver(key, alert, now)
            return alert
        alert.last_seen = now
        alert.count += 1
        alert.message = message
        if severity == "critical":
            alert.severity = "critical"
        if now - self._last_delivered.get(key, float("-inf")) >= self.cooldown:
            self._deliver(key, alert, now)
        return alert

    def _deliver(self, key: AlertKey, alert: Alert, now: float) -> None:
        self._last_delivered[key] = now
        alert.deliveries += 1
        for hook in self.deliveries:
            hook(alert)

    def alerts(self) -> list[Alert]:
        """Every deduplicated alert, ordered by first occurrence."""
        return sorted(
            self._alerts.values(), key=lambda a: (a.first_seen, a.probe)
        )

    def to_json(self) -> dict[str, Any]:
        return {"alerts": [alert.to_json() for alert in self.alerts()]}

    def render(self) -> str:
        alerts = self.alerts()
        if not alerts:
            return "health: clean (no alerts)"
        lines = [f"health: {len(alerts)} alert(s)"]
        lines.extend(f"  {alert.render()}" for alert in alerts)
        return "\n".join(lines)


# --- delivery hooks --------------------------------------------------------------


def console_delivery(write: Callable[[str], None] = print) -> Delivery:
    """Deliver alerts as rendered lines (default: ``print``)."""

    def deliver(alert: Alert) -> None:
        write(f"health alert {alert.render()}")

    return deliver


def jsonl_delivery(path: str) -> Delivery:
    """Append one JSON line per delivery to ``path``.

    Opens per delivery (alerts are rare by design), so every delivered
    alert is durable immediately — even if the run is later killed.
    """

    def deliver(alert: Alert) -> None:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(alert.to_json()) + "\n")

    return deliver


class webhook_delivery:
    """HTTP POST delivery with bounded retry and a dead-letter file.

    Each alert is serialized to JSON and POSTed to ``url``.  A failed
    attempt (non-2xx status, timeout, connection error) is retried up
    to ``retries`` times with exponential backoff (``backoff``,
    ``2*backoff``, ...); an alert that exhausts its attempts is
    appended to the ``dead_letter`` JSONL file (when configured) and
    counted in :attr:`failed` — delivery failures never propagate into
    the run.

    Every attempted payload is recorded in :attr:`sent` regardless of
    outcome, and tests (or callers that want a custom transport) can
    pass ``post(url, payload)`` to replace the HTTP layer entirely —
    with ``post`` given, no network I/O happens and retry/dead-letter
    handling wraps the callable instead.

    The wall-clock sleeps between retries happen on whatever thread
    delivers the alert; keep ``backoff`` small (or ``retries=0``) when
    delivering from the simulation thread of a paced run.
    """

    def __init__(
        self,
        url: str,
        post: Callable[[str, dict[str, Any]], None] | None = None,
        *,
        timeout: float = 2.0,
        retries: int = 2,
        backoff: float = 0.25,
        dead_letter: str | None = None,
    ) -> None:
        if timeout <= 0:
            raise ConfigError(f"webhook timeout must be positive: {timeout}")
        if retries < 0:
            raise ConfigError(f"webhook retries must be >= 0: {retries}")
        if backoff < 0:
            raise ConfigError(f"webhook backoff must be >= 0: {backoff}")
        self.url = url
        self.post = post
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.dead_letter = dead_letter
        self.sent: list[tuple[str, dict[str, Any]]] = []
        self.delivered = 0
        self.failed = 0
        self.attempts = 0

    def _post_http(self, url: str, payload: dict[str, Any]) -> None:
        import urllib.request

        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            status = getattr(response, "status", 200)
            if not 200 <= status < 300:
                raise OSError(f"webhook returned HTTP {status}")

    def _dead_letter_write(self, payload: dict[str, Any], error: str) -> None:
        if self.dead_letter is None:
            return
        record = {"url": self.url, "error": error, "alert": payload}
        try:
            with open(self.dead_letter, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            pass  # a failing dead-letter file must not take down the run

    def __call__(self, alert: Alert) -> None:
        payload = alert.to_json()
        self.sent.append((self.url, payload))
        post = self.post if self.post is not None else self._post_http
        last_error = "unknown error"
        for attempt in range(self.retries + 1):
            if attempt and self.backoff > 0:
                import time

                time.sleep(self.backoff * (2 ** (attempt - 1)))
            self.attempts += 1
            try:
                post(self.url, payload)
            except Exception as error:  # noqa: BLE001 - any transport
                last_error = f"{type(error).__name__}: {error}"
                continue  # failure is retryable
            self.delivered += 1
            return
        self.failed += 1
        self._dead_letter_write(payload, last_error)


# --- the monitor -----------------------------------------------------------------


class HealthMonitor:
    """Periodic in-run health evaluator (a kernel run monitor).

    Args:
        config: cadence, thresholds, detector selection.
        deliveries: alert delivery hooks.
        log: an existing :class:`AlertLog` to share (default: fresh).
    """

    def __init__(
        self,
        config: HealthConfig | None = None,
        *,
        deliveries: tuple[Delivery, ...] | list[Delivery] = (),
        log: AlertLog | None = None,
    ) -> None:
        self.config = config or HealthConfig()
        if self.config.interval <= 0:
            raise ConfigError(
                f"health interval must be positive: {self.config.interval}"
            )
        unknown = set(self.config.detectors) - set(ANOMALY_DETECTORS)
        if unknown:
            raise ConfigError(
                f"unknown health detectors {sorted(unknown)}; "
                f"pick from {sorted(ANOMALY_DETECTORS)}"
            )
        self.log = log or AlertLog(
            deliveries=deliveries, cooldown=self.config.cooldown
        )
        self._sim: Any = None
        self._snapshot: Callable[[], RunResult] | None = None
        # (sim time, kernel events processed) history for the stall probe.
        self._event_history: list[tuple[float, int]] = []
        # Cursor into telemetry.events for the live flap probe.
        self._event_cursor = 0
        self._condition_times: dict[tuple[str, str], list[float]] = {}
        self.ticks = 0

    @property
    def interval(self) -> float:
        return self.config.interval

    def bind(self, sim: Any, snapshot: Callable[[], RunResult]) -> None:
        """Attach to a simulator; ``snapshot`` builds the partial
        :class:`RunResult` the anomaly detectors scan mid-flight."""
        self._sim = sim
        self._snapshot = snapshot
        sim.attach_monitor(self)

    def alerts(self) -> list[Alert]:
        return self.log.alerts()

    # --- RunMonitor hooks --------------------------------------------------

    def on_tick(self, now: float) -> None:
        self.ticks += 1
        if self._sim is not None:
            self._event_history.append((now, self._sim.events_processed))
        if now < self.config.grace:
            return
        self._probe_event_rate(now)
        self._probe_queue_growth(now)
        self._probe_condition_flap(now)
        self._run_detectors(now)

    def on_abort(self, now: float, error: BaseException) -> None:
        """A kernel watchdog tripped: record it as a critical alert so
        every delivery hook sees the death certificate."""
        self.log.raise_alert(
            now, "watchdog_abort", "critical", {}, f"run aborted: {error}"
        )

    def finalize(self, now: float) -> AlertLog:
        """One last evaluation at the end of the run; returns the log."""
        self.on_tick(now)
        return self.log

    # --- liveness probes ---------------------------------------------------

    def _probe_event_rate(self, now: float) -> None:
        """The run went quiet: window event rate far below the mean
        rate of everything before the window."""
        window = self.config.window
        history = self._event_history
        if not history or now - history[0][0] < window:
            return
        anchor = history[0]
        for sample in history:
            if sample[0] <= now - window:
                anchor = sample
            else:
                break
        anchor_time, anchor_events = anchor
        if anchor_time <= 0:
            return
        baseline = anchor_events / anchor_time
        if baseline <= 0:
            return
        current = self._sim.events_processed if self._sim is not None else 0
        span = now - anchor_time
        if span <= 0:
            return
        window_rate = (current - anchor_events) / span
        if window_rate < self.config.stall_fraction * baseline:
            self.log.raise_alert(
                now,
                "event_rate_stall",
                "critical",
                {},
                (
                    f"event rate fell to {window_rate:.0f}/s over the last "
                    f"{span:.1f}s (baseline {baseline:.0f}/s)"
                ),
            )

    def _telemetry(self) -> Any:
        return getattr(self._sim, "telemetry", None)

    def _probe_queue_growth(self, now: float) -> None:
        """A queue occupancy climbing through the whole window."""
        telemetry = self._telemetry()
        if telemetry is None or not telemetry.enabled:
            return
        window_start = now - self.config.window
        for instrument in telemetry.registry.instruments("buffer.queue_len"):
            times = getattr(instrument, "times", None)
            values = getattr(instrument, "values", None)
            if not times:
                continue
            # Walk the tail backwards: series are time-ordered.
            tail: list[float] = []
            for index in range(len(times) - 1, -1, -1):
                if times[index] < window_start:
                    break
                tail.append(values[index])
            if len(tail) < 3:
                continue
            tail.reverse()
            first = tail[0]
            if min(tail) < first or tail[-1] - first < self.config.queue_growth:
                continue
            node = str(instrument.labels.get("node"))
            dest = str(instrument.labels.get("dest"))
            self.log.raise_alert(
                now,
                "queue_growth",
                "warning",
                {"node": node, "dest": dest},
                (
                    f"queue at node {node} (dest {dest}) grew from "
                    f"{first:.0f} to {tail[-1]:.0f} packets within "
                    f"{self.config.window:g}s without receding"
                ),
            )

    def _probe_condition_flap(self, now: float) -> None:
        """A virtual link toggling saturation conditions rapidly in
        the current window (the live sibling of the end-of-run
        ``condition_flapping`` detector)."""
        telemetry = self._telemetry()
        if telemetry is None or not telemetry.enabled:
            return
        events = telemetry.events
        for index in range(self._event_cursor, len(events)):
            event = events[index]
            if event.category == "gmp.condition_change":
                key = (
                    str(event.fields.get("link")),
                    str(event.fields.get("dest")),
                )
                self._condition_times.setdefault(key, []).append(event.time)
        self._event_cursor = len(events)
        window_start = now - self.config.window
        for (link, dest), times in sorted(self._condition_times.items()):
            while times and times[0] < window_start:
                times.pop(0)
            if len(times) >= self.config.flap_window_count:
                self.log.raise_alert(
                    now,
                    "condition_flap",
                    "warning",
                    {"link": link, "dest": dest},
                    (
                        f"virtual link {link} (dest {dest}) changed "
                        f"condition {len(times)} times in the last "
                        f"{self.config.window:g}s"
                    ),
                )

    # --- mid-run anomaly detectors -----------------------------------------

    def _run_detectors(self, now: float) -> None:
        if self._snapshot is None or not self.config.detectors:
            return
        result = self._snapshot()
        config = self.config.anomaly
        planned = result.duration
        if now < planned - 1e-9:
            # Mid-run: scan only what has actually happened.  The
            # absolute warmup cutoff and tail start stay where the
            # end-of-run scan will put them (planned duration), but the
            # scan end is clamped to ``now`` — otherwise the windowed
            # detectors read half-filled windows whose provisional
            # means flag jumps that evaporate once the window fills.
            warmup_end = planned * config.warmup_fraction
            if now <= warmup_end + config.window:
                return
            tail_start = planned * (1.0 - config.tail_fraction)
            config = replace(
                config,
                warmup_fraction=min(warmup_end / now, 1.0),
                tail_fraction=max(0.0, min(1.0, 1.0 - tail_start / now)),
            )
            result = replace(result, duration=now)
        for name in self.config.detectors:
            for finding in ANOMALY_DETECTORS[name](result, config):
                self.log.raise_alert(
                    now,
                    finding.detector,
                    finding.severity,
                    finding.labels,
                    finding.message,
                )
