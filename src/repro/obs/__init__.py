"""Live observability plane: streaming sinks, in-run health, trends.

``repro.obs`` sits *above* the simulation stack (scenarios, fidelity)
and watches runs from the outside:

* :mod:`repro.obs.sinks` — pluggable :class:`TelemetrySink` backends
  (JSONL append, bounded in-memory ring, SQLite) that receive telemetry
  records incrementally while a run is in flight;
* :mod:`repro.obs.stream` — the :class:`StreamPublisher`, a kernel
  :class:`~repro.sim.kernel.RunMonitor` that flushes new series points
  and events to the sinks on a simulated-clock cadence, snapshots
  everything on close, and dumps partial state (plus the replay-journal
  tail) when a watchdog aborts the run — so a killed or wedged run
  still leaves analyzable telemetry behind;
* :mod:`repro.obs.health` — the in-run :class:`HealthMonitor`:
  liveness probes plus the :mod:`repro.fidelity.anomaly` detectors
  evaluated over sliding windows mid-run, emitting deduplicated,
  cooldown-gated :class:`Alert` records through pluggable delivery
  hooks;
* :mod:`repro.obs.perftrend` — the fleet-style trend reporter that
  ingests every ``BENCH_*.json`` artifact plus the fidelity baseline
  and renders per-metric, per-PR trajectories;
* :mod:`repro.obs.serve` / :mod:`repro.obs.httpapi` — service mode:
  a stdlib HTTP daemon around a live (optionally wall-clock-paced)
  run.  HTTP threads only *enqueue* commands; the
  :class:`ServeController` applies them on the simulation thread at
  monitor ticks and journals each one, so ``repro serve --replay``
  reproduces the exact run, digest and all.

Everything here is strictly passive: monitors are ticked by the kernel
*between* event dispatches, never via scheduled events, so enabling
the full observability plane leaves the dispatched event sequence —
and the replay digest — bit-identical.
"""

from __future__ import annotations

from repro.obs.health import (
    Alert,
    AlertLog,
    HealthConfig,
    HealthMonitor,
    console_delivery,
    jsonl_delivery,
    webhook_delivery,
)
from repro.obs.httpapi import ServeApi, make_server
from repro.obs.perftrend import TrendReport, load_trend, render_trend
from repro.obs.serve import (
    ServeConfig,
    ServeController,
    load_journal,
    replay_session,
    serve_session,
)
from repro.obs.sinks import JsonlSink, RingSink, SqliteSink, TelemetrySink
from repro.obs.stream import StreamPublisher, reconstruct_jsonl

__all__ = [
    "Alert",
    "AlertLog",
    "HealthConfig",
    "HealthMonitor",
    "JsonlSink",
    "RingSink",
    "ServeApi",
    "ServeConfig",
    "ServeController",
    "SqliteSink",
    "StreamPublisher",
    "TelemetrySink",
    "TrendReport",
    "console_delivery",
    "jsonl_delivery",
    "load_journal",
    "load_trend",
    "make_server",
    "reconstruct_jsonl",
    "render_trend",
    "replay_session",
    "serve_session",
    "webhook_delivery",
]
