"""Streaming telemetry sinks.

A :class:`TelemetrySink` consumes JSON-plain *records* — the same
dict-shaped lines :func:`repro.telemetry.exporters.write_metrics_jsonl`
emits — incrementally while a run is still in flight, so a killed or
wedged run leaves its telemetry on disk instead of losing it with the
in-memory registry.  Three backends:

* :class:`JsonlSink` — append-mode JSONL file; every flush pushes the
  buffered lines through the OS so a SIGKILL loses at most one flush
  interval of data;
* :class:`RingSink` — bounded in-memory ring, the test/debug backend
  (also what powers byte-identical reconstruction tests);
* :class:`SqliteSink` — one SQLite table, append-safe across runs: the
  same database file accumulates multiple runs, each stamped with a
  monotonically increasing run sequence number.

Sinks are fed by :class:`repro.obs.stream.StreamPublisher`, which is
paced by the kernel's monitor hook — sinks themselves never see the
simulator and cannot perturb it.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from collections import deque
from typing import Any

from repro.errors import ConfigError


class TelemetrySink:
    """Interface: accept records, make them durable on flush."""

    def write(self, record: dict[str, Any]) -> None:
        """Accept one JSON-plain record."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make every accepted record durable (no-op where moot)."""

    def close(self) -> None:
        """Flush and release resources; further writes are an error."""
        self.flush()


def encode_record(record: dict[str, Any]) -> str:
    """The one canonical serialization every sink shares — identical
    to the end-of-run JSONL exporter's, so a streamed line is
    byte-identical to its exported twin."""
    return json.dumps(record, default=str)


class JsonlSink(TelemetrySink):
    """Append records to a JSONL file as they arrive.

    The file is opened in append mode, so pointing two consecutive
    runs at the same path concatenates their streams (each run carries
    its own ``run`` header record).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self.records_written = 0

    def write(self, record: dict[str, Any]) -> None:
        self._handle.write(encode_record(record) + "\n")
        self.records_written += 1

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class RingSink(TelemetrySink):
    """Keep the newest ``capacity`` records in memory.

    Overflow is observable (``dropped``), never silent — mirroring the
    registry's series cap and the trace collector's truncation marker.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ConfigError(f"ring capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0
        self.records_written = 0

    def write(self, record: dict[str, Any]) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)
        self.records_written += 1

    def records(self) -> list[dict[str, Any]]:
        """The retained records, oldest first."""
        return list(self._ring)


class SqliteSink(TelemetrySink):
    """Stream records into one SQLite table.

    Schema: ``records(seq, run, t, kind, payload)`` where ``payload``
    is the canonical JSON line, ``kind`` its ``record`` discriminator,
    and ``run`` a per-database run counter assigned at sink creation —
    reopening the same path for a second run appends under the next
    run number instead of clobbering the first.

    Writes buffer in memory; :meth:`flush` commits one transaction, so
    the periodic kernel-paced flush bounds both transaction rate and
    the window of loss on a kill.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._thread = threading.get_ident()
        self._conn = sqlite3.connect(self.path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS records ("
            " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            " run INTEGER NOT NULL,"
            " t REAL,"
            " kind TEXT NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        row = self._conn.execute("SELECT MAX(run) FROM records").fetchone()
        self.run = (row[0] or 0) + 1
        self._pending: list[tuple[int, float | None, str, str]] = []
        self.records_written = 0
        self._closed = False

    def write(self, record: dict[str, Any]) -> None:
        if self._closed:
            raise ConfigError(f"sqlite sink {self.path} is closed")
        time = record.get("t")
        self._pending.append(
            (
                self.run,
                float(time) if isinstance(time, (int, float)) else None,
                str(record.get("record", "?")),
                encode_record(record),
            )
        )
        self.records_written += 1

    def flush(self) -> None:
        if self._closed or not self._pending:
            return
        self._conn.executemany(
            "INSERT INTO records (run, t, kind, payload) VALUES (?, ?, ?, ?)",
            self._pending,
        )
        self._conn.commit()
        self._pending.clear()

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._conn.close()
        self._closed = True

    def _read_conn(self) -> tuple[sqlite3.Connection, bool]:
        """A connection to read from: the live one (flushed first) on
        the writer thread, or a throwaway one when the sink is already
        closed — inspecting a finished database must not require
        keeping the sink open.

        A call from *another* thread (the service-mode HTTP plane
        scraping a run in flight) also gets a throwaway connection:
        sqlite3 connections are bound to their creating thread, and a
        fresh read-only-in-practice connection observes exactly the
        committed rows — the periodic kernel-paced flush bounds its
        staleness.  Cross-thread readers never flush (the pending
        buffer belongs to the writer thread)."""
        if self._closed or threading.get_ident() != self._thread:
            return sqlite3.connect(self.path, timeout=5.0), True
        self.flush()
        return self._conn, False

    def records(self, run: int | None = None) -> list[dict[str, Any]]:
        """Decoded records (optionally of one run), in insert order."""
        conn, temporary = self._read_conn()
        try:
            if run is None:
                rows = conn.execute(
                    "SELECT payload FROM records ORDER BY seq"
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT payload FROM records WHERE run = ? ORDER BY seq",
                    (run,),
                ).fetchall()
        finally:
            if temporary:
                conn.close()
        return [json.loads(payload) for (payload,) in rows]

    def runs(self) -> list[int]:
        """Distinct run numbers present in the database."""
        conn, temporary = self._read_conn()
        try:
            rows = conn.execute(
                "SELECT DISTINCT run FROM records ORDER BY run"
            ).fetchall()
        finally:
            if temporary:
                conn.close()
        return [run for (run,) in rows]
