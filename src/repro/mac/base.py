"""The MAC-layer interface shared by the DCF and fluid substrates.

A node's upper layers (buffers, protocol logic) register a
:class:`NodeServices` bundle of callbacks; the MAC pulls packets
through ``dequeue`` and pushes receptions/overhearings back up.  The
GMP measurement layer additionally reads per-link channel occupancy
through :meth:`MacLayer.occupancy_snapshot`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from repro.flows.packet import Packet
from repro.topology.network import Link


@dataclass
class NodeServices:
    """Callbacks one node's upper layers expose to the MAC.

    Attributes:
        dequeue: return the next eligible ``(packet, next_hop)`` pair
            to transmit, or None when nothing is eligible.  The MAC
            calls this when its transmitter goes idle; the buffer
            layer must call :meth:`MacLayer.notify_backlog` when
            eligibility appears later.
        on_data_received: a DATA frame addressed to this node was
            decoded; arguments are the packet and the upstream node.
        on_overhear: any frame from ``sender`` was decoded (including
            frames addressed elsewhere); carries the sender's
            piggybacked buffer-state map.  Used by congestion
            avoidance to cache downstream buffer states.
        make_piggyback: produce the buffer-state map to attach to an
            outgoing frame.
        on_packet_dropped: the MAC exhausted retries and discarded the
            packet (counted by the node stack).
        on_broadcast_received: a broadcast control frame was decoded;
            arguments are the payload and the sender.
    """

    dequeue: Callable[[], "tuple[Packet, int] | None"]
    on_data_received: Callable[[Packet, int], None]
    on_overhear: Callable[[int, dict[int, bool]], None] = lambda sender, states: None
    make_piggyback: Callable[[], dict[int, bool]] = dict
    on_packet_dropped: Callable[[Packet, int], None] = lambda packet, next_hop: None
    on_broadcast_received: Callable[[object, int], None] = lambda payload, sender: None
    # Batch accessors used only by the fluid substrate (the DCF pulls one
    # packet at a time through ``dequeue``).
    eligible_links: "Callable[[], dict[Link, int]] | None" = None
    dequeue_for: "Callable[[int], Packet | None] | None" = None
    # True while any packet is queued at the node, eligible or not.
    # Optional; when every node supplies it, the fluid substrate can
    # prove the network quiescent and skip whole allocation rounds.
    has_pending: "Callable[[], bool] | None" = None


class MacLayer(abc.ABC):
    """Abstract MAC substrate.

    Lifecycle: construct, :meth:`attach_node` for every node, then
    :meth:`start` once before the simulation runs.
    """

    @abc.abstractmethod
    def attach_node(self, node_id: int, services: NodeServices) -> None:
        """Register the upper-layer callbacks of ``node_id``."""

    @abc.abstractmethod
    def start(self) -> None:
        """Begin operating (schedule initial events)."""

    @abc.abstractmethod
    def notify_backlog(self, node_id: int) -> None:
        """Tell the MAC that ``node_id`` may now have an eligible
        packet (new arrival or downstream buffer released)."""

    @abc.abstractmethod
    def occupancy_snapshot(self, node_id: int) -> dict[Link, float]:
        """Seconds of channel airtime attributed to each directed link
        adjacent to ``node_id`` since the last reset.

        Airtime on link ``(i, j)`` includes the RTS/DATA sent by ``i``
        and the CTS/ACK sent by ``j`` (paper §6.2, *Channel
        Occupancy*).  Both endpoints observe the same value.
        """

    @abc.abstractmethod
    def reset_occupancy(self, node_id: int) -> None:
        """Zero the occupancy accumulators of ``node_id`` (start of a
        new measurement period)."""

    @abc.abstractmethod
    def busy_snapshot(self, node_id: int) -> float:
        """Seconds during which ``node_id`` perceived the channel busy
        (sensed energy or transmitted itself) since the last reset.

        This is the local signal GMP uses to decide whether a clique
        is *saturated*: around a saturated clique the channel is busy
        nearly all the time, regardless of how much of that time is
        productive frame airtime."""

    @abc.abstractmethod
    def reset_busy(self, node_id: int) -> None:
        """Zero the busy-time accumulator of ``node_id``."""

    def send_broadcast(self, node_id: int, payload: object) -> None:
        """Queue a best-effort control broadcast from ``node_id``.

        Optional: substrates that do not model control transport may
        leave this unimplemented; the out-of-band control plane is
        used instead.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not carry in-band broadcasts"
        )

    # --- fault injection (optional; see repro.faults) ---------------------------

    def set_node_down(self, node_id: int, down: bool) -> list[Packet]:
        """Crash (or recover) ``node_id`` at the MAC layer; returns any
        packets the MAC loses in the crash."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support node crash injection"
        )

    def set_link_loss(self, sender: int, receiver: int, rate: float) -> None:
        """Install a loss probability on a directed link; 0 removes it."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support link-loss injection"
        )

    def set_link_capacity(self, sender: int, receiver: int, capacity: float | None) -> None:
        """Fault-injected rate ceiling on a directed link (``None``
        restores); only rate-based substrates can honor this."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support capacity degradation; "
            "use a loss rate instead"
        )

    def packets_in_flight(self) -> list[Packet]:
        """Packets currently held inside the MAC (for end-of-run audits)."""
        return []
