"""The shared radio medium.

The channel implements the protocol interference model on top of the
topology's geometry:

* every node within ``cs_range`` of a transmitter senses energy for
  the frame's whole airtime (physical carrier sense);
* a frame is decoded by a node within ``tx_range`` of the sender iff
  no *other* transmission from a node within ``cs_range`` of the
  receiver overlapped it in time and the receiver was not itself
  transmitting;
* a sensed-but-not-decoded frame (out of decode range, or collided)
  is reported as *corrupted*, which makes the listener defer EIFS —
  the asymmetry responsible for 802.11's hidden/exposed terminal
  unfairness that the paper's Table 3 exhibits.

Propagation delay is neglected (sub-microsecond at these ranges).
Collisions are tracked incrementally: when a transmission starts it
corruption-marks every overlapping transmission (and is marked by
them), so no airtime scanning is needed at frame end.

Fault injection (:mod:`repro.faults`) hooks in at this layer:

* per-directed-link loss rates (:meth:`Channel.set_link_loss`) turn a
  would-be-clean decode into a corrupted sense, modeling a degraded
  radio link;
* downed nodes (:meth:`Channel.set_node_down`) neither decode nor
  sense anything while down — but busy start/end callbacks are still
  delivered so the carrier-sense counters stay balanced across a
  crash/recover cycle;
* :meth:`Channel.abort_transmissions` cancels a crashed sender's
  in-flight frame: the energy stays on the air (it keeps corrupting
  overlapping receptions) but nobody decodes it and the sender gets no
  ``on_tx_end``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import MacError
from repro.mac.frames import Frame
from repro.sim.kernel import Simulator
from repro.topology.network import Topology


class Radio(Protocol):
    """Callbacks a node's radio registers with the channel."""

    def on_busy_start(self) -> None:
        """Some transmission within carrier-sense range began."""

    def on_busy_end(self) -> None:
        """A sensed transmission ended."""

    def on_frame_received(self, frame: Frame) -> None:
        """A frame was decoded successfully (any addressee)."""

    def on_frame_corrupted(self) -> None:
        """A sensed frame ended but could not be decoded."""

    def on_tx_end(self, frame: Frame) -> None:
        """This node's own transmission finished."""


@dataclass
class _Transmission:
    frame: Frame
    sender: int
    start: float
    end: float
    corrupted_at: set[int] = field(default_factory=set)
    aborted: bool = False


class Channel:
    """Event-driven broadcast medium over a :class:`Topology`."""

    def __init__(self, sim: Simulator, topology: Topology) -> None:
        self.sim = sim
        self.topology = topology
        self._radios: dict[int, Radio] = {}
        self._sensers: dict[int, list[int]] = {}
        self._active: list[_Transmission] = []
        self._transmitting: set[int] = set()
        self._down: set[int] = set()
        self._link_loss: dict[tuple[int, int], float] = {}
        self._loss_rng = sim.rng.stream("channel.loss")
        # Statistics.
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_corrupted = 0
        self.frames_lost = 0  # clean decodes suppressed by injected loss

    # --- fault injection hooks -----------------------------------------------

    def set_link_loss(self, sender: int, receiver: int, rate: float) -> None:
        """Install a decode-loss probability on the directed link
        ``sender -> receiver``; ``rate`` 0 removes it.

        Raises:
            MacError: if ``rate`` is outside [0, 1].
        """
        if not 0.0 <= rate <= 1.0:
            raise MacError(f"loss rate must be in [0, 1]: {rate}")
        if rate == 0.0:
            self._link_loss.pop((sender, receiver), None)
        else:
            self._link_loss[(sender, receiver)] = rate

    def set_node_down(self, node_id: int, down: bool) -> None:
        """Mark a node's radio as crashed (no decode, no sense) or back up."""
        self.topology.node(node_id)
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_down(self, node_id: int) -> bool:
        """True while the node's radio is marked crashed."""
        return node_id in self._down

    def abort_transmissions(self, node_id: int) -> None:
        """Cancel the in-flight transmissions of a crashed sender.

        The frame's energy stays on the air until its scheduled end
        (overlapping receptions remain corrupted) but nothing decodes
        it and the sender receives no ``on_tx_end`` — the sender may
        transmit again after recovery without waiting for the ghost
        frame to clear.
        """
        for transmission in self._active:
            if transmission.sender == node_id and not transmission.aborted:
                transmission.aborted = True
        self._transmitting.discard(node_id)

    def register(self, node_id: int, radio: Radio) -> None:
        """Attach a node's radio callbacks.

        Raises:
            MacError: if the node is already registered.
        """
        if node_id in self._radios:
            raise MacError(f"radio for node {node_id} already registered")
        self.topology.node(node_id)
        self._radios[node_id] = radio
        self._sensers.clear()

    def is_transmitting(self, node_id: int) -> bool:
        """True while ``node_id`` has a frame on the air."""
        return node_id in self._transmitting

    def _sensing_radios(self, sender: int) -> list[int]:
        """Registered nodes that sense (equivalently: whose receptions
        are corrupted by) ``sender``'s transmissions, in registration
        order — the order busy/decode callbacks fire in, so it is part
        of the replay digest and must not change.  Cached per sender
        (cleared on :meth:`register`): this runs for every frame on
        the air, and used to rescan every registered radio."""
        cached = self._sensers.get(sender)
        if cached is None:
            members = self.topology.sensing_nodes(sender)
            cached = [node_id for node_id in self._radios if node_id in members]
            self._sensers[sender] = cached
        return cached

    def transmit(self, sender: int, frame: Frame) -> None:
        """Put ``frame`` on the air from ``sender``.

        Raises:
            MacError: if the sender is unregistered or already
                transmitting.
        """
        if sender not in self._radios:
            raise MacError(f"node {sender} has no registered radio")
        if sender in self._down:
            raise MacError(f"node {sender} is down and cannot transmit")
        if sender in self._transmitting:
            raise MacError(f"node {sender} is already transmitting")
        if frame.duration <= 0:
            raise MacError(f"frame duration must be positive: {frame.duration}")

        now = self.sim.now
        transmission = _Transmission(
            frame=frame, sender=sender, start=now, end=now + frame.duration
        )
        # Mutual corruption marking with every overlapping transmission.
        for other in self._active:
            # The new transmission corrupts receptions of `other` at all
            # nodes the new sender interferes with, and vice versa.
            other.corrupted_at.update(self._sensing_radios(sender))
            transmission.corrupted_at.update(self._sensing_radios(other.sender))
            # A transmitting node cannot receive.
            other.corrupted_at.add(sender)
            transmission.corrupted_at.add(other.sender)

        self._active.append(transmission)
        self._transmitting.add(sender)
        self.frames_sent += 1
        if self.sim.trace.wants("channel.tx"):
            self.sim.trace.emit(now, "channel.tx", frame=frame.describe())

        # Down nodes still appear in the sensing list: busy start/end
        # pairs must stay balanced even when the node crashes or
        # recovers mid-frame, so gating on `down` happens at decode
        # time, not here.
        sensing = self._sensing_radios(sender)
        for node_id in sensing:
            self._radios[node_id].on_busy_start()
        self.sim.call_at(
            transmission.end,
            lambda: self._finish(transmission, sensing),
            tag="channel.end",
        )

    def _finish(self, transmission: _Transmission, sensing: list[int]) -> None:
        self._active.remove(transmission)
        if not transmission.aborted:
            # An aborted sender was already cleared — and may have
            # recovered and started a *new* transmission meanwhile,
            # whose flag must not be clobbered by the ghost's end.
            self._transmitting.discard(transmission.sender)
        sender = transmission.sender
        frame = transmission.frame

        for node_id in sensing:
            self._radios[node_id].on_busy_end()

        for node_id in sensing:
            if node_id in self._down:
                continue  # a crashed radio decodes nothing
            radio = self._radios[node_id]
            decodable = self.topology.decodes(sender, node_id)
            clean = (
                node_id not in transmission.corrupted_at
                and not transmission.aborted
            )
            if decodable and clean and self._lost(sender, node_id):
                self.frames_lost += 1
                clean = False
            if decodable and clean:
                self.frames_delivered += 1
                radio.on_frame_received(frame)
            else:
                self.frames_corrupted += 1
                radio.on_frame_corrupted()

        if not transmission.aborted:
            self._radios[sender].on_tx_end(frame)

    def _lost(self, sender: int, receiver: int) -> bool:
        rate = self._link_loss.get((sender, receiver))
        return rate is not None and float(self._loss_rng.random()) < rate
