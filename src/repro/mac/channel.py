"""The shared radio medium.

The channel implements the protocol interference model on top of the
topology's geometry:

* every node within ``cs_range`` of a transmitter senses energy for
  the frame's whole airtime (physical carrier sense);
* a frame is decoded by a node within ``tx_range`` of the sender iff
  no *other* transmission from a node within ``cs_range`` of the
  receiver overlapped it in time and the receiver was not itself
  transmitting;
* a sensed-but-not-decoded frame (out of decode range, or collided)
  is reported as *corrupted*, which makes the listener defer EIFS —
  the asymmetry responsible for 802.11's hidden/exposed terminal
  unfairness that the paper's Table 3 exhibits.

Propagation delay is neglected (sub-microsecond at these ranges).
Collisions are tracked incrementally: when a transmission starts it
corruption-marks every overlapping transmission (and is marked by
them), so no airtime scanning is needed at frame end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import MacError
from repro.mac.frames import Frame
from repro.sim.kernel import Simulator
from repro.topology.network import Topology


class Radio(Protocol):
    """Callbacks a node's radio registers with the channel."""

    def on_busy_start(self) -> None:
        """Some transmission within carrier-sense range began."""

    def on_busy_end(self) -> None:
        """A sensed transmission ended."""

    def on_frame_received(self, frame: Frame) -> None:
        """A frame was decoded successfully (any addressee)."""

    def on_frame_corrupted(self) -> None:
        """A sensed frame ended but could not be decoded."""

    def on_tx_end(self, frame: Frame) -> None:
        """This node's own transmission finished."""


@dataclass
class _Transmission:
    frame: Frame
    sender: int
    start: float
    end: float
    corrupted_at: set[int] = field(default_factory=set)


class Channel:
    """Event-driven broadcast medium over a :class:`Topology`."""

    def __init__(self, sim: Simulator, topology: Topology) -> None:
        self.sim = sim
        self.topology = topology
        self._radios: dict[int, Radio] = {}
        self._active: list[_Transmission] = []
        self._transmitting: set[int] = set()
        # Statistics.
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_corrupted = 0

    def register(self, node_id: int, radio: Radio) -> None:
        """Attach a node's radio callbacks.

        Raises:
            MacError: if the node is already registered.
        """
        if node_id in self._radios:
            raise MacError(f"radio for node {node_id} already registered")
        self.topology.node(node_id)
        self._radios[node_id] = radio

    def is_transmitting(self, node_id: int) -> bool:
        """True while ``node_id`` has a frame on the air."""
        return node_id in self._transmitting

    def transmit(self, sender: int, frame: Frame) -> None:
        """Put ``frame`` on the air from ``sender``.

        Raises:
            MacError: if the sender is unregistered or already
                transmitting.
        """
        if sender not in self._radios:
            raise MacError(f"node {sender} has no registered radio")
        if sender in self._transmitting:
            raise MacError(f"node {sender} is already transmitting")
        if frame.duration <= 0:
            raise MacError(f"frame duration must be positive: {frame.duration}")

        now = self.sim.now
        transmission = _Transmission(
            frame=frame, sender=sender, start=now, end=now + frame.duration
        )
        # Mutual corruption marking with every overlapping transmission.
        for other in self._active:
            # The new transmission corrupts receptions of `other` at all
            # nodes the new sender interferes with, and vice versa.
            for node_id in self._radios:
                if self.topology.interferes(sender, node_id):
                    other.corrupted_at.add(node_id)
                if self.topology.interferes(other.sender, node_id):
                    transmission.corrupted_at.add(node_id)
            # A transmitting node cannot receive.
            other.corrupted_at.add(sender)
            transmission.corrupted_at.add(other.sender)

        self._active.append(transmission)
        self._transmitting.add(sender)
        self.frames_sent += 1
        if self.sim.trace.wants("channel.tx"):
            self.sim.trace.emit(now, "channel.tx", frame=frame.describe())

        sensing = [
            node_id
            for node_id in self._radios
            if self.topology.senses(sender, node_id)
        ]
        for node_id in sensing:
            self._radios[node_id].on_busy_start()
        self.sim.call_at(
            transmission.end,
            lambda: self._finish(transmission, sensing),
            tag="channel.end",
        )

    def _finish(self, transmission: _Transmission, sensing: list[int]) -> None:
        self._active.remove(transmission)
        self._transmitting.discard(transmission.sender)
        sender = transmission.sender
        frame = transmission.frame

        for node_id in sensing:
            self._radios[node_id].on_busy_end()

        for node_id in sensing:
            radio = self._radios[node_id]
            decodable = self.topology.decodes(sender, node_id)
            clean = node_id not in transmission.corrupted_at
            if decodable and clean:
                self.frames_delivered += 1
                radio.on_frame_received(frame)
            else:
                self.frames_corrupted += 1
                radio.on_frame_corrupted()

        self._radios[sender].on_tx_end(frame)
