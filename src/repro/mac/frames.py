"""MAC frames.

Every frame carries the sender's *piggyback* — the per-destination
buffer-state map the congestion-avoidance scheme attaches to all
RTS/CTS/DATA/ACK transmissions (paper §2.2) — so neighbors can cache
downstream buffer states by overhearing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.flows.packet import Packet


class FrameKind(enum.Enum):
    """802.11 frame types used by the simulator."""

    RTS = "rts"
    CTS = "cts"
    DATA = "data"
    ACK = "ack"
    BROADCAST = "broadcast"


@dataclass
class Frame:
    """One frame on the air.

    Attributes:
        kind: frame type.
        sender: transmitting node id.
        receiver: addressed node id; None for broadcast frames.
        duration: airtime in seconds (set from the PHY profile).
        nav: network-allocation-vector value — how long the medium
            stays reserved *after* this frame ends.  Decoding third
            parties defer for this long.
        packet: the data packet, for DATA frames.
        piggyback: sender buffer-state map ``{destination: has_free
            _slot}`` plus any other overheard-state the upper layers
            attach.
        payload: control payload for BROADCAST frames (dissemination
            messages).
    """

    kind: FrameKind
    sender: int
    receiver: int | None
    duration: float
    nav: float = 0.0
    packet: Packet | None = None
    piggyback: dict[int, bool] = field(default_factory=dict)
    payload: Any = None

    @property
    def is_broadcast(self) -> bool:
        """True for receiver-less broadcast frames."""
        return self.receiver is None

    def addressed_to(self, node_id: int) -> bool:
        """True if this unicast frame targets ``node_id``."""
        return self.receiver == node_id

    def describe(self) -> str:
        """Short human-readable form for traces."""
        target = "*" if self.receiver is None else str(self.receiver)
        extra = f" f{self.packet.flow_id}#{self.packet.seq}" if self.packet else ""
        return f"{self.kind.value} {self.sender}->{target}{extra}"
