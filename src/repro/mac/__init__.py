"""MAC layer: packet-level IEEE 802.11 DCF and a fluid approximation.

Two substrates implement the same :class:`~repro.mac.base.MacLayer`
surface, so the buffer and GMP layers run unchanged on either:

* :class:`~repro.mac.dcf.DcfMac` — event-driven 802.11 DCF with
  RTS/CTS/DATA/ACK, binary exponential backoff, NAV, physical carrier
  sensing, hidden terminals, and EIFS (the substrate the paper's
  evaluation assumes);
* :class:`~repro.mac.fluid.FluidMac` — a deterministic clique-
  capacity-sharing model, orders of magnitude faster, used by fast
  tests and convergence studies.
"""

from repro.mac.base import MacLayer, NodeServices
from repro.mac.channel import Channel
from repro.mac.dcf import DcfMac
from repro.mac.fluid import FluidMac
from repro.mac.frames import Frame, FrameKind
from repro.mac.phy import PHY_80211B_LONG, PHY_80211B_SHORT, PhyProfile

__all__ = [
    "MacLayer",
    "NodeServices",
    "Channel",
    "DcfMac",
    "FluidMac",
    "Frame",
    "FrameKind",
    "PhyProfile",
    "PHY_80211B_LONG",
    "PHY_80211B_SHORT",
]
