"""Fluid MAC: deterministic clique-capacity sharing.

A fast substitute for the packet-level DCF.  Time advances in fixed
rounds; in each round every *backlogged* directed link receives a rate
by equal-share water-filling subject to the constraint that the links
of each contention clique jointly serialize on one channel of
``capacity_pps`` packet exchanges per second — the idealization of DCF
the paper itself uses ("IEEE 802.11 DCF allocates channel capacity
equally between the two links", §4.1).

The model preserves what the upper layers care about: backpressure
dynamics (transfers stop when the downstream queue refuses packets),
per-link channel occupancy, and clique saturation.  It deliberately
omits collisions, hidden-terminal asymmetry, and EIFS effects — use
:class:`~repro.mac.dcf.DcfMac` to observe those.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.errors import ConfigError, MacError
from repro.mac.base import MacLayer, NodeServices
from repro.mac.phy import DEFAULT_PHY, PhyProfile
from repro.sim.kernel import Simulator
from repro.topology.cliques import Clique, clique_index_positions, maximal_cliques
from repro.topology.contention import ContentionGraph
from repro.topology.network import Link, Topology

_EPSILON = 1e-9

#: Cached demand→allocation entries kept per FluidMac before the cache
#: is dropped wholesale (guards against adversarial demand churn).
_ALLOC_CACHE_LIMIT = 4096


def _waterfill_core(
    limits: list[float],
    memberships: list[tuple[int, ...]],
    capacity: float,
) -> list[float]:
    """Index-array water-filling over active links 0..m-1.

    ``limits[i]`` is the rate ceiling of link *i* (demand already folded
    with any per-link cap) and ``memberships[i]`` names the cliques
    containing it (ids are opaque; only grouping matters).  Returns the
    allocation per link.

    The freeze loop performs, per link and per clique, the exact same
    float operations in the exact same order as the historical dict/set
    implementation (min of identical value sets, identical ``+=`` /
    ``-=`` step sequences), so allocations are bit-identical — the
    arrays only remove the per-iteration membership rescans.
    """
    m = len(limits)
    alloc = [0.0] * m
    # Compact the cliques that actually have active members; member
    # lists are in link-index order, matching the old active-list scan.
    clique_members: dict[int, list[int]] = defaultdict(list)
    for i, clique_ids in enumerate(memberships):
        for clique_id in clique_ids:
            clique_members[clique_id].append(i)
    member_lists = list(clique_members.values())
    n_cliques = len(member_lists)
    remaining = [capacity] * n_cliques
    counts = [len(members) for members in member_lists]
    link_cliques: list[list[int]] = [[] for _ in range(m)]
    for c, members in enumerate(member_lists):
        for i in members:
            link_cliques[i].append(c)

    frozen = [False] * m
    # Ascending index list of still-unfrozen links; scanning it instead
    # of range(m) keeps every min/update/check over the identical value
    # set (and in the same index order), just without revisiting frozen
    # slots.
    unfrozen = list(range(m))
    while unfrozen:
        # Distance to the next event: a link reaching its limit or a
        # clique exhausting its remaining capacity.
        step = min(limits[i] - alloc[i] for i in unfrozen)
        for c in range(n_cliques):
            count = counts[c]
            if count:
                share = remaining[c] / count
                if share < step:
                    step = share
        if step < 0:
            step = 0.0

        for i in unfrozen:
            alloc[i] += step
        newly: list[int] = []
        for c in range(n_cliques):
            count = counts[c]
            if count == 0:
                continue
            remaining[c] -= step * count
            if remaining[c] <= _EPSILON:
                members = member_lists[c]
                for i in members:
                    if not frozen[i]:
                        newly.append(i)
        for i in unfrozen:
            if alloc[i] >= limits[i] - _EPSILON:
                newly.append(i)
        if not newly:
            # Nothing froze: every unfrozen link is unconstrained, which
            # can only happen if step was 0 for numerical reasons.
            break
        for i in newly:
            if not frozen[i]:
                frozen[i] = True
                for c in link_cliques[i]:
                    counts[c] -= 1
        unfrozen = [i for i in unfrozen if not frozen[i]]
    return alloc


def waterfill_links(
    demands: dict[Link, float],
    cliques: list[Clique],
    capacity: float,
    *,
    rate_caps: dict[Link, float] | None = None,
) -> dict[Link, float]:
    """Equal-share maxmin allocation of link rates under clique capacity.

    Args:
        demands: offered rate per *directed* link (only backlogged links).
        cliques: maximal contention cliques (over canonical links).
        capacity: packets/second a clique can serialize.
        rate_caps: optional hard per-link rate ceilings (used to model
            artificially slow links in experiments).

    Returns:
        Allocated rate per directed link; never exceeds the demand, the
        cap, or any clique's capacity.
    """
    rate_caps = rate_caps or {}
    active = [a_link for a_link, demand in demands.items() if demand > _EPSILON]
    if not active:
        return {}
    limits = [
        min(demands[a_link], rate_caps.get(a_link, math.inf)) for a_link in active
    ]
    # One linear pass over the clique members replaces the per-link
    # O(cliques) rescan; lookups canonicalize exactly as Clique's
    # membership test does, so the tuples are identical.
    positions = clique_index_positions(cliques)
    memberships = [
        positions.get((i, j) if i <= j else (j, i), ())
        for i, j in active
    ]
    rates = _waterfill_core(limits, memberships, capacity)
    return dict(zip(active, rates))


class FluidMac(MacLayer):
    """The fluid substrate.

    Args:
        sim: simulation kernel.
        topology: the wireless network.
        round_interval: seconds between allocation/transfer rounds.
        capacity_pps: packet exchanges per second a clique serializes;
            defaults to the PHY saturation rate for ``packet_bytes``
            payloads with three contenders (matching the paper's
            observed clique throughput).
        phy: PHY profile used for the capacity default.
        packet_bytes: payload size for the capacity default.
        rate_caps: optional per-directed-link rate ceilings.
        cliques: precomputed maximal contention cliques for
            ``topology`` (skips the enumeration when the caller — e.g.
            the scenario runner — already has them).
        alloc_cache: memoize demand→allocation solutions (bit-identical
            results; disable only to exercise the uncached path).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        round_interval: float = 0.02,
        capacity_pps: float | None = None,
        phy: PhyProfile = DEFAULT_PHY,
        packet_bytes: int = 1024,
        rate_caps: dict[Link, float] | None = None,
        cliques: list[Clique] | None = None,
        alloc_cache: bool = True,
    ) -> None:
        if round_interval <= 0:
            raise ConfigError(f"round interval must be positive: {round_interval}")
        self.sim = sim
        self.topology = topology
        self.round_interval = round_interval
        if capacity_pps is None:
            capacity_pps = phy.saturation_rate(packet_bytes, contenders=3)
        if capacity_pps <= 0:
            raise ConfigError(f"capacity must be positive: {capacity_pps}")
        self.capacity_pps = capacity_pps
        self.rate_caps = dict(rate_caps or {})
        if cliques is None:
            self._graph = ContentionGraph(topology)
            self._cliques = maximal_cliques(self._graph)
        else:
            self._cliques = list(cliques)
        self._services: dict[int, NodeServices] = {}
        self._sorted_nodes: list[int] = []
        self._credit: dict[Link, float] = {}
        self._occupancy: dict[int, dict[Link, float]] = {}
        self._busy: dict[int, float] = {}
        self._sensing_cache: dict[int, frozenset[int]] = {}
        self._started = False
        self.packets_transferred = 0
        # Fault-injection state.
        self._down: set[int] = set()
        self._fault_caps: dict[Link, float] = {}
        self._link_loss: dict[Link, float] = {}
        self._loss_rng = sim.rng.stream("fluid.loss")
        self.packets_lost = 0  # packets destroyed by injected link loss
        # Telemetry: resolved once so disabled runs pay one None check
        # per round; per-link instruments are cached on first use.
        self._tm = sim.telemetry if sim.telemetry.enabled else None
        self._rate_series: dict[Link, object] = {}
        self._active_links: set[Link] = set()
        # Incremental allocation machinery: per-link clique membership
        # (computed lazily per directed link), a demand→allocation memo,
        # and a dirty/idle pair that lets fully quiescent rounds return
        # immediately (see docs/PERFORMANCE.md for the exactness
        # argument).
        self._memberships: dict[Link, tuple[int, ...]] = {}
        self._alloc_cache_enabled = alloc_cache
        self._alloc_cache: dict[object, dict[Link, float]] = {}
        self.alloc_cache_hits = 0
        self.alloc_cache_misses = 0
        self.rounds_skipped = 0
        self._dirty = True
        self._idle = False
        if self._tm is not None:
            registry = self._tm.registry
            self._hit_counter = registry.counter("mac.alloc_cache_hits")
            self._miss_counter = registry.counter("mac.alloc_cache_misses")
            self._skip_counter = registry.counter("mac.rounds_skipped")
        else:
            self._hit_counter = None
            self._miss_counter = None
            self._skip_counter = None

    # --- MacLayer interface -----------------------------------------------------

    def attach_node(self, node_id: int, services: NodeServices) -> None:
        if node_id in self._services:
            raise MacError(f"node {node_id} already attached")
        if services.eligible_links is None or services.dequeue_for is None:
            raise MacError(
                "FluidMac requires NodeServices.eligible_links and "
                "dequeue_for (batch accessors)"
            )
        self.topology.node(node_id)
        self._services[node_id] = services
        self._sorted_nodes = sorted(self._services)
        self._occupancy[node_id] = {}
        self._busy[node_id] = 0.0
        self._dirty = True

    def start(self) -> None:
        if self._started:
            raise MacError("FluidMac already started")
        self._started = True
        # Pre-warm the per-link clique memberships for every directed
        # topology link so the per-round clamp test is a plain dict hit
        # (links a buffer reports outside the topology still fall back
        # to the lazy path in the solver).
        for node_id in self.topology.node_ids:
            for neighbor in self.topology.neighbors(node_id):
                self._memberships_for((node_id, neighbor))
        self.sim.every(self.round_interval, self._round, tag="fluid.round")

    def notify_backlog(self, node_id: int) -> None:
        # Rounds poll eligibility; just note that buffer state may have
        # changed so an idle-skipping round machinery wakes up.
        self._dirty = True

    def occupancy_snapshot(self, node_id: int) -> dict[Link, float]:
        try:
            return dict(self._occupancy[node_id])
        except KeyError:
            raise MacError(f"node {node_id} not attached") from None

    def reset_occupancy(self, node_id: int) -> None:
        try:
            self._occupancy[node_id].clear()
        except KeyError:
            raise MacError(f"node {node_id} not attached") from None

    def busy_snapshot(self, node_id: int) -> float:
        try:
            return self._busy[node_id]
        except KeyError:
            raise MacError(f"node {node_id} not attached") from None

    def reset_busy(self, node_id: int) -> None:
        try:
            self._busy[node_id] = 0.0
        except KeyError:
            raise MacError(f"node {node_id} not attached") from None

    # --- fault injection hooks ----------------------------------------------------

    def set_node_down(self, node_id: int, down: bool) -> list:
        """Gate a node out of (or back into) the allocation rounds.

        Links touching a down node carry nothing.  The fluid MAC holds
        no packets between rounds, so a crash loses nothing here;
        queued packets are the stack's to drain.
        """
        if node_id not in self._services:
            raise MacError(f"node {node_id} not attached")
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)
        self._dirty = True
        return []

    def set_link_loss(self, sender: int, receiver: int, rate: float) -> None:
        """Loss probability applied to each packet transferred on the
        directed link ``sender -> receiver``; 0 removes it."""
        if not 0.0 <= rate <= 1.0:
            raise MacError(f"loss rate must be in [0, 1]: {rate}")
        if rate == 0.0:
            self._link_loss.pop((sender, receiver), None)
        else:
            self._link_loss[(sender, receiver)] = rate
        self._dirty = True

    def set_link_capacity(self, sender: int, receiver: int, capacity: float | None) -> None:
        """Fault-injected rate ceiling on a directed link (packets per
        second); ``None`` restores the link's configured cap."""
        a_link = (sender, receiver)
        self._dirty = True
        if capacity is None:
            self._fault_caps.pop(a_link, None)
            return
        if capacity <= 0:
            raise MacError(f"link capacity must be positive: {capacity}")
        self._fault_caps[a_link] = capacity

    def packets_in_flight(self) -> list:
        """The fluid substrate holds no packets between rounds."""
        return []

    def _effective_caps(self) -> dict[Link, float]:
        if not self._fault_caps:
            return self.rate_caps
        caps = dict(self.rate_caps)
        for a_link, cap in self._fault_caps.items():
            caps[a_link] = min(cap, caps.get(a_link, math.inf))
        return caps

    # --- round machinery ------------------------------------------------------------

    def _memberships_for(self, a_link: Link) -> tuple[int, ...]:
        """Indices of the cliques containing ``a_link`` (lazily cached;
        the topology — hence the clique set — is fixed for a run)."""
        clique_ids = self._memberships.get(a_link)
        if clique_ids is None:
            clique_ids = tuple(
                index
                for index, clique in enumerate(self._cliques)
                if a_link in clique
            )
            self._memberships[a_link] = clique_ids
        return clique_ids

    def _allocate(self, demands: dict[Link, float]) -> dict[Link, float]:
        """Water-fill ``demands``, memoizing on the quantized demand
        vector and the effective caps.

        Demands of clique-member links are clamped at ``capacity_pps``
        before keying/solving: any demand at or above the clique
        capacity yields the identical allocation (the link's limit term
        can never undercut its clique's share term), so deep queues that
        only differ in backlog depth collapse onto one cache entry.
        Links outside every clique are never clamped — their limit is
        the only thing bounding them.
        """
        caps = self._effective_caps()
        capacity = self.capacity_pps
        # Memberships are pre-warmed for all topology links at start();
        # a link absent from the map is simply left unclamped, which
        # yields the same allocation (clamping is a pure cache-key
        # normalization) at worst costing one extra cache entry.
        memberships_map = self._memberships
        quantized = [
            (
                a_link,
                capacity
                if demand > capacity and memberships_map.get(a_link)
                else demand,
            )
            for a_link, demand in demands.items()
        ]
        return self._allocate_quantized(quantized)

    def _allocate_quantized(
        self, quantized: list[tuple[Link, float]]
    ) -> dict[Link, float]:
        """Solve (or recall) the allocation for an already-clamped
        ``(link, demand)`` vector — the round loop builds the vector
        inline while polling eligibility, so it lands here directly."""
        caps = self._effective_caps()
        capacity = self.capacity_pps
        if not self._alloc_cache_enabled:
            return waterfill_links(
                dict(quantized), self._cliques, capacity, rate_caps=caps
            )
        caps_key = tuple(sorted(caps.items())) if caps else ()
        key = (tuple(quantized), caps_key)
        cached = self._alloc_cache.get(key)
        if cached is not None:
            self.alloc_cache_hits += 1
            if self._hit_counter is not None:
                self._hit_counter.inc()
            return cached
        active: list[Link] = []
        limits: list[float] = []
        memberships: list[tuple[int, ...]] = []
        for a_link, demand in quantized:
            if demand > _EPSILON:
                active.append(a_link)
                limits.append(min(demand, caps.get(a_link, math.inf)))
                memberships.append(self._memberships_for(a_link))
        alloc = dict(zip(active, _waterfill_core(limits, memberships, capacity)))
        self.alloc_cache_misses += 1
        if self._miss_counter is not None:
            self._miss_counter.inc()
        if len(self._alloc_cache) >= _ALLOC_CACHE_LIMIT:
            self._alloc_cache.clear()
        self._alloc_cache[key] = alloc
        return alloc

    def _round(self) -> None:
        if self._idle and not self._dirty:
            # Nothing changed since a round that saw an empty network:
            # the allocation would be empty again; skip the node polls.
            self.rounds_skipped += 1
            if self._skip_counter is not None:
                self._skip_counter.inc()
            return
        self._dirty = False
        interval = self.round_interval
        down = self._down
        capacity = self.capacity_pps
        memberships_map = self._memberships
        # One fused pass: poll each node's eligibility and emit the
        # clamped (link, demand) vector the allocator keys on.  Nodes
        # report disjoint link sets (their own outgoing links), so the
        # list is duplicate-free in deterministic node order.
        quantized: list[tuple[Link, float]] = []
        append = quantized.append
        if down:
            for node_id in self._sorted_nodes:
                if node_id in down:
                    continue
                eligible = self._services[node_id].eligible_links()
                for a_link, count in eligible.items():
                    if count > 0 and a_link[1] not in down:
                        demand = count / interval
                        if demand > capacity and memberships_map.get(a_link):
                            demand = capacity
                        append((a_link, demand))
        else:
            for node_id in self._sorted_nodes:
                eligible = self._services[node_id].eligible_links()
                for a_link, count in eligible.items():
                    if count > 0:
                        demand = count / interval
                        if demand > capacity and memberships_map.get(a_link):
                            demand = capacity
                        append((a_link, demand))

        if quantized:
            self._idle = False
        else:
            # Safe to skip future rounds only when *no* buffer holds any
            # packet (eligible or not) — gates and backpressure cannot
            # conjure demand out of an empty network, and every way a
            # packet enters a buffer calls notify_backlog.
            self._idle = all(
                services.has_pending is not None and not services.has_pending()
                for services in self._services.values()
            )

        alloc = self._allocate_quantized(quantized)

        # Per-link packet budgets for this round (fractional credit
        # carries over between rounds).
        budgets: dict[Link, int] = {}
        credits = self._credit
        for a_link, rate in alloc.items():
            credit = credits.get(a_link, 0.0) + rate * interval
            whole = int(credit + _EPSILON)
            budgets[a_link] = whole
            credits[a_link] = credit - whole

        # Transfer in repeated passes until no link makes progress: a
        # downstream queue drained late in a pass can unblock an
        # upstream link's backpressure gate within the same round,
        # which mirrors the per-packet interleaving of the real MAC.
        # Links with a zero budget can never send this round, so only
        # the positive-budget links enter the passes (and the sent map);
        # a link drops out once its budget is exhausted.  Pass order
        # over the survivors is the same sorted order as before.
        services = self._services
        link_loss = self._link_loss
        pending = sorted(a_link for a_link, b in budgets.items() if b > 0)
        sent_per_link: dict[Link, int] = {a_link: 0 for a_link in pending}
        progress = True
        while progress and pending:
            progress = False
            survivors: list[Link] = []
            for a_link in pending:
                sender, receiver = a_link
                source = services[sender]
                sink = services.get(receiver)
                assert source.dequeue_for is not None
                packet = source.dequeue_for(receiver)
                if packet is None:
                    # Blocked (gated or empty) — may unblock in a later
                    # pass when a downstream queue drains.
                    survivors.append(a_link)
                    continue
                loss = link_loss.get(a_link)
                if loss is not None and float(self._loss_rng.random()) < loss:
                    # The exchange consumed airtime but the packet is
                    # destroyed; report it as a MAC drop so packet
                    # conservation still balances.
                    self.packets_lost += 1
                    source.on_packet_dropped(packet, receiver)
                elif sink is not None:
                    sink.on_data_received(packet, sender)
                sent = sent_per_link[a_link] + 1
                sent_per_link[a_link] = sent
                progress = True
                if sent < budgets[a_link]:
                    survivors.append(a_link)
            pending = survivors

        for a_link, sent in sent_per_link.items():
            if not sent:
                # Unused whole-packet budget is discarded (airtime
                # cannot be banked across a blocked round).
                continue
            self.packets_transferred += sent
            airtime = sent / self.capacity_pps
            sender, receiver = a_link
            node_occ = self._occupancy[sender]
            node_occ[a_link] = node_occ.get(a_link, 0.0) + airtime
            if receiver in self._occupancy:
                # Receiver-side accumulator stays zero (the sender holds
                # the full exchange airtime); create the key so
                # snapshots list the link.
                self._occupancy[receiver].setdefault(a_link, 0.0)
            # Busy-time attribution: every node sensing the sender (or
            # the sender itself) perceives the channel busy for the
            # exchange's airtime.
            sensing = self._sensing_cache.get(sender)
            if sensing is None:
                sensing = self.topology.sensing_nodes(sender) | {sender}
                self._sensing_cache[sender] = sensing
            for node_id in sensing:
                if node_id in self._busy:
                    self._busy[node_id] += airtime

        if self._tm is not None:
            self._record_round(alloc, sent_per_link)

    def _record_round(
        self, alloc: dict[Link, float], sent_per_link: dict[Link, int]
    ) -> None:
        """Record per-link telemetry after a round (enabled runs only)."""
        assert self._tm is not None
        now = self.sim.now
        registry = self._tm.registry

        def series_for(a_link: Link):
            series = self._rate_series.get(a_link)
            if series is None:
                series = registry.series(
                    "mac.link_rate", link=f"{a_link[0]}->{a_link[1]}"
                )
                self._rate_series[a_link] = series
            return series

        for a_link, rate in alloc.items():
            series_for(a_link).record_changed(now, rate)
        # A link that fell out of the allocation has rate 0 now; record
        # the drop so the trajectory does not hold its last value.
        for a_link in sorted(self._active_links - set(alloc)):
            series_for(a_link).record_changed(now, 0.0)
        self._active_links = set(alloc)

        for a_link, sent in sent_per_link.items():
            if not sent:
                continue
            label = f"{a_link[0]}->{a_link[1]}"
            registry.counter("mac.transfers", link=label).inc(sent)
            registry.counter("mac.airtime_seconds", link=label).inc(
                sent / self.capacity_pps
            )
