"""Fluid MAC: deterministic clique-capacity sharing.

A fast substitute for the packet-level DCF.  Time advances in fixed
rounds; in each round every *backlogged* directed link receives a rate
by equal-share water-filling subject to the constraint that the links
of each contention clique jointly serialize on one channel of
``capacity_pps`` packet exchanges per second — the idealization of DCF
the paper itself uses ("IEEE 802.11 DCF allocates channel capacity
equally between the two links", §4.1).

The model preserves what the upper layers care about: backpressure
dynamics (transfers stop when the downstream queue refuses packets),
per-link channel occupancy, and clique saturation.  It deliberately
omits collisions, hidden-terminal asymmetry, and EIFS effects — use
:class:`~repro.mac.dcf.DcfMac` to observe those.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError, MacError
from repro.mac.base import MacLayer, NodeServices
from repro.mac.phy import DEFAULT_PHY, PhyProfile
from repro.sim.kernel import Simulator
from repro.topology.cliques import Clique, maximal_cliques
from repro.topology.contention import ContentionGraph
from repro.topology.network import Link, Topology

_EPSILON = 1e-9


def waterfill_links(
    demands: dict[Link, float],
    cliques: list[Clique],
    capacity: float,
    *,
    rate_caps: dict[Link, float] | None = None,
) -> dict[Link, float]:
    """Equal-share maxmin allocation of link rates under clique capacity.

    Args:
        demands: offered rate per *directed* link (only backlogged links).
        cliques: maximal contention cliques (over canonical links).
        capacity: packets/second a clique can serialize.
        rate_caps: optional hard per-link rate ceilings (used to model
            artificially slow links in experiments).

    Returns:
        Allocated rate per directed link; never exceeds the demand, the
        cap, or any clique's capacity.
    """
    rate_caps = rate_caps or {}
    active = [a_link for a_link, demand in demands.items() if demand > _EPSILON]
    alloc = {a_link: 0.0 for a_link in active}
    if not active:
        return alloc

    limit = {
        a_link: min(demands[a_link], rate_caps.get(a_link, math.inf))
        for a_link in active
    }
    members: dict[int, list[Link]] = {}
    remaining: dict[int, float] = {}
    for index, clique in enumerate(cliques):
        inside = [a_link for a_link in active if a_link in clique]
        if inside:
            members[index] = inside
            remaining[index] = capacity

    unfrozen = set(active)
    while unfrozen:
        # Distance to the next event: a link reaching its limit or a
        # clique exhausting its remaining capacity.
        step = min(limit[a_link] - alloc[a_link] for a_link in unfrozen)
        for index, inside in members.items():
            count = sum(1 for a_link in inside if a_link in unfrozen)
            if count:
                step = min(step, remaining[index] / count)
        if step < 0:
            step = 0.0

        for a_link in unfrozen:
            alloc[a_link] += step
        saturated_links: set[Link] = set()
        for index, inside in members.items():
            count = sum(1 for a_link in inside if a_link in unfrozen)
            if count == 0:
                continue
            remaining[index] -= step * count
            if remaining[index] <= _EPSILON:
                saturated_links.update(
                    a_link for a_link in inside if a_link in unfrozen
                )
        for a_link in list(unfrozen):
            if alloc[a_link] >= limit[a_link] - _EPSILON:
                saturated_links.add(a_link)
        if not saturated_links:
            # Nothing froze: every unfrozen link is unconstrained, which
            # can only happen if step was 0 for numerical reasons.
            break
        unfrozen -= saturated_links
    return alloc


class FluidMac(MacLayer):
    """The fluid substrate.

    Args:
        sim: simulation kernel.
        topology: the wireless network.
        round_interval: seconds between allocation/transfer rounds.
        capacity_pps: packet exchanges per second a clique serializes;
            defaults to the PHY saturation rate for ``packet_bytes``
            payloads with three contenders (matching the paper's
            observed clique throughput).
        phy: PHY profile used for the capacity default.
        packet_bytes: payload size for the capacity default.
        rate_caps: optional per-directed-link rate ceilings.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        round_interval: float = 0.02,
        capacity_pps: float | None = None,
        phy: PhyProfile = DEFAULT_PHY,
        packet_bytes: int = 1024,
        rate_caps: dict[Link, float] | None = None,
    ) -> None:
        if round_interval <= 0:
            raise ConfigError(f"round interval must be positive: {round_interval}")
        self.sim = sim
        self.topology = topology
        self.round_interval = round_interval
        if capacity_pps is None:
            capacity_pps = phy.saturation_rate(packet_bytes, contenders=3)
        if capacity_pps <= 0:
            raise ConfigError(f"capacity must be positive: {capacity_pps}")
        self.capacity_pps = capacity_pps
        self.rate_caps = dict(rate_caps or {})
        self._graph = ContentionGraph(topology)
        self._cliques = maximal_cliques(self._graph)
        self._services: dict[int, NodeServices] = {}
        self._credit: dict[Link, float] = {}
        self._occupancy: dict[int, dict[Link, float]] = {}
        self._busy: dict[int, float] = {}
        self._sensing_cache: dict[int, frozenset[int]] = {}
        self._started = False
        self.packets_transferred = 0
        # Fault-injection state.
        self._down: set[int] = set()
        self._fault_caps: dict[Link, float] = {}
        self._link_loss: dict[Link, float] = {}
        self._loss_rng = sim.rng.stream("fluid.loss")
        self.packets_lost = 0  # packets destroyed by injected link loss
        # Telemetry: resolved once so disabled runs pay one None check
        # per round; per-link instruments are cached on first use.
        self._tm = sim.telemetry if sim.telemetry.enabled else None
        self._rate_series: dict[Link, object] = {}
        self._active_links: set[Link] = set()

    # --- MacLayer interface -----------------------------------------------------

    def attach_node(self, node_id: int, services: NodeServices) -> None:
        if node_id in self._services:
            raise MacError(f"node {node_id} already attached")
        if services.eligible_links is None or services.dequeue_for is None:
            raise MacError(
                "FluidMac requires NodeServices.eligible_links and "
                "dequeue_for (batch accessors)"
            )
        self.topology.node(node_id)
        self._services[node_id] = services
        self._occupancy[node_id] = {}
        self._busy[node_id] = 0.0

    def start(self) -> None:
        if self._started:
            raise MacError("FluidMac already started")
        self._started = True
        self.sim.every(self.round_interval, self._round, tag="fluid.round")

    def notify_backlog(self, node_id: int) -> None:
        # Rounds poll eligibility; nothing to do eagerly.
        pass

    def occupancy_snapshot(self, node_id: int) -> dict[Link, float]:
        try:
            return dict(self._occupancy[node_id])
        except KeyError:
            raise MacError(f"node {node_id} not attached") from None

    def reset_occupancy(self, node_id: int) -> None:
        try:
            self._occupancy[node_id].clear()
        except KeyError:
            raise MacError(f"node {node_id} not attached") from None

    def busy_snapshot(self, node_id: int) -> float:
        try:
            return self._busy[node_id]
        except KeyError:
            raise MacError(f"node {node_id} not attached") from None

    def reset_busy(self, node_id: int) -> None:
        try:
            self._busy[node_id] = 0.0
        except KeyError:
            raise MacError(f"node {node_id} not attached") from None

    # --- fault injection hooks ----------------------------------------------------

    def set_node_down(self, node_id: int, down: bool) -> list:
        """Gate a node out of (or back into) the allocation rounds.

        Links touching a down node carry nothing.  The fluid MAC holds
        no packets between rounds, so a crash loses nothing here;
        queued packets are the stack's to drain.
        """
        if node_id not in self._services:
            raise MacError(f"node {node_id} not attached")
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)
        return []

    def set_link_loss(self, sender: int, receiver: int, rate: float) -> None:
        """Loss probability applied to each packet transferred on the
        directed link ``sender -> receiver``; 0 removes it."""
        if not 0.0 <= rate <= 1.0:
            raise MacError(f"loss rate must be in [0, 1]: {rate}")
        if rate == 0.0:
            self._link_loss.pop((sender, receiver), None)
        else:
            self._link_loss[(sender, receiver)] = rate

    def set_link_capacity(self, sender: int, receiver: int, capacity: float | None) -> None:
        """Fault-injected rate ceiling on a directed link (packets per
        second); ``None`` restores the link's configured cap."""
        a_link = (sender, receiver)
        if capacity is None:
            self._fault_caps.pop(a_link, None)
            return
        if capacity <= 0:
            raise MacError(f"link capacity must be positive: {capacity}")
        self._fault_caps[a_link] = capacity

    def packets_in_flight(self) -> list:
        """The fluid substrate holds no packets between rounds."""
        return []

    def _effective_caps(self) -> dict[Link, float]:
        if not self._fault_caps:
            return self.rate_caps
        caps = dict(self.rate_caps)
        for a_link, cap in self._fault_caps.items():
            caps[a_link] = min(cap, caps.get(a_link, math.inf))
        return caps

    # --- round machinery ------------------------------------------------------------

    def _round(self) -> None:
        interval = self.round_interval
        demands: dict[Link, float] = {}
        for node_id in sorted(self._services):
            if node_id in self._down:
                continue
            eligible = self._services[node_id].eligible_links()
            for a_link, count in eligible.items():
                if count > 0 and a_link[1] not in self._down:
                    demands[a_link] = count / interval

        alloc = waterfill_links(
            demands, self._cliques, self.capacity_pps, rate_caps=self._effective_caps()
        )

        # Per-link packet budgets for this round (fractional credit
        # carries over between rounds).
        budgets: dict[Link, int] = {}
        for a_link, rate in alloc.items():
            credit = self._credit.get(a_link, 0.0) + rate * interval
            budgets[a_link] = int(credit + _EPSILON)
            self._credit[a_link] = credit - budgets[a_link]

        # Transfer in repeated passes until no link makes progress: a
        # downstream queue drained late in a pass can unblock an
        # upstream link's backpressure gate within the same round,
        # which mirrors the per-packet interleaving of the real MAC.
        sent_per_link: dict[Link, int] = {a_link: 0 for a_link in budgets}
        progress = True
        while progress:
            progress = False
            for a_link in sorted(budgets):
                if sent_per_link[a_link] >= budgets[a_link]:
                    continue
                sender, receiver = a_link
                source = self._services[sender]
                sink = self._services.get(receiver)
                assert source.dequeue_for is not None
                packet = source.dequeue_for(receiver)
                if packet is None:
                    continue
                loss = self._link_loss.get(a_link)
                if loss is not None and float(self._loss_rng.random()) < loss:
                    # The exchange consumed airtime but the packet is
                    # destroyed; report it as a MAC drop so packet
                    # conservation still balances.
                    self.packets_lost += 1
                    source.on_packet_dropped(packet, receiver)
                elif sink is not None:
                    sink.on_data_received(packet, sender)
                sent_per_link[a_link] += 1
                progress = True

        for a_link, sent in sent_per_link.items():
            if not sent:
                # Unused whole-packet budget is discarded (airtime
                # cannot be banked across a blocked round).
                continue
            self.packets_transferred += sent
            airtime = sent / self.capacity_pps
            sender, receiver = a_link
            node_occ = self._occupancy[sender]
            node_occ[a_link] = node_occ.get(a_link, 0.0) + airtime
            if receiver in self._occupancy:
                # Receiver-side accumulator stays zero (the sender holds
                # the full exchange airtime); create the key so
                # snapshots list the link.
                self._occupancy[receiver].setdefault(a_link, 0.0)
            # Busy-time attribution: every node sensing the sender (or
            # the sender itself) perceives the channel busy for the
            # exchange's airtime.
            sensing = self._sensing_cache.get(sender)
            if sensing is None:
                sensing = self.topology.sensing_nodes(sender) | {sender}
                self._sensing_cache[sender] = sensing
            for node_id in sensing:
                if node_id in self._busy:
                    self._busy[node_id] += airtime

        if self._tm is not None:
            self._record_round(alloc, sent_per_link)

    def _record_round(
        self, alloc: dict[Link, float], sent_per_link: dict[Link, int]
    ) -> None:
        """Record per-link telemetry after a round (enabled runs only)."""
        assert self._tm is not None
        now = self.sim.now
        registry = self._tm.registry

        def series_for(a_link: Link):
            series = self._rate_series.get(a_link)
            if series is None:
                series = registry.series(
                    "mac.link_rate", link=f"{a_link[0]}->{a_link[1]}"
                )
                self._rate_series[a_link] = series
            return series

        for a_link, rate in alloc.items():
            series_for(a_link).record_changed(now, rate)
        # A link that fell out of the allocation has rate 0 now; record
        # the drop so the trajectory does not hold its last value.
        for a_link in sorted(self._active_links - set(alloc)):
            series_for(a_link).record_changed(now, 0.0)
        self._active_links = set(alloc)

        for a_link, sent in sent_per_link.items():
            if not sent:
                continue
            label = f"{a_link[0]}->{a_link[1]}"
            registry.counter("mac.transfers", link=label).inc(sent)
            registry.counter("mac.airtime_seconds", link=label).inc(
                sent / self.capacity_pps
            )
