"""Packet-level IEEE 802.11 DCF.

Implements the distributed coordination function per node:

* physical carrier sense (channel busy within ``cs_range``) and
  virtual carrier sense (NAV from decoded RTS/CTS/DATA);
* DIFS/EIFS deferral — EIFS after any sensed frame that could not be
  decoded, the mechanism behind the chain-topology unfairness the
  paper's Table 3 shows for plain 802.11;
* slotted binary exponential backoff, frozen while the medium is
  busy and resumed after a fresh DIFS;
* RTS/CTS/DATA/ACK exchanges with retry limits and CW doubling;
* best-effort control broadcasts (no RTS/ACK), used when in-band
  dissemination is enabled.

The MAC holds at most one packet; it *pulls* from the upper layer via
``NodeServices.dequeue`` whenever its transmitter frees up, so all
queueing policy (per-destination queues, backpressure gating, tail
overwrite) lives above the MAC.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.errors import MacError
from repro.flows.packet import Packet
from repro.mac.base import MacLayer, NodeServices
from repro.mac.channel import Channel
from repro.mac.frames import Frame, FrameKind
from repro.mac.phy import DEFAULT_PHY, PhyProfile
from repro.sim.kernel import Simulator
from repro.topology.network import Link, Topology


@dataclass(frozen=True)
class DcfConfig:
    """Tunables of the DCF implementation.

    Attributes:
        use_eifs: defer EIFS after sensed-but-undecodable frames
            (standard behavior; switchable for ablation studies).
        timeout_slack_slots: extra slots added to CTS/ACK timeouts.
        broadcast_bytes: payload size charged for control broadcasts.
    """

    use_eifs: bool = True
    timeout_slack_slots: int = 2
    broadcast_bytes: int = 64


class _State(enum.Enum):
    IDLE = "idle"
    DEFER = "defer"
    BACKOFF = "backoff"
    TX_RTS = "tx_rts"
    WAIT_CTS = "wait_cts"
    TX_DATA = "tx_data"
    WAIT_ACK = "wait_ack"
    TX_CTS = "tx_cts"
    TX_ACK = "tx_ack"
    TX_BCAST = "tx_bcast"
    SIFS_WAIT = "sifs_wait"


class _DcfNode:
    """DCF state machine of a single node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        channel: Channel,
        phy: PhyProfile,
        config: DcfConfig,
        services: NodeServices,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.channel = channel
        self.phy = phy
        self.config = config
        self.services = services
        self._rng = sim.rng.stream(f"mac.dcf.{node_id}")

        self._state = _State.IDLE
        self._busy = 0  # sensed transmissions in progress
        self._nav_until = 0.0
        self._use_eifs = False
        self.down = False  # crashed by fault injection

        self._current: tuple[Packet, int] | None = None
        self._retries = 0
        self._cw = phy.cw_min
        self._backoff_slots: int | None = None
        self._backoff_started = 0.0

        self._pending_frame: Frame | None = None
        self._pending_state: _State | None = None
        self._response_peer: int | None = None

        self._bcast_queue: deque[object] = deque()

        self._defer_timer = sim.timer(self._on_defer_done, tag=f"dcf.defer.{node_id}")
        self._backoff_timer = sim.timer(
            self._on_backoff_done, tag=f"dcf.backoff.{node_id}"
        )
        self._sifs_timer = sim.timer(self._on_sifs_done, tag=f"dcf.sifs.{node_id}")
        self._cts_timer = sim.timer(self._on_cts_timeout, tag=f"dcf.ctsto.{node_id}")
        self._ack_timer = sim.timer(self._on_ack_timeout, tag=f"dcf.ackto.{node_id}")
        self._nav_timer = sim.timer(self._on_nav_expired, tag=f"dcf.nav.{node_id}")
        self._nav_reset_timer = sim.timer(
            self._on_nav_reset_check, tag=f"dcf.navreset.{node_id}"
        )
        self._last_busy_start = -1.0

        # Telemetry: resolved once at construction so the hot paths pay
        # a single None check when the subsystem is disabled.
        self._tm = sim.telemetry if sim.telemetry.enabled else None
        self._airtime_counters: dict[Link, object] = {}

        # Measurement accumulators and statistics.
        self.occupancy: dict[Link, float] = {}
        self.busy_accum = 0.0
        self._busy_since: float | None = None
        self.data_sent = 0
        self.data_received = 0
        self.drops = 0
        self.rts_attempts = 0

    # --- helpers ----------------------------------------------------------------

    def _medium_idle(self) -> bool:
        return (
            self._busy == 0
            and not self.channel.is_transmitting(self.node_id)
            and self.sim.now >= self._nav_until
        )

    def _add_occupancy(self, a_link: Link, duration: float) -> None:
        self.occupancy[a_link] = self.occupancy.get(a_link, 0.0) + duration
        if self._tm is not None:
            counter = self._airtime_counters.get(a_link)
            if counter is None:
                counter = self._tm.registry.counter(
                    "mac.airtime_seconds", link=f"{a_link[0]}->{a_link[1]}"
                )
                self._airtime_counters[a_link] = counter
            counter.inc(duration)

    def _update_busy_meter(self) -> None:
        """Track time with perceivable channel activity (sensed energy
        or own transmission)."""
        busy_now = self._busy > 0 or self.channel.is_transmitting(self.node_id)
        if busy_now and self._busy_since is None:
            self._busy_since = self.sim.now
        elif not busy_now and self._busy_since is not None:
            self.busy_accum += self.sim.now - self._busy_since
            self._busy_since = None

    def busy_seconds(self) -> float:
        """Accumulated busy time since the last reset."""
        if self._busy_since is not None:
            return self.busy_accum + (self.sim.now - self._busy_since)
        return self.busy_accum

    def reset_busy_meter(self) -> None:
        """Start a new busy-time accumulation window."""
        self.busy_accum = 0.0
        if self._busy_since is not None:
            self._busy_since = self.sim.now

    def _trace(self, category: str, **fields) -> None:
        if self.sim.trace.wants(category):
            self.sim.trace.emit(self.sim.now, category, node=self.node_id, **fields)

    # --- channel access -------------------------------------------------------------

    def attempt_access(self) -> None:
        """Start contending if idle and something is ready to send."""
        if self.down or self._state is not _State.IDLE:
            return
        if self._current is None and not self._bcast_queue:
            self._current = self.services.dequeue()
            if self._current is not None:
                self._retries = 0
        if self._current is None and not self._bcast_queue:
            return
        if not self._medium_idle():
            return
        ifs = self.phy.eifs if (self._use_eifs and self.config.use_eifs) else self.phy.difs
        self._state = _State.DEFER
        self._defer_timer.start(ifs)

    def _on_defer_done(self) -> None:
        if self._state is not _State.DEFER:
            return  # stale timer: contention was abandoned meanwhile
        if self._backoff_slots is None:
            self._backoff_slots = int(self._rng.integers(0, self._cw + 1))
        if self._backoff_slots == 0:
            self._backoff_slots = None
            self._transmit_current()
            return
        self._state = _State.BACKOFF
        self._backoff_started = self.sim.now
        self._backoff_timer.start(self._backoff_slots * self.phy.slot_time)

    def _on_backoff_done(self) -> None:
        if self._state is not _State.BACKOFF:
            return  # stale timer: contention was abandoned meanwhile
        self._backoff_slots = None
        self._transmit_current()

    def _interrupt_contention(self) -> None:
        """Freeze DEFER/BACKOFF when the medium turns busy."""
        if self._state is _State.DEFER:
            self._defer_timer.cancel()
            self._state = _State.IDLE
        elif self._state is _State.BACKOFF:
            elapsed = self.sim.now - self._backoff_started
            completed = int(elapsed / self.phy.slot_time + 1e-9)
            assert self._backoff_slots is not None
            self._backoff_slots = max(0, self._backoff_slots - completed)
            self._backoff_timer.cancel()
            self._state = _State.IDLE
            if self._tm is not None:
                self._tm.registry.counter(
                    "mac.backoff_stalls", node=self.node_id
                ).inc()

    def _transmit_current(self) -> None:
        if self._bcast_queue:
            payload = self._bcast_queue.popleft()
            frame = Frame(
                kind=FrameKind.BROADCAST,
                sender=self.node_id,
                receiver=None,
                duration=self.phy.data_duration(self.config.broadcast_bytes),
                payload=payload,
                piggyback=self.services.make_piggyback(),
            )
            self._state = _State.TX_BCAST
            self.channel.transmit(self.node_id, frame)
            self._update_busy_meter()
            return

        assert self._current is not None
        packet, next_hop = self._current
        data_duration = self.phy.data_duration(packet.size_bytes)
        nav = (
            self.phy.cts_duration
            + data_duration
            + self.phy.ack_duration
            + 3 * self.phy.sifs
        )
        frame = Frame(
            kind=FrameKind.RTS,
            sender=self.node_id,
            receiver=next_hop,
            duration=self.phy.rts_duration,
            nav=nav,
            piggyback=self.services.make_piggyback(),
        )
        self._state = _State.TX_RTS
        self.rts_attempts += 1
        self.channel.transmit(self.node_id, frame)
        self._update_busy_meter()

    # --- channel callbacks (Radio protocol) ------------------------------------------

    def on_busy_start(self) -> None:
        self._busy += 1
        self._last_busy_start = self.sim.now
        self._update_busy_meter()
        self._interrupt_contention()

    def on_busy_end(self) -> None:
        if self._busy <= 0:
            raise MacError(f"node {self.node_id}: unbalanced busy_end")
        self._busy -= 1
        self._update_busy_meter()
        if self._busy == 0:
            self.attempt_access()

    def on_frame_corrupted(self) -> None:
        if self.down:
            return
        self._use_eifs = True
        if self._tm is not None:
            self._tm.registry.counter(
                "mac.corrupted_frames", node=self.node_id
            ).inc()

    def on_frame_received(self, frame: Frame) -> None:
        if self.down:
            return
        self._use_eifs = False
        self.services.on_overhear(frame.sender, dict(frame.piggyback))

        if frame.is_broadcast:
            self.services.on_broadcast_received(frame.payload, frame.sender)
            return
        if not frame.addressed_to(self.node_id):
            if frame.nav > 0:
                self._set_nav(self.sim.now + frame.nav)
                if frame.kind is FrameKind.RTS:
                    # Standard NAV-reset rule: if the medium stays idle
                    # past the point where the answering CTS should
                    # have appeared, the overheard RTS failed and its
                    # reservation is cancelled.
                    self._nav_reset_timer.start(
                        2 * self.phy.sifs
                        + self.phy.cts_duration
                        + 2 * self.phy.slot_time
                    )
            return

        if frame.kind is FrameKind.RTS:
            self._handle_rts(frame)
        elif frame.kind is FrameKind.CTS:
            self._handle_cts(frame)
        elif frame.kind is FrameKind.DATA:
            self._handle_data(frame)
        elif frame.kind is FrameKind.ACK:
            self._handle_ack(frame)

    def on_tx_end(self, frame: Frame) -> None:
        if self.down:
            return  # aborted ghost frames produce no completion
        self._update_busy_meter()
        if frame.kind is FrameKind.RTS:
            self._add_occupancy((self.node_id, frame.receiver), frame.duration)
            self._state = _State.WAIT_CTS
            timeout = (
                self.phy.sifs
                + self.phy.cts_duration
                + self.config.timeout_slack_slots * self.phy.slot_time
            )
            self._cts_timer.start(timeout)
        elif frame.kind is FrameKind.DATA:
            self._add_occupancy((self.node_id, frame.receiver), frame.duration)
            self._state = _State.WAIT_ACK
            timeout = (
                self.phy.sifs
                + self.phy.ack_duration
                + self.config.timeout_slack_slots * self.phy.slot_time
            )
            self._ack_timer.start(timeout)
        elif frame.kind is FrameKind.CTS:
            assert self._response_peer is not None
            self._add_occupancy((self._response_peer, self.node_id), frame.duration)
            self._response_peer = None
            self._state = _State.IDLE
            self.attempt_access()
        elif frame.kind is FrameKind.ACK:
            assert self._response_peer is not None
            self._add_occupancy((self._response_peer, self.node_id), frame.duration)
            self._response_peer = None
            self._state = _State.IDLE
            self.attempt_access()
        elif frame.kind is FrameKind.BROADCAST:
            self._state = _State.IDLE
            self.attempt_access()

    # --- frame handlers ----------------------------------------------------------

    def _handle_rts(self, frame: Frame) -> None:
        if self._state not in (_State.IDLE, _State.DEFER, _State.BACKOFF):
            return
        if self.sim.now < self._nav_until:
            return  # virtual carrier sense forbids responding
        self._interrupt_contention()
        cts_nav = max(0.0, frame.nav - self.phy.sifs - self.phy.cts_duration)
        cts = Frame(
            kind=FrameKind.CTS,
            sender=self.node_id,
            receiver=frame.sender,
            duration=self.phy.cts_duration,
            nav=cts_nav,
            piggyback=self.services.make_piggyback(),
        )
        self._response_peer = frame.sender
        self._schedule_after_sifs(cts, _State.TX_CTS)

    def _handle_cts(self, frame: Frame) -> None:
        if self._state is not _State.WAIT_CTS or self._current is None:
            return
        packet, next_hop = self._current
        if frame.sender != next_hop:
            return
        self._cts_timer.cancel()
        data_duration = self.phy.data_duration(packet.size_bytes)
        data = Frame(
            kind=FrameKind.DATA,
            sender=self.node_id,
            receiver=next_hop,
            duration=data_duration,
            nav=self.phy.sifs + self.phy.ack_duration,
            packet=packet,
            piggyback=self.services.make_piggyback(),
        )
        self._schedule_after_sifs(data, _State.TX_DATA)

    def _handle_data(self, frame: Frame) -> None:
        if self._state not in (_State.IDLE, _State.DEFER, _State.BACKOFF):
            return
        self._interrupt_contention()
        assert frame.packet is not None
        self.data_received += 1
        # Commit to the response before delivering: the delivery callback
        # may re-enter attempt_access, which must not start contending.
        self._state = _State.SIFS_WAIT
        self.services.on_data_received(frame.packet, frame.sender)
        # Built after delivery so the piggybacked buffer state reflects
        # the packet that just arrived (paper §2.2: the ACK immediately
        # informs neighbors of the new buffer state).
        ack = Frame(
            kind=FrameKind.ACK,
            sender=self.node_id,
            receiver=frame.sender,
            duration=self.phy.ack_duration,
            piggyback=self.services.make_piggyback(),
        )
        self._response_peer = frame.sender
        self._schedule_after_sifs(ack, _State.TX_ACK)

    def _handle_ack(self, frame: Frame) -> None:
        if self._state is not _State.WAIT_ACK:
            return
        self._ack_timer.cancel()
        self.data_sent += 1
        self._complete_exchange()

    # --- SIFS-spaced responses ---------------------------------------------------

    def _schedule_after_sifs(self, frame: Frame, next_state: _State) -> None:
        # Abandon any contention in progress: delivery callbacks between
        # the interrupt and this point may have re-armed a defer timer.
        self._interrupt_contention()
        self._defer_timer.cancel()
        self._backoff_timer.cancel()
        self._pending_frame = frame
        self._pending_state = next_state
        self._state = _State.SIFS_WAIT
        self._sifs_timer.start(self.phy.sifs)

    def _on_sifs_done(self) -> None:
        assert self._pending_frame is not None and self._pending_state is not None
        frame = self._pending_frame
        next_state = self._pending_state
        self._pending_frame = None
        self._pending_state = None
        self._state = next_state
        self.channel.transmit(self.node_id, frame)
        self._update_busy_meter()

    # --- timeouts and completion ------------------------------------------------------

    def _on_cts_timeout(self) -> None:
        if self._state is not _State.WAIT_CTS:
            return
        self._retries += 1
        if self._tm is not None:
            self._tm.registry.counter(
                "mac.retries", node=self.node_id, kind="cts_timeout"
            ).inc()
        if self._retries > self.phy.short_retry_limit:
            self._drop_current()
        else:
            self._cw = self.phy.cw_after_retries(self._retries)
            self._backoff_slots = None
            self._state = _State.IDLE
            self.attempt_access()

    def _on_ack_timeout(self) -> None:
        if self._state is not _State.WAIT_ACK:
            return
        self._retries += 1
        if self._tm is not None:
            self._tm.registry.counter(
                "mac.retries", node=self.node_id, kind="ack_timeout"
            ).inc()
        if self._retries > self.phy.short_retry_limit:
            self._drop_current()
        else:
            self._cw = self.phy.cw_after_retries(self._retries)
            self._backoff_slots = None
            self._state = _State.IDLE
            self.attempt_access()

    def _drop_current(self) -> None:
        assert self._current is not None
        packet, next_hop = self._current
        self.drops += 1
        if self._tm is not None:
            self._tm.registry.counter("mac.drops", node=self.node_id).inc()
            self._tm.event(
                self.sim.now,
                "mac.drop",
                node=self.node_id,
                flow=packet.flow_id,
                next_hop=next_hop,
            )
        self._trace("mac.drop", flow=packet.flow_id, next_hop=next_hop)
        self.services.on_packet_dropped(packet, next_hop)
        self._complete_exchange()

    def _complete_exchange(self) -> None:
        self._current = None
        self._retries = 0
        self._cw = self.phy.cw_min
        self._backoff_slots = None
        self._state = _State.IDLE
        self.attempt_access()

    # --- NAV ----------------------------------------------------------------------

    def _set_nav(self, until: float) -> None:
        if until > self._nav_until:
            self._nav_until = until
            self._nav_timer.start(until - self.sim.now)
        self._interrupt_contention()

    def _on_nav_expired(self) -> None:
        self.attempt_access()

    def _on_nav_reset_check(self) -> None:
        window = (
            2 * self.phy.sifs + self.phy.cts_duration + 2 * self.phy.slot_time
        )
        heard_since = self._last_busy_start >= self.sim.now - window
        if not heard_since and self._busy == 0 and self._nav_until > self.sim.now:
            self._nav_until = self.sim.now
            self._nav_timer.cancel()
            self.attempt_access()

    # --- upper-layer API -----------------------------------------------------------

    def queue_broadcast(self, payload: object) -> None:
        """Enqueue a control broadcast (sent before data packets)."""
        self._bcast_queue.append(payload)
        self.attempt_access()

    # --- fault injection ------------------------------------------------------------

    def crash(self) -> list[Packet]:
        """Power off the state machine; returns the packets it loses.

        The sensed-energy counter (``_busy``) is deliberately left
        alone: the channel keeps delivering busy start/end pairs to a
        down radio so the counter is balanced when the node recovers.
        """
        self.down = True
        self.channel.abort_transmissions(self.node_id)
        for timer in (
            self._defer_timer,
            self._backoff_timer,
            self._sifs_timer,
            self._cts_timer,
            self._ack_timer,
            self._nav_timer,
            self._nav_reset_timer,
        ):
            timer.cancel()
        lost: list[Packet] = []
        if self._current is not None:
            # A pending DATA frame carries this same packet object, so
            # only the held exchange is counted once.
            lost.append(self._current[0])
            self._current = None
        self._pending_frame = None
        self._pending_state = None
        self._response_peer = None
        self._bcast_queue.clear()
        self._retries = 0
        self._cw = self.phy.cw_min
        self._backoff_slots = None
        self._state = _State.IDLE
        self._update_busy_meter()
        return lost

    def recover(self) -> None:
        """Bring a crashed node back with a fresh state machine."""
        if not self.down:
            raise MacError(f"node {self.node_id} is not down")
        self.down = False
        self._state = _State.IDLE
        self._use_eifs = False
        self._nav_until = self.sim.now
        self._update_busy_meter()
        self.attempt_access()

    def held_packet(self) -> Packet | None:
        """The packet currently owned by the MAC exchange, if any."""
        return self._current[0] if self._current is not None else None


class DcfMac(MacLayer):
    """The DCF substrate: one :class:`_DcfNode` per attached node over
    a shared :class:`~repro.mac.channel.Channel`."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        phy: PhyProfile = DEFAULT_PHY,
        config: DcfConfig | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.phy = phy
        self.config = config or DcfConfig()
        self.channel = Channel(sim, topology)
        self._nodes: dict[int, _DcfNode] = {}

    def attach_node(self, node_id: int, services: NodeServices) -> None:
        if node_id in self._nodes:
            raise MacError(f"node {node_id} already attached")
        node = _DcfNode(
            self.sim, node_id, self.channel, self.phy, self.config, services
        )
        self.channel.register(node_id, node)
        self._nodes[node_id] = node

    def start(self) -> None:
        for node in self._nodes.values():
            node.attempt_access()

    def notify_backlog(self, node_id: int) -> None:
        self._node(node_id).attempt_access()

    def occupancy_snapshot(self, node_id: int) -> dict[Link, float]:
        return dict(self._node(node_id).occupancy)

    def reset_occupancy(self, node_id: int) -> None:
        self._node(node_id).occupancy.clear()

    def busy_snapshot(self, node_id: int) -> float:
        return self._node(node_id).busy_seconds()

    def reset_busy(self, node_id: int) -> None:
        self._node(node_id).reset_busy_meter()

    def send_broadcast(self, node_id: int, payload: object) -> None:
        self._node(node_id).queue_broadcast(payload)

    # --- fault injection hooks ----------------------------------------------------

    def set_node_down(self, node_id: int, down: bool) -> list[Packet]:
        """Crash or recover a node's radio + state machine.

        Returns the packets the MAC loses on a crash (the in-flight
        exchange); empty on recovery.
        """
        node = self._node(node_id)
        if down:
            lost = node.crash()
            self.channel.set_node_down(node_id, True)
            return lost
        self.channel.set_node_down(node_id, False)
        node.recover()
        return []

    def set_link_loss(self, sender: int, receiver: int, rate: float) -> None:
        """Decode-loss probability on the directed link ``sender -> receiver``."""
        self.channel.set_link_loss(sender, receiver, rate)

    def packets_in_flight(self) -> list[Packet]:
        """Packets currently owned by MAC exchanges (for audits)."""
        return [
            packet
            for node in self._nodes.values()
            if (packet := node.held_packet()) is not None
        ]

    def node_stats(self, node_id: int) -> dict[str, int]:
        """MAC counters of one node (sent/received/drops/attempts)."""
        node = self._node(node_id)
        return {
            "data_sent": node.data_sent,
            "data_received": node.data_received,
            "drops": node.drops,
            "rts_attempts": node.rts_attempts,
        }

    def _node(self, node_id: int) -> _DcfNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise MacError(f"node {node_id} not attached") from None
