"""802.11b PHY timing.

All frame durations and interframe spaces are derived from a
:class:`PhyProfile`.  Two standard profiles are provided:

* :data:`PHY_80211B_LONG` — classic 11 Mbps DSSS with the long PLCP
  preamble (192 us) and 1 Mbps control frames;
* :data:`PHY_80211B_SHORT` — short preamble (96 us) with 2 Mbps
  control frames (the default; its per-packet efficiency matches the
  throughput levels the paper reports).

The paper fixes the channel capacity at 11 Mbps and the data payload
at 1024 bytes; everything else (preamble, control rate) is unstated,
so both profiles are exposed and benchmarks record which one they use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MBPS, MICROSECONDS

#: MAC overhead of a data frame: 24-byte header + 4-byte FCS.
DATA_HEADER_BYTES = 28
RTS_BYTES = 20
CTS_BYTES = 14
ACK_BYTES = 14


@dataclass(frozen=True)
class PhyProfile:
    """Timing parameters of an 802.11 PHY.

    Attributes:
        name: human-readable profile name.
        data_rate: payload bit rate (bits/second).
        basic_rate: control-frame bit rate (bits/second).
        preamble: PLCP preamble + header duration in seconds.
        slot_time: backoff slot duration in seconds.
        sifs: short interframe space in seconds.
        cw_min: minimum contention window (slots); windows are
            ``[0, cw]`` inclusive.
        cw_max: maximum contention window (slots).
        short_retry_limit: RTS attempts before the packet is dropped.
        long_retry_limit: DATA attempts before the packet is dropped.
    """

    name: str
    data_rate: float
    basic_rate: float
    preamble: float
    slot_time: float = 20 * MICROSECONDS
    sifs: float = 10 * MICROSECONDS
    cw_min: int = 31
    cw_max: int = 1023
    short_retry_limit: int = 7
    long_retry_limit: int = 4

    def __post_init__(self) -> None:
        if self.data_rate <= 0 or self.basic_rate <= 0:
            raise ConfigError("PHY rates must be positive")
        if self.cw_min < 1 or self.cw_max < self.cw_min:
            raise ConfigError(
                f"invalid contention windows: cw_min={self.cw_min} cw_max={self.cw_max}"
            )

    # --- interframe spaces --------------------------------------------------

    @property
    def difs(self) -> float:
        """DCF interframe space: SIFS + 2 slots."""
        return self.sifs + 2 * self.slot_time

    @property
    def eifs(self) -> float:
        """Extended IFS, used after sensing an undecodable frame:
        SIFS + ACK duration at the basic rate + DIFS."""
        return self.sifs + self.ack_duration + self.difs

    # --- frame durations ---------------------------------------------------------

    def _control_duration(self, frame_bytes: int) -> float:
        return self.preamble + frame_bytes * 8.0 / self.basic_rate

    @property
    def rts_duration(self) -> float:
        """Airtime of an RTS frame."""
        return self._control_duration(RTS_BYTES)

    @property
    def cts_duration(self) -> float:
        """Airtime of a CTS frame."""
        return self._control_duration(CTS_BYTES)

    @property
    def ack_duration(self) -> float:
        """Airtime of an ACK frame."""
        return self._control_duration(ACK_BYTES)

    def data_duration(self, payload_bytes: int) -> float:
        """Airtime of a DATA frame carrying ``payload_bytes``."""
        return (
            self.preamble
            + (DATA_HEADER_BYTES + payload_bytes) * 8.0 / self.data_rate
        )

    # --- exchange-level helpers -----------------------------------------------

    def exchange_duration(self, payload_bytes: int) -> float:
        """Airtime of a full RTS/CTS/DATA/ACK exchange (excluding DIFS
        and backoff)."""
        return (
            self.rts_duration
            + self.cts_duration
            + self.data_duration(payload_bytes)
            + self.ack_duration
            + 3 * self.sifs
        )

    def saturation_rate(self, payload_bytes: int, *, contenders: int = 1) -> float:
        """Rough saturation throughput in packets/second for one link.

        Adds DIFS plus the *expected* initial backoff to each exchange;
        useful as a capacity estimate for the fluid MAC and for sanity
        checks, not as an exact DCF model.
        """
        mean_backoff = (self.cw_min / 2.0) * self.slot_time
        per_packet = self.difs + mean_backoff / max(contenders, 1) + self.exchange_duration(
            payload_bytes
        )
        return 1.0 / per_packet

    def cw_after_retries(self, retries: int) -> int:
        """Contention window after ``retries`` failed attempts."""
        window = (self.cw_min + 1) * (2**max(retries, 0)) - 1
        return min(window, self.cw_max)


PHY_80211B_LONG = PhyProfile(
    name="802.11b-long",
    data_rate=11.0 * MBPS,
    basic_rate=1.0 * MBPS,
    preamble=192 * MICROSECONDS,
)

PHY_80211B_SHORT = PhyProfile(
    name="802.11b-short",
    data_rate=11.0 * MBPS,
    basic_rate=2.0 * MBPS,
    preamble=96 * MICROSECONDS,
)

#: Default profile used by scenarios unless overridden.
DEFAULT_PHY = PHY_80211B_SHORT
