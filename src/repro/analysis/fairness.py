"""Fairness indices used in the paper's evaluation (§7.2).

* The maxmin fairness index ``I_mm = min(r) / max(r)`` (after
  Bertsekas & Gallager);
* the equality fairness index
  ``I_eq = (sum r)^2 / (|F| * sum r^2)`` (Chiu & Jain) — identical to
  Jain's fairness index.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import AnalysisError
from repro.flows.flow import FlowSet


def _validated(rates: Iterable[float]) -> list[float]:
    values = list(rates)
    if not values:
        raise AnalysisError("fairness index of an empty rate set")
    if any(value < 0 for value in values):
        raise AnalysisError(f"negative rate in {values}")
    return values


def maxmin_fairness_index(rates: Iterable[float]) -> float:
    """``min(r) / max(r)``; defined as 1.0 when all rates are zero."""
    values = _validated(rates)
    largest = max(values)
    if largest == 0:
        return 1.0
    return min(values) / largest


def equality_fairness_index(rates: Iterable[float]) -> float:
    """Chiu–Jain equality index; approaches 1 as rates equalize.

    Defined as 1.0 when all rates are zero (perfect equality).
    """
    values = _validated(rates)
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


#: Jain's fairness index is the same statistic under its common name.
jain_index = equality_fairness_index


def normalized_rates(
    rates: Mapping[int, float], flows: FlowSet
) -> dict[int, float]:
    """Per-flow normalized rates ``r(f) / w(f)`` (paper eq. 1)."""
    return {
        flow_id: flows.get(flow_id).normalized(rate)
        for flow_id, rate in rates.items()
    }
