"""Transient-response metrics for fault-injection runs.

Given the per-interval rate series a fault run records, these helpers
quantify how the protocol rode out the fault:

* :func:`reconvergence_time` — how long after the fault every flow's
  rate settled within a tolerance band around a reference allocation
  (and stayed there for a holding window);
* :func:`goodput_lost` — packet-time area between the reference and
  the achieved rates over a window;
* :func:`min_rate_dip` — the worst instantaneous (per-interval) rate
  any flow fell to during the transient;
* :func:`surviving_maxmin_reference` — the maxmin allocation on the
  *surviving* topology, i.e. what the rates should reconverge to while
  crashed nodes are down;
* :func:`per_arrival_convergence` — for dynamic workloads (flow
  churn), how long after each flow's *arrival* its delivered rate
  settled, measured against its own steady level late in its lifetime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.maxmin_reference import weighted_maxmin_rates
from repro.errors import AnalysisError
from repro.flows.flow import Flow, FlowSet
from repro.routing.link_state import link_state_routes
from repro.topology.cliques import maximal_cliques
from repro.topology.contention import ContentionGraph
from repro.topology.network import Topology


@dataclass(frozen=True)
class TransientMetrics:
    """Summary of one fault transient.

    Attributes:
        fault_time: when the fault hit.
        reconverged_at: absolute time reconvergence was first achieved
            (end of the first in-band sample), or None.
        time_to_reconverge: ``reconverged_at - fault_time``, or None.
        goodput_lost: packets of goodput lost versus the reference
            between the fault and reconvergence (or the series end).
        min_rate_dip: worst per-interval rate any referenced flow hit
            after the fault.
    """

    fault_time: float
    reconverged_at: float | None
    time_to_reconverge: float | None
    goodput_lost: float
    min_rate_dip: float


def _check_series(
    interval_rates: dict[int, list[float]], interval: float
) -> int:
    if interval <= 0:
        raise AnalysisError(f"interval must be positive: {interval}")
    if not interval_rates:
        raise AnalysisError("no rate series to analyze")
    return min(len(series) for series in interval_rates.values())


def _window_edges(
    count: int, interval: float, bounds: list[float] | None
) -> list[float]:
    """Edge times of the first ``count`` windows: ``edges[j]`` /
    ``edges[j+1]`` bracket sample ``j``.

    Without explicit bounds every window is assumed ``interval`` wide —
    which overstates the final window when the run ended mid-window.
    Runs recorded through :func:`~repro.scenarios.runner.run_scenario`
    carry the true edges in ``RunResult.interval_bounds``; pass them to
    weight the partial tail correctly.
    """
    if bounds:
        if len(bounds) < count:
            raise AnalysisError(
                f"interval_bounds has {len(bounds)} edges for {count} samples"
            )
        return [0.0] + [float(b) for b in bounds[:count]]
    return [index * interval for index in range(count + 1)]


def reconvergence_time(
    interval_rates: dict[int, list[float]],
    interval: float,
    *,
    fault_time: float,
    reference: dict[int, float],
    epsilon: float = 0.1,
    atol: float = 0.0,
    hold: int = 3,
    bounds: list[float] | None = None,
) -> float | None:
    """Seconds from the fault until every referenced flow's rate stays
    within ``epsilon`` (relative) + ``atol`` (absolute) of its
    reference for ``hold`` consecutive samples.

    Sample ``j`` covers ``[bounds[j-1], bounds[j])`` when ``bounds``
    (the run's ``interval_bounds``) is given, else
    ``[j*interval, (j+1)*interval)``.  Returns None when the series
    never settles.

    Raises:
        AnalysisError: on empty series, bad interval, or a referenced
            flow with no series.
    """
    if hold < 1:
        raise AnalysisError(f"hold must be >= 1: {hold}")
    if epsilon < 0 or atol < 0:
        raise AnalysisError("tolerances must be non-negative")
    count = _check_series(interval_rates, interval)
    missing = [flow_id for flow_id in reference if flow_id not in interval_rates]
    if missing:
        raise AnalysisError(f"no rate series for flows {missing}")
    edges = _window_edges(count, interval, bounds)

    def in_band(index: int) -> bool:
        for flow_id, target in reference.items():
            rate = interval_rates[flow_id][index]
            if abs(rate - target) > epsilon * target + atol:
                return False
        return True

    streak = 0
    for index in range(count):
        if edges[index] < fault_time - 1e-9:
            continue  # window starts before the fault
        streak = streak + 1 if in_band(index) else 0
        if streak >= hold:
            settled_index = index - hold + 1
            return edges[settled_index + 1] - fault_time
    return None


def goodput_lost(
    interval_rates: dict[int, list[float]],
    interval: float,
    *,
    reference: dict[int, float],
    start: float,
    end: float,
    bounds: list[float] | None = None,
) -> float:
    """Packets of goodput lost versus ``reference`` over ``[start, end)``.

    Only shortfalls count: a flow transiently exceeding its reference
    does not pay back another flow's loss.  Pass the run's
    ``interval_bounds`` as ``bounds`` so a partial final window is
    weighted by its true width.
    """
    if end < start:
        raise AnalysisError(f"empty window [{start}, {end})")
    count = _check_series(interval_rates, interval)
    edges = _window_edges(count, interval, bounds)
    lost = 0.0
    for flow_id, target in reference.items():
        series = interval_rates.get(flow_id)
        if series is None:
            raise AnalysisError(f"no rate series for flow {flow_id}")
        for index in range(count):
            lo = edges[index]
            hi = edges[index + 1]
            overlap = min(hi, end) - max(lo, start)
            if overlap <= 0:
                continue
            lost += max(0.0, target - series[index]) * overlap
    return lost


def min_rate_dip(
    interval_rates: dict[int, list[float]],
    interval: float,
    *,
    start: float,
    end: float | None = None,
    flow_ids: list[int] | None = None,
    bounds: list[float] | None = None,
) -> float:
    """Worst per-interval rate any selected flow hit in the window."""
    count = _check_series(interval_rates, interval)
    edges = _window_edges(count, interval, bounds)
    selected = flow_ids if flow_ids is not None else sorted(interval_rates)
    worst = math.inf
    for flow_id in selected:
        series = interval_rates.get(flow_id)
        if series is None:
            raise AnalysisError(f"no rate series for flow {flow_id}")
        for index in range(count):
            lo = edges[index]
            hi = edges[index + 1]
            if hi <= start or (end is not None and lo >= end):
                continue
            worst = min(worst, series[index])
    if not math.isfinite(worst):
        raise AnalysisError(f"no samples in window starting at {start}")
    return worst


def evaluate_transient(
    result,
    *,
    fault_time: float,
    reference: dict[int, float],
    epsilon: float = 0.1,
    atol: float = 0.0,
    hold: int = 3,
) -> TransientMetrics:
    """All transient metrics for one fault-run :class:`RunResult`.

    Raises:
        AnalysisError: if the result carries no per-interval series
            (run without ``rate_interval``).
    """
    interval = getattr(result, "rate_interval", None)
    series = getattr(result, "interval_rates", None)
    if not interval or not series:
        raise AnalysisError(
            "result has no per-interval rate series; run the scenario "
            "with rate_interval set"
        )
    bounds = list(getattr(result, "interval_bounds", None) or [])
    count = min(len(s) for s in series.values())
    edges = _window_edges(count, interval, bounds)
    settle = reconvergence_time(
        series,
        interval,
        fault_time=fault_time,
        reference=reference,
        epsilon=epsilon,
        atol=atol,
        hold=hold,
        bounds=bounds,
    )
    reconverged_at = None if settle is None else fault_time + settle
    window_end = reconverged_at if reconverged_at is not None else edges[-1]
    lost = goodput_lost(
        series,
        interval,
        reference=reference,
        start=fault_time,
        end=window_end,
        bounds=bounds,
    )
    dip = min_rate_dip(
        series,
        interval,
        start=fault_time,
        end=window_end if window_end > fault_time else None,
        flow_ids=sorted(reference),
        bounds=bounds,
    )
    return TransientMetrics(
        fault_time=fault_time,
        reconverged_at=reconverged_at,
        time_to_reconverge=settle,
        goodput_lost=lost,
        min_rate_dip=dip,
    )


def per_arrival_convergence(
    interval_rates: dict[int, list[float]],
    interval: float,
    *,
    lifetimes: dict[int, tuple[float, float]],
    epsilon: float = 0.15,
    atol: float = 5.0,
    hold: int = 3,
    tail: float = 0.25,
    bounds: list[float] | None = None,
) -> dict[int, float | None]:
    """Seconds from each flow's arrival until its rate settled.

    With churn there is no single external reference allocation — the
    feasible share changes with every arrival and departure — so each
    flow is measured against *its own* steady level: the mean of the
    last ``tail`` fraction of its in-lifetime samples.  A flow settles
    at the end of the first run of ``hold`` consecutive in-lifetime
    samples within ``epsilon`` (relative) + ``atol`` (absolute,
    packets/s) of that level.

    Args:
        interval_rates: the run's per-interval rate series (a flow's
            samples before its arrival are zero-padded by the runner).
        interval: nominal window width (``RunResult.rate_interval``).
        lifetimes: flow id → (arrival, departure) for the flows to
            evaluate — typically ``RunResult.flow_lifetimes``.
        epsilon: relative tolerance around the steady level.
        atol: absolute tolerance in packets/second (interval sampling
            of a stochastic arrival process never sits exactly on the
            mean, so a purely relative band under-reports).
        hold: consecutive in-band samples required.
        tail: fraction of the lifetime's samples defining the level.
        bounds: the run's ``interval_bounds`` (true window edges).

    Returns:
        flow id → seconds after arrival, or None when the flow never
        settled (or lived for fewer than ``hold`` windows, or its
        steady level is zero — a flow that never got going has no
        convergence time).

    Raises:
        AnalysisError: on bad tolerances or a lifetime flow with no
            rate series.
    """
    if hold < 1:
        raise AnalysisError(f"hold must be >= 1: {hold}")
    if epsilon < 0 or atol < 0:
        raise AnalysisError("tolerances must be non-negative")
    if not 0 < tail <= 1:
        raise AnalysisError(f"tail fraction must lie in (0, 1]: {tail}")
    if not lifetimes:
        return {}
    count = _check_series(interval_rates, interval)
    edges = _window_edges(count, interval, bounds)

    settled: dict[int, float | None] = {}
    for flow_id, (arrival, departure) in sorted(lifetimes.items()):
        series = interval_rates.get(flow_id)
        if series is None:
            raise AnalysisError(f"no rate series for flow {flow_id}")
        in_life = [
            index
            for index in range(count)
            if edges[index] >= arrival - 1e-9
            and edges[index + 1] <= departure + 1e-9
        ]
        if len(in_life) < hold:
            settled[flow_id] = None
            continue
        tail_count = max(1, math.ceil(tail * len(in_life)))
        level_samples = [series[index] for index in in_life[-tail_count:]]
        level = sum(level_samples) / len(level_samples)
        if level <= 0:
            settled[flow_id] = None
            continue
        band = epsilon * level + atol
        streak = 0
        answer: float | None = None
        for index in in_life:
            streak = streak + 1 if abs(series[index] - level) <= band else 0
            if streak >= hold:
                first = in_life[in_life.index(index) - hold + 1]
                answer = edges[first + 1] - arrival
                break
        settled[flow_id] = answer
    return settled


def surviving_maxmin_reference(
    topology: Topology,
    flows: FlowSet,
    dead_nodes: set[int],
    capacity: float,
) -> dict[int, float]:
    """Maxmin reference rates on the topology minus ``dead_nodes``.

    Flows sourced at, destined to, or disconnected by the dead nodes
    get a reference of 0.0; the rest are solved by progressive filling
    over the surviving network's contention cliques.

    Raises:
        AnalysisError: if ``dead_nodes`` contains unknown nodes.
    """
    unknown = {node for node in dead_nodes if node not in topology}
    if unknown:
        raise AnalysisError(f"unknown nodes in dead set: {sorted(unknown)}")

    survivor = Topology(tx_range=topology.tx_range, cs_range=topology.cs_range)
    for node in topology:
        if node.node_id not in dead_nodes:
            survivor.add_node(node.node_id, node.x, node.y)

    reference = {flow.flow_id: 0.0 for flow in flows}
    if len(survivor) < 2:
        return reference

    routes = link_state_routes(survivor)
    alive: list[Flow] = []
    for flow in flows:
        if flow.source in dead_nodes or flow.destination in dead_nodes:
            continue
        if not routes.table(flow.source).has_route(flow.destination):
            continue  # partitioned away; it can deliver nothing
        alive.append(flow)
    if not alive:
        return reference

    cliques = maximal_cliques(ContentionGraph(survivor))
    solution = weighted_maxmin_rates(
        FlowSet(alive), routes, cliques, capacity
    )
    reference.update(solution.rates)
    return reference
