"""Centralized weighted-maxmin reference solver.

Computes the global maxmin allocation GMP is supposed to converge to,
by progressive filling ("water-filling") over the clique-capacity
model: a flow consumes one unit of a clique's capacity for every one
of its path links inside that clique, and all normalized rates rise
together until each flow is stopped by its desirable rate or by a
saturated clique.

This is the ground truth the tests and benchmarks compare the
distributed protocol against; the paper itself derives the expected
outcomes of Tables 1–2 from the same reasoning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.flows.flow import FlowSet
from repro.routing.table import RouteSet
from repro.topology.cliques import Clique, link_clique_index
from repro.topology.network import Link

_EPSILON = 1e-9


def _canonical(a_link: Link) -> Link:
    i, j = a_link
    return (i, j) if i <= j else (j, i)


@dataclass(frozen=True)
class MaxminSolution:
    """Result of the reference computation.

    Attributes:
        rates: packets/second per flow.
        normalized: ``rates / weight`` per flow.
        bottlenecks: per flow, the clique id that froze it (None when
            the flow reached its desirable rate).
        clique_usage: consumed capacity per clique id.
    """

    rates: dict[int, float]
    normalized: dict[int, float]
    bottlenecks: dict[int, tuple[int, int] | None]
    clique_usage: dict[tuple[int, int], float]


def weighted_maxmin_rates(
    flows: FlowSet,
    routes: RouteSet,
    cliques: list[Clique],
    capacity: float,
    *,
    clique_capacities: dict[tuple[int, int], float] | None = None,
) -> MaxminSolution:
    """Progressive-filling weighted maxmin under clique constraints.

    Args:
        flows: the end-to-end flows.
        routes: routing tables defining each flow's path.
        cliques: maximal contention cliques.
        capacity: default packets/second a clique can serialize.
        clique_capacities: optional per-clique overrides.

    Raises:
        AnalysisError: on non-positive capacities or empty flow sets.
    """
    if len(flows) == 0:
        raise AnalysisError("maxmin of an empty flow set")
    capacities = {
        clique.clique_id: (clique_capacities or {}).get(clique.clique_id, capacity)
        for clique in cliques
    }
    if any(value <= 0 for value in capacities.values()):
        raise AnalysisError("clique capacities must be positive")

    # Traversal counts: how many units of clique C one packet of flow f
    # consumes (= number of f's path links inside C).  Counted through
    # the link→clique index instead of scanning every clique per flow.
    link_index = link_clique_index(cliques)
    traversals: dict[int, dict[tuple[int, int], int]] = {}
    for flow in flows:
        path = [
            _canonical(a_link)
            for a_link in routes.path_links(flow.source, flow.destination)
        ]
        counts: dict[tuple[int, int], int] = {}
        for a_link in path:
            for clique_id in link_index.get(a_link, ()):
                counts[clique_id] = counts.get(clique_id, 0) + 1
        traversals[flow.flow_id] = counts

    level = {flow.flow_id: 0.0 for flow in flows}  # normalized rates
    frozen: dict[int, tuple[int, int] | None] = {}
    remaining = dict(capacities)

    # Per-clique member flows in flow order: weight_in sums the same
    # terms in the same order as a full scan (a flow outside the clique
    # contributed an exact +0.0), without touching non-member flows.
    weights = {flow.flow_id: flow.weight for flow in flows}
    clique_flows: dict[tuple[int, int], list[int]] = {
        clique_id: [] for clique_id in capacities
    }
    for flow in flows:
        for clique_id in traversals[flow.flow_id]:
            clique_flows[clique_id].append(flow.flow_id)

    def weight_in(clique_id: tuple[int, int]) -> float:
        """Combined capacity drain per unit of normalized-rate growth."""
        return sum(
            weights[flow_id] * traversals[flow_id][clique_id]
            for flow_id in clique_flows[clique_id]
            if flow_id not in frozen
        )

    while len(frozen) < len(flows):
        # Next event: a flow reaches its desirable rate, or a clique
        # saturates.
        step = math.inf
        for flow in flows:
            if flow.flow_id in frozen:
                continue
            headroom = flow.desired_rate / flow.weight - level[flow.flow_id]
            step = min(step, headroom)
        saturating: list[tuple[int, int]] = []
        for clique_id, slack in remaining.items():
            drain = weight_in(clique_id)
            if drain > _EPSILON:
                step = min(step, slack / drain)
        if not math.isfinite(step):
            break
        step = max(step, 0.0)

        for flow in flows:
            if flow.flow_id not in frozen:
                level[flow.flow_id] += step
        for clique_id in remaining:
            remaining[clique_id] -= step * weight_in(clique_id)
            if remaining[clique_id] <= _EPSILON:
                saturating.append(clique_id)

        newly_frozen = False
        for flow in flows:
            if flow.flow_id in frozen:
                continue
            if level[flow.flow_id] >= flow.desired_rate / flow.weight - _EPSILON:
                frozen[flow.flow_id] = None
                newly_frozen = True
                continue
            for clique_id in saturating:
                if traversals[flow.flow_id].get(clique_id):
                    frozen[flow.flow_id] = clique_id
                    newly_frozen = True
                    break
        if not newly_frozen:
            break  # defensive: no progress possible

    rates = {
        flow.flow_id: level[flow.flow_id] * flow.weight for flow in flows
    }
    usage = {
        clique_id: capacities[clique_id] - remaining[clique_id]
        for clique_id in capacities
    }
    bottlenecks = {flow.flow_id: frozen.get(flow.flow_id) for flow in flows}
    return MaxminSolution(
        rates=rates,
        normalized=dict(level),
        bottlenecks=bottlenecks,
        clique_usage=usage,
    )
