"""Convergence diagnostics for rate-adaptation runs.

GMP converges to an AIMD-style limit cycle around the maxmin point
(amplitude on the order of β); these helpers quantify how fast a rate
trajectory enters a tolerance band and how wide the residual
oscillation is.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AnalysisError


def convergence_time(
    trajectory: Sequence[float],
    target: float,
    *,
    tolerance: float = 0.2,
    hold: int = 3,
) -> int | None:
    """First index from which the trajectory stays within
    ``tolerance`` (relative) of ``target`` for at least ``hold``
    consecutive samples; None if it never settles.

    Raises:
        AnalysisError: on empty trajectories or non-positive targets.
    """
    if not trajectory:
        raise AnalysisError("convergence time of an empty trajectory")
    if target <= 0:
        raise AnalysisError(f"target must be positive: {target}")
    run = 0
    start: int | None = None
    for index, value in enumerate(trajectory):
        if abs(value - target) <= tolerance * target:
            if run == 0:
                start = index
            run += 1
            if run >= hold and index == len(trajectory) - 1:
                return start
        else:
            run = 0
            start = None
    if run >= hold:
        return start
    return None


def oscillation_amplitude(
    trajectory: Sequence[float], *, tail_fraction: float = 0.25
) -> float:
    """Relative peak-to-peak amplitude over the trajectory's tail.

    Returns ``(max - min) / mean`` of the last ``tail_fraction`` of
    samples; 0.0 for constant tails.

    Raises:
        AnalysisError: on empty trajectories.
    """
    if not trajectory:
        raise AnalysisError("oscillation amplitude of an empty trajectory")
    count = max(1, int(len(trajectory) * tail_fraction))
    tail = list(trajectory[-count:])
    mean = sum(tail) / len(tail)
    if mean == 0:
        return 0.0
    return (max(tail) - min(tail)) / mean
