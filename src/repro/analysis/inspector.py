"""Convergence inspector: turns run telemetry into a narrative.

Answers the two questions the end-of-run tables cannot:

* **when** did each flow's measured rate enter (and stay inside) a
  tolerance band around its centralized maxmin reference; and
* **which** link-condition transition (unsaturated → buffer-saturated
  → bandwidth-saturated) drove each GMP rate adjustment.

Inputs are the ``gmp.flow_rate`` series and the ``gmp.adjust`` /
``gmp.condition_change`` / ``gmp.violation`` events the protocol
records, plus the maxmin reference the runner solves; a GMP run made
with a :class:`~repro.telemetry.Telemetry` instance carries everything
needed in ``RunResult.extras``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.telemetry import Telemetry

#: Default tolerance band around the maxmin reference (±5%).
DEFAULT_BAND = 0.05


@dataclass(frozen=True)
class FlowConvergence:
    """Band-entry verdict for one flow.

    Attributes:
        flow_id: the flow.
        reference: its centralized maxmin rate (packets/second).
        entered_at: first time from which every later rate sample stays
            within the band, or None if the flow never settled.
        final_rate: last measured rate sample.
        closest_off: smallest relative distance to the reference over
            the trajectory (diagnostic for never-settled flows).
    """

    flow_id: int
    reference: float
    entered_at: float | None
    final_rate: float | None
    closest_off: float


@dataclass(frozen=True)
class AdjustmentAttribution:
    """One applied rate adjustment joined to its likely trigger."""

    time: float
    flow_id: int
    kind: str  # "increase" | "decrease"
    reason: str  # "source" | "buffer" | "bandwidth"
    origin: int  # node that issued the winning request
    multiplier: float
    old_limit: float | None
    new_limit: float | None
    trigger: str | None  # human-readable condition transition
    trigger_time: float | None


@dataclass
class ConvergenceReport:
    """The inspector's full output; render with :meth:`narrative`."""

    band: float
    flows: list[FlowConvergence]
    adjustments: list[AdjustmentAttribution]

    def narrative(self, *, max_adjustments: int = 20) -> str:
        """Human-readable convergence story."""
        lines = [f"convergence narrative (±{self.band * 100:g}% of maxmin reference)"]
        for verdict in self.flows:
            head = f"  flow {verdict.flow_id}: ref {verdict.reference:.2f} pkt/s"
            if verdict.reference <= 0:
                lines.append(f"{head} — reference is zero; band undefined")
            elif verdict.entered_at is not None:
                final = (
                    f" (final {verdict.final_rate:.2f})"
                    if verdict.final_rate is not None
                    else ""
                )
                lines.append(f"{head} — entered band at t={verdict.entered_at:.1f}s{final}")
            else:
                lines.append(
                    f"{head} — never settled "
                    f"(closest {verdict.closest_off * 100:.0f}% off)"
                )
        lines.append(f"rate adjustments applied: {len(self.adjustments)}")
        for adjustment in self.adjustments[:max_adjustments]:
            entry = (
                f"  t={adjustment.time:6.1f}s flow {adjustment.flow_id} "
                f"{adjustment.kind} x{adjustment.multiplier:.2f} "
                f"({adjustment.reason} condition at node {adjustment.origin})"
            )
            if adjustment.trigger is not None:
                entry += f" — after {adjustment.trigger}"
            lines.append(entry)
        hidden = len(self.adjustments) - max_adjustments
        if hidden > 0:
            lines.append(f"  (+{hidden} more adjustments)")
        return "\n".join(lines)


def _flow_verdict(
    flow_id: int,
    reference: float,
    times: list[float],
    values: list[float],
    *,
    band: float,
    hold: int,
) -> FlowConvergence:
    final_rate = values[-1] if values else None
    if reference <= 0 or not values:
        return FlowConvergence(
            flow_id=flow_id,
            reference=reference,
            entered_at=None,
            final_rate=final_rate,
            closest_off=float("inf"),
        )
    off = [abs(value - reference) / reference for value in values]
    closest = min(off)
    # Last sample outside the band decides entry: the flow "entered"
    # right after it, provided at least `hold` in-band samples follow.
    last_out = -1
    for index, distance in enumerate(off):
        if distance > band:
            last_out = index
    entered_index = last_out + 1
    entered_at = (
        times[entered_index] if len(values) - entered_index >= hold else None
    )
    return FlowConvergence(
        flow_id=flow_id,
        reference=reference,
        entered_at=entered_at,
        final_rate=final_rate,
        closest_off=closest,
    )


def _attribute(telemetry: Telemetry) -> list[AdjustmentAttribution]:
    conditions = telemetry.events_in("gmp.condition_change")
    violations = telemetry.events_in("gmp.violation")
    attributions: list[AdjustmentAttribution] = []
    for event in telemetry.events_in("gmp.adjust"):
        origin = event.fields.get("origin")
        reason = str(event.fields.get("reason", "?"))
        trigger: str | None = None
        trigger_time: float | None = None
        if reason == "bandwidth":
            # Bandwidth responses are driven by a persistent clique
            # occupancy violation, not a single state flip.
            for violation in violations:
                if violation.time > event.time:
                    break
                trigger = (
                    f"bandwidth violation on link "
                    f"{violation.fields.get('link')} "
                    f"(streak {violation.fields.get('streak')})"
                )
                trigger_time = violation.time
        else:
            # Most recent condition transition at the issuing node.
            for change in conditions:
                if change.time > event.time:
                    break
                link = str(change.fields.get("link", ""))
                endpoints = link.split("->") if "->" in link else []
                if str(origin) not in endpoints:
                    continue
                trigger = (
                    f"link {link} (dest {change.fields.get('dest')}) went "
                    f"{change.fields.get('old')} -> {change.fields.get('new')} "
                    f"at t={change.time:.1f}s"
                )
                trigger_time = change.time
        attributions.append(
            AdjustmentAttribution(
                time=event.time,
                flow_id=int(event.fields.get("flow", -1)),
                kind=str(event.fields.get("kind", "?")),
                reason=reason,
                origin=int(origin) if origin is not None else -1,
                multiplier=float(event.fields.get("multiplier", 0.0)),
                old_limit=event.fields.get("old_limit"),
                new_limit=event.fields.get("new_limit"),
                trigger=trigger,
                trigger_time=trigger_time,
            )
        )
    return attributions


def inspect_convergence(
    telemetry: Telemetry,
    reference: dict[int, float],
    *,
    band: float = DEFAULT_BAND,
    hold: int = 3,
) -> ConvergenceReport:
    """Build the convergence report from telemetry + reference rates.

    Args:
        telemetry: an *enabled* instance that accumulated a GMP run.
        reference: centralized maxmin rate per flow.
        band: relative tolerance around the reference (0.05 = ±5%).
        hold: minimum in-band trailing samples for a flow to count as
            settled (guards against a lucky last sample).

    Raises:
        AnalysisError: on a disabled telemetry instance or bad band.
    """
    if not telemetry.enabled:
        raise AnalysisError("telemetry was disabled; nothing to inspect")
    if not 0 < band < 1:
        raise AnalysisError(f"band must be in (0, 1): {band}")
    if hold < 1:
        raise AnalysisError(f"hold must be >= 1: {hold}")

    series_by_flow: dict[int, tuple[list[float], list[float]]] = {}
    for instrument in telemetry.registry.instruments("gmp.flow_rate"):
        flow_id = instrument.labels.get("flow")
        if flow_id is None:
            continue
        series_by_flow[int(flow_id)] = (
            list(instrument.times),
            list(instrument.values),
        )

    flows = [
        _flow_verdict(
            flow_id,
            float(target),
            *series_by_flow.get(flow_id, ([], [])),
            band=band,
            hold=hold,
        )
        for flow_id, target in sorted(reference.items())
    ]
    return ConvergenceReport(
        band=band, flows=flows, adjustments=_attribute(telemetry)
    )


def inspect_run(result, *, band: float = DEFAULT_BAND, hold: int = 3) -> ConvergenceReport:
    """Convergence report straight from a GMP :class:`RunResult`.

    Raises:
        AnalysisError: if the run carried no telemetry or no maxmin
            reference (run with a Telemetry instance and protocol
            "gmp").
    """
    telemetry = result.extras.get("telemetry")
    reference = result.extras.get("maxmin_reference")
    if telemetry is None or reference is None:
        raise AnalysisError(
            "run carries no telemetry/maxmin reference; pass telemetry= "
            "to run_scenario with protocol='gmp'"
        )
    return inspect_convergence(telemetry, reference, band=band, hold=hold)
