"""Effective network throughput (§7.2).

``U = sum_f r(f) * l_f`` where ``l_f`` is the hop count of flow f's
routing path — a measure of spatial spectrum reuse.  Packets dropped
mid-path do not count (rates here are end-to-end delivered rates).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import AnalysisError
from repro.flows.flow import FlowSet
from repro.routing.table import RouteSet


def effective_network_throughput(
    rates: Mapping[int, float], flows: FlowSet, routes: RouteSet
) -> float:
    """Sum of delivered rate times hop count over all flows."""
    if not rates:
        raise AnalysisError("effective throughput of an empty rate set")
    total = 0.0
    for flow_id, rate in rates.items():
        flow = flows.get(flow_id)
        hops = routes.hop_count(flow.source, flow.destination)
        total += rate * hops
    return total
