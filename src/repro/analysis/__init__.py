"""Analysis toolkit: fairness indices, the centralized weighted-maxmin
reference solver, effective throughput, convergence and resilience
metrics, and text tables for the benchmark harness."""

from repro.analysis.convergence import convergence_time, oscillation_amplitude
from repro.analysis.fairness import (
    equality_fairness_index,
    jain_index,
    maxmin_fairness_index,
    normalized_rates,
)
from repro.analysis.inspector import (
    AdjustmentAttribution,
    ConvergenceReport,
    FlowConvergence,
    inspect_convergence,
    inspect_run,
)
from repro.analysis.maxmin_reference import MaxminSolution, weighted_maxmin_rates
from repro.analysis.report import format_table
from repro.analysis.resilience import (
    TransientMetrics,
    evaluate_transient,
    goodput_lost,
    min_rate_dip,
    reconvergence_time,
    surviving_maxmin_reference,
)
from repro.analysis.throughput import effective_network_throughput

__all__ = [
    "maxmin_fairness_index",
    "equality_fairness_index",
    "jain_index",
    "normalized_rates",
    "MaxminSolution",
    "weighted_maxmin_rates",
    "effective_network_throughput",
    "convergence_time",
    "oscillation_amplitude",
    "AdjustmentAttribution",
    "ConvergenceReport",
    "FlowConvergence",
    "inspect_convergence",
    "inspect_run",
    "format_table",
    "TransientMetrics",
    "evaluate_transient",
    "goodput_lost",
    "min_rate_dip",
    "reconvergence_time",
    "surviving_maxmin_reference",
]
