"""Plain-text tables for the benchmark harness.

The benchmarks print the same rows the paper's tables report; this
module renders them with aligned columns so bench output is directly
comparable to the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AnalysisError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned text table.

    Floats are formatted with ``float_format``; everything else via
    ``str``.

    Raises:
        AnalysisError: when a row's width differs from the header's.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in rendered_rows))
        if rendered_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
