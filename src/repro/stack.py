"""Per-node protocol stack assembly.

A :class:`NodeStack` wires one node's buffer policy into a MAC
substrate, forwards and delivers packets along the routing tables,
feeds overheard buffer-state bits to the backpressure gate, and keeps
the per-flow / per-virtual-link counters that both the result
collection and the GMP measurement layer read.

The stack is protocol-agnostic: plain 802.11, 2PP, and GMP node
stacks differ only in the :class:`~repro.buffers.queues.BufferPolicy`
instance (and in whether a protocol observer is attached).
"""

from __future__ import annotations

from typing import Protocol

from repro.buffers.queues import BufferPolicy, PerDestinationBuffer
from repro.errors import ProtocolError
from repro.flows.packet import Packet
from repro.mac.base import MacLayer, NodeServices
from repro.sim.kernel import Simulator
from repro.topology.network import Link


class StackObserver(Protocol):
    """Hook points a rate-adaptation protocol can attach to a stack."""

    def on_forward(self, node_id: int, packet: Packet, next_hop: int) -> None:
        """``node_id`` handed ``packet`` to the MAC toward ``next_hop``."""

    def on_receive(self, node_id: int, packet: Packet, from_node: int) -> None:
        """``node_id`` received ``packet`` from upstream ``from_node``
        (delivered or queued for forwarding)."""


class NodeStack:
    """One node's data plane.

    Args:
        sim: simulation kernel.
        node_id: this node.
        buffer_policy: queueing policy instance owned by this node.
        mac: the shared MAC substrate (already constructed; the caller
            must attach this stack via :meth:`attach`).
        observer: optional protocol hooks.
        stale_retry: when every queued packet is gated, retry after
            this many seconds even without an overheard state change
            (matches the gate's stale-timeout escape hatch).
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        buffer_policy: BufferPolicy,
        mac: MacLayer,
        *,
        observer: StackObserver | None = None,
        stale_retry: float = 0.1,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.buffer = buffer_policy
        self.mac = mac
        self.observer = observer
        self._retry_timer = sim.timer(
            self._on_retry, tag=f"stack.retry.{node_id}"
        )
        self._stale_retry = stale_retry

        # Cumulative counters (monotone; consumers take deltas).
        self.delivered: dict[int, int] = {}  # flow_id -> packets sunk here
        self.delay_sum: dict[int, float] = {}  # flow_id -> summed e2e delay
        self.arrivals: dict[tuple[int, int], int] = {}  # (upstream, dest) -> count
        self.forwards: dict[tuple[int, int], int] = {}  # (next_hop, dest) -> count
        self.mac_drops = 0
        self.mac_drop_flows: dict[int, int] = {}  # flow_id -> MAC-layer losses
        self.crash_losses: dict[int, int] = {}  # flow_id -> packets lost to crashes
        self.alive = True

        # Telemetry (None when disabled); per-flow counters cached.
        self._tm = sim.telemetry if sim.telemetry.enabled else None
        self._delivered_counters: dict[int, object] = {}

    # --- wiring ---------------------------------------------------------------

    def attach(self) -> None:
        """Register this stack's services with the MAC."""
        self.mac.attach_node(self.node_id, self.services())

    def services(self) -> NodeServices:
        return NodeServices(
            dequeue=self._dequeue,
            on_data_received=self._on_data_received,
            on_overhear=self._on_overhear,
            make_piggyback=self.buffer.piggyback_states,
            on_packet_dropped=self._on_packet_dropped,
            eligible_links=self._eligible_links,
            dequeue_for=self._dequeue_for,
            has_pending=self.buffer.has_pending,
        )

    # --- local traffic entry point --------------------------------------------------

    def admit_local(self, packet: Packet) -> bool:
        """Offer a locally generated packet (traffic-source callback)."""
        if packet.source != self.node_id:
            raise ProtocolError(
                f"node {self.node_id} got local packet sourced at {packet.source}"
            )
        if not self.alive:
            # Sources are paused across a crash, but refuse defensively
            # so a racing tick cannot enqueue into a dead node.
            return False
        if isinstance(self.buffer, PerDestinationBuffer):
            accepted = self.buffer.admit_local_at(packet, self.sim.now)
        else:
            accepted = self.buffer.admit_local(packet)
        if accepted:
            self.mac.notify_backlog(self.node_id)
        return accepted

    # --- MAC-facing callbacks ------------------------------------------------------

    def _dequeue(self) -> tuple[Packet, int] | None:
        item = self.buffer.dequeue(self.sim.now)
        if item is None:
            if self.buffer.has_pending():
                self._retry_timer.start(self._stale_retry)
            return None
        packet, next_hop = item
        self.forwards[(next_hop, packet.destination)] = (
            self.forwards.get((next_hop, packet.destination), 0) + 1
        )
        if self.observer is not None:
            self.observer.on_forward(self.node_id, packet, next_hop)
        return item

    def _dequeue_for(self, next_hop: int) -> Packet | None:
        packet = self.buffer.dequeue_for(next_hop, self.sim.now)
        if packet is None:
            return None
        self.forwards[(next_hop, packet.destination)] = (
            self.forwards.get((next_hop, packet.destination), 0) + 1
        )
        if self.observer is not None:
            self.observer.on_forward(self.node_id, packet, next_hop)
        return packet

    def _eligible_links(self) -> dict[Link, int]:
        return self.buffer.eligible_links(self.sim.now)

    def _on_data_received(self, packet: Packet, from_node: int) -> None:
        if not self.alive:
            # The MAC gates receptions at decode time, so this is a
            # defensive backstop; a packet that does land on a dead
            # node is lost with it.
            self._count_crash_loss(packet)
            return
        self.arrivals[(from_node, packet.destination)] = (
            self.arrivals.get((from_node, packet.destination), 0) + 1
        )
        if self.observer is not None:
            self.observer.on_receive(self.node_id, packet, from_node)
        if packet.destination == self.node_id:
            packet.delivered_at = self.sim.now
            self.delivered[packet.flow_id] = self.delivered.get(packet.flow_id, 0) + 1
            self.delay_sum[packet.flow_id] = (
                self.delay_sum.get(packet.flow_id, 0.0) + packet.delay
            )
            if self._tm is not None:
                counter = self._delivered_counters.get(packet.flow_id)
                if counter is None:
                    counter = self._tm.registry.counter(
                        "flow.delivered", flow=packet.flow_id
                    )
                    self._delivered_counters[packet.flow_id] = counter
                counter.inc()
            return
        if isinstance(self.buffer, PerDestinationBuffer):
            self.buffer.admit_forwarded_at(packet, self.sim.now)
        else:
            self.buffer.admit_forwarded(packet)
        self.mac.notify_backlog(self.node_id)

    def _on_overhear(self, sender: int, states: dict[int, bool]) -> None:
        gate = getattr(self.buffer, "gate", None)
        if gate is not None and states:
            gate.update(sender, states, self.sim.now)
            # An overheard release may have unblocked a queue head.
            self.mac.notify_backlog(self.node_id)

    def _on_packet_dropped(self, packet: Packet, next_hop: int) -> None:
        self.mac_drops += 1
        self.mac_drop_flows[packet.flow_id] = (
            self.mac_drop_flows.get(packet.flow_id, 0) + 1
        )

    def _on_retry(self) -> None:
        self.mac.notify_backlog(self.node_id)
        if self.buffer.has_pending():
            self._retry_timer.start(self._stale_retry)

    # --- fault injection ---------------------------------------------------------

    def _count_crash_loss(self, packet: Packet) -> None:
        self.crash_losses[packet.flow_id] = (
            self.crash_losses.get(packet.flow_id, 0) + 1
        )

    def crash(self, mac_lost: list[Packet] | None = None) -> None:
        """Take the node down: drain the buffer (queued packets perish
        with the node's memory) and stop the retry loop.

        Args:
            mac_lost: packets the MAC layer reported losing in the same
                crash (e.g. a frame mid-transmission); accounted here
                so the per-flow conservation audit balances.

        Raises:
            ProtocolError: if the node is already down.
        """
        if not self.alive:
            raise ProtocolError(f"node {self.node_id} is already down")
        self.alive = False
        self._retry_timer.cancel()
        for packet in self.buffer.drain(self.sim.now):
            self._count_crash_loss(packet)
        for packet in mac_lost or []:
            self._count_crash_loss(packet)

    def recover(self) -> None:
        """Bring the node back up with empty queues.

        Raises:
            ProtocolError: if the node is not down.
        """
        if self.alive:
            raise ProtocolError(f"node {self.node_id} is not down")
        self.alive = True
        self.mac.notify_backlog(self.node_id)
