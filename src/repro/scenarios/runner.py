"""Scenario runner: assemble a full stack and simulate a session.

``run_scenario`` is the library's main entry point.  It builds routing
tables, the chosen MAC substrate, one node stack per node with the
protocol's buffer policy, CBR traffic sources at the paper's desirable
rate, and (for GMP) the protocol engine; runs the session; and returns
a :class:`~repro.scenarios.results.RunResult` with warmup-excluded
end-to-end rates.

Protocols:

* ``"gmp"`` — per-destination queues + backpressure + the GMP engine;
* ``"802.11"`` — shared 300-packet FIFO with tail overwrite, no rate
  control;
* ``"2pp"`` — per-flow 10-packet queues with the two-phase allocation
  enforced as static source rate limits;
* ``"backpressure-shared"`` / ``"backpressure-perdest"`` — queueing-
  only modes (no rate adaptation) used by the Figure-1 isolation
  experiment.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.maxmin_reference import weighted_maxmin_rates
from repro.analysis.resilience import per_arrival_convergence
from repro.analysis.throughput import effective_network_throughput
from repro.baselines.dcf_plain import plain_dcf_buffer
from repro.baselines.two_phase import two_phase_rates
from repro.buffers.backpressure import OracleGate, OverhearingGate
from repro.buffers.queues import (
    BufferPolicy,
    PerDestinationBuffer,
    PerFlowBuffer,
    SharedBackpressureBuffer,
)
from repro.churn.engine import ChurnEngine
from repro.churn.spec import ChurnSpec
from repro.core.config import GmpConfig
from repro.core.protocol import GmpProtocol
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.invariants import audit_run
from repro.faults.schedule import FaultSchedule
from repro.flows.flow import Flow, FlowSet
from repro.flows.traffic import (
    CbrSource,
    OnOffSource,
    ParetoOnOffSource,
    PoissonSource,
    TrafficSource,
)
from repro.mac.dcf import DcfConfig, DcfMac
from repro.mac.fluid import FluidMac
from repro.mac.phy import DEFAULT_PHY, PhyProfile
from repro.routing.distance_vector import distance_vector_routes
from repro.routing.geographic import greedy_geographic_routes
from repro.routing.link_state import link_state_routes
from repro.routing.validate import assert_acyclic
from repro.scenarios.figures import Scenario
from repro.scenarios.results import RunResult
from repro.sim.kernel import Simulator
from repro.sim.replay import ReplayReport, ReplaySanitizer, diff_sanitizers
from repro.sim.trace import TraceCollector
from repro.stack import NodeStack
from repro.telemetry import Telemetry
from repro.topology.cliques import maximal_cliques
from repro.topology.contention import ContentionGraph

TRAFFIC_MODELS = {
    "cbr": CbrSource,
    "poisson": PoissonSource,
    "onoff": OnOffSource,
    "pareto-onoff": ParetoOnOffSource,
}

ROUTING_PROTOCOLS = {
    "link_state": link_state_routes,
    "distance_vector": distance_vector_routes,
    "geographic": greedy_geographic_routes,
}

PROTOCOLS = ("gmp", "802.11", "2pp", "backpressure-shared", "backpressure-perdest")
SUBSTRATES = ("dcf", "fluid")


class LiveRunHandle:
    """The live-control surface of one in-flight :func:`run_scenario`.

    Built by the runner when a ``control`` monitor is attached and
    handed to it via ``control.bind(sim, handle)``.  Mutating methods
    (:meth:`add_flow`, :meth:`remove_flow`, :meth:`inject_fault`,
    :meth:`stop`) steer the simulation and must only be called from
    kernel context — a callback or a monitor tick on the simulation
    thread; the service layer guarantees that by queueing commands and
    applying them at ticks.  Read methods are safe to call from other
    threads (they only read live state), with the usual monitoring
    caveat that a concurrent mutation can surface as a transient
    ``RuntimeError`` the reader should retry.
    """

    def __init__(
        self,
        *,
        sim: Simulator,
        scenario: Scenario,
        protocol: str,
        substrate: str,
        duration: float,
        warmup: float,
        seed: int,
        rate_interval: float | None,
        flows: FlowSet,
        all_flows: dict[int, Flow],
        stacks: dict[int, NodeStack],
        routes: Any,
        engine: ChurnEngine,
        injector: FaultInjector,
        gmp: GmpProtocol | None,
        telemetry: Telemetry | None,
        stream: Any,
        health: Any,
        capacity_pps: float,
        cliques: Any,
        warm_counts: dict[int, int],
        interval_rates: dict[int, list[float]],
        interval_bounds: list[float],
    ) -> None:
        self.sim = sim
        self.scenario = scenario
        self.protocol = protocol
        self.substrate = substrate
        self.duration = duration
        self.warmup = warmup
        self.seed = seed
        self.rate_interval = rate_interval
        self.flows = flows
        self.all_flows = all_flows
        self.stacks = stacks
        self.routes = routes
        self.engine = engine
        self.injector = injector
        self.gmp = gmp
        self.telemetry = telemetry
        self.stream = stream
        self.health = health
        self.capacity_pps = capacity_pps
        self._cliques = cliques  # zero-arg callable (lazy shared cache)
        self._warm_counts = warm_counts
        self._interval_rates = interval_rates
        self._interval_bounds = interval_bounds
        self._maxmin_cache: dict[str, Any] = {}

    # --- status reads -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def events_processed(self) -> int:
        return self.sim.events_processed

    @property
    def queue_depth(self) -> int:
        return self.sim.pending_events

    def run_info(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.name,
            "protocol": self.protocol,
            "substrate": self.substrate,
            "duration": self.duration,
            "warmup": self.warmup,
            "seed": self.seed,
            "rate_interval": self.rate_interval,
        }

    # --- live measurement -------------------------------------------------------

    def live_flow_rates(self) -> dict[int, float]:
        """Delivered rate per flow measured exactly like the end-of-run
        rates, but over each flow's lifetime *so far*."""
        now = self.sim.now
        lifetimes = self.engine.live_lifetimes()
        rates: dict[int, float] = {}
        for flow_id in sorted(self.all_flows):
            flow = self.all_flows[flow_id]
            sink = self.stacks[flow.destination]
            total = sink.delivered.get(flow_id, 0)
            start, end = lifetimes.get(flow_id, (0.0, now))
            end = min(end, now)
            if start < self.warmup < end:
                delivered = total - self._warm_counts.get(flow_id, 0)
                window = end - self.warmup
            else:
                delivered = total
                window = end - start
            rates[flow_id] = delivered / window if window > 0 else 0.0
        return rates

    def flows_summary(self) -> list[dict[str, Any]]:
        """One dict per flow that ever existed this run (live flows are
        flagged), with live measured rate and the GMP rate limit."""
        rates = self.live_flow_rates()
        lifetimes = self.engine.live_lifetimes()
        limits = self.gmp.rate_limits() if self.gmp is not None else {}
        live_ids = {flow.flow_id for flow in self.flows}
        summary = []
        for flow_id in sorted(self.all_flows):
            flow = self.all_flows[flow_id]
            start, end = lifetimes.get(flow_id, (0.0, self.duration))
            summary.append(
                {
                    "flow_id": flow_id,
                    "source": flow.source,
                    "destination": flow.destination,
                    "weight": flow.weight,
                    "desired_rate": flow.desired_rate,
                    "live": flow_id in live_ids,
                    "arrived": start,
                    "departed": None if flow_id in live_ids else end,
                    "rate": rates.get(flow_id, 0.0),
                    "rate_limit": limits.get(flow_id),
                    "hops": self.routes.hop_count(flow.source, flow.destination),
                }
            )
        return summary

    def partial_result(self) -> RunResult:
        """A mid-run :class:`RunResult` carrying everything the
        per-flow explainer (:func:`repro.fidelity.explain.explain_flow`)
        needs: live rates, the maxmin solution over the *current* flow
        set, cliques, capacity, paths, weights, and rate limits."""
        extras: dict[str, Any] = {}
        if self.telemetry is not None and self.telemetry.enabled:
            extras["telemetry"] = self.telemetry
        extras["flow_paths"] = {
            flow_id: list(
                self.routes.path_links(flow.source, flow.destination)
            )
            for flow_id, flow in sorted(self.all_flows.items())
        }
        extras["flow_weights"] = {
            flow_id: flow.weight
            for flow_id, flow in sorted(self.all_flows.items())
        }
        if self.gmp is not None:
            key = tuple(sorted(flow.flow_id for flow in self.flows))
            if self._maxmin_cache.get("key") != key:
                solution = weighted_maxmin_rates(
                    self.flows, self.routes, self._cliques(), self.capacity_pps
                )
                self._maxmin_cache["key"] = key
                self._maxmin_cache["solution"] = solution
            extras["maxmin_solution"] = self._maxmin_cache["solution"]
            extras["maxmin_reference"] = dict(
                self._maxmin_cache["solution"].rates
            )
            extras["rate_limits"] = self.gmp.rate_limits()
        extras["cliques"] = self._cliques()
        extras["capacity_pps"] = self.capacity_pps
        return RunResult(
            scenario=self.scenario.name,
            protocol=self.protocol,
            substrate=self.substrate,
            duration=self.duration,
            warmup=self.warmup,
            seed=self.seed,
            flow_rates=self.live_flow_rates(),
            hop_counts={
                flow_id: self.routes.hop_count(flow.source, flow.destination)
                for flow_id, flow in sorted(self.all_flows.items())
            },
            effective_throughput=0.0,
            rate_interval=self.rate_interval,
            interval_rates=self._interval_rates,
            interval_bounds=self._interval_bounds,
            flow_lifetimes=self.engine.live_lifetimes(),
            extras=extras,
        )

    # --- mutations (kernel context only) ----------------------------------------

    def next_flow_id(self) -> int:
        """The smallest id never used by any flow of this run."""
        return max(self.all_flows, default=0) + 1

    def add_flow(
        self,
        source: int,
        destination: int,
        *,
        flow_id: int | None = None,
        weight: float = 1.0,
        desired_rate: float = 800.0,
        packet_bytes: int = 1024,
    ) -> Flow:
        """Graft a new flow into the run right now; returns the flow
        (with its assigned id when ``flow_id`` was omitted)."""
        if flow_id is None:
            flow_id = self.next_flow_id()
        if flow_id in self.all_flows:
            raise ConfigError(
                f"flow id {flow_id} was already used this run"
            )
        flow = Flow(
            flow_id=flow_id,
            source=source,
            destination=destination,
            weight=weight,
            desired_rate=desired_rate,
            packet_bytes=packet_bytes,
        )
        self.engine.inject_arrival(flow)
        return flow

    def remove_flow(self, flow_id: int) -> None:
        """Retire a live flow right now."""
        self.engine.inject_departure(flow_id)

    def inject_fault(self, event: Any) -> str:
        """Apply one :class:`~repro.faults.schedule.FaultEvent` now."""
        return self.injector.inject(event)

    def stop(self) -> None:
        """Stop the run after the in-flight event (graceful shutdown)."""
        self.sim.stop()


def run_scenario(
    scenario: Scenario,
    *,
    protocol: str = "gmp",
    substrate: str = "dcf",
    duration: float = 60.0,
    warmup: float | None = None,
    seed: int = 0,
    gmp_config: GmpConfig | None = None,
    phy: PhyProfile = DEFAULT_PHY,
    dcf_config: DcfConfig | None = None,
    capacity_pps: float | None = None,
    fluid_round: float = 0.02,
    traffic: str = "cbr",
    routing: str = "link_state",
    faults: FaultSchedule | None = None,
    churn: ChurnSpec | None = None,
    rate_interval: float | None = None,
    check_invariants: bool | None = None,
    max_events: int | None = None,
    stall_limit: int | None = 1_000_000,
    wall_deadline: float | None = None,
    telemetry: Telemetry | None = None,
    trace: TraceCollector | None = None,
    sanitizer: ReplaySanitizer | None = None,
    stream: Any = None,
    health: Any = None,
    control: Any = None,
    pace: float | None = None,
) -> RunResult:
    """Simulate one session and measure end-to-end flow rates.

    Args:
        scenario: topology + flows (see :mod:`repro.scenarios.figures`).
        protocol: one of :data:`PROTOCOLS`.
        substrate: "dcf" (packet-level 802.11) or "fluid".
        duration: simulated seconds.
        warmup: seconds excluded from rate measurement; defaults to
            ``duration / 3``.
        seed: RNG seed (runs are fully deterministic given it).
        gmp_config: GMP parameters (default: the paper's).
        phy: PHY profile (timing + capacity estimates).
        dcf_config: DCF tunables (EIFS ablation etc.).
        capacity_pps: clique capacity for the fluid substrate and the
            2PP allocation; defaults to the PHY saturation estimate.
        fluid_round: fluid substrate round interval.
        traffic: arrival process at the sources — "cbr" (the paper's
            workload), "poisson", "onoff", or "pareto-onoff"
            (heavy-tailed phase switching).
        routing: how routing tables are built — "link_state" (default),
            "distance_vector", or "geographic" (GPSR-style greedy).
        faults: optional fault schedule (node churn, link degradation,
            control-plane loss) armed on the assembled stack; the
            applied-fault log lands in ``extras["faults"]``.
        churn: optional dynamic-workload spec
            (:class:`~repro.churn.spec.ChurnSpec`): flows arrive and
            depart mid-run, driven by deterministic RNG streams.  The
            scenario's static flow set is copied, not mutated, so the
            same :class:`Scenario` object replays identically.  The
            :class:`~repro.churn.engine.ChurnReport` lands in
            ``extras["churn"]``; per-flow (arrival, departure) windows
            in ``RunResult.flow_lifetimes``; per-arrival convergence
            times in ``extras["per_arrival_convergence"]``.  Not
            supported with the static 2PP allocation.
        rate_interval: if set, record per-flow delivered rates over
            consecutive windows of this many seconds (the time series
            the resilience metrics consume).  A fault or churn run
            defaults it to 1.0 s.
        check_invariants: run the end-of-run packet-conservation audit
            and raise :class:`~repro.errors.InvariantError` on any
            violation.  ``None`` (default) enables the strict audit on
            the fluid substrate only — the packet-level DCF can
            legitimately duplicate a delivery on ACK loss, so there
            only a relaxed (sign-check) audit is stored in
            ``extras["invariants"]``.
        max_events: optional kernel watchdog — hard event budget.
        stall_limit: kernel watchdog — maximum events dispatched
            without simulated time advancing (default one million;
            None disables).
        wall_deadline: kernel watchdog — real seconds the run may take.
        telemetry: optional :class:`~repro.telemetry.Telemetry`
            instance.  When enabled, the whole stack instruments itself
            through it; the same instance (finalized) lands in
            ``extras["telemetry"]`` and, for GMP runs, the centralized
            maxmin reference rates land in ``extras["maxmin_reference"]``
            for the convergence inspector.  Telemetry is passive — it
            never schedules events — so enabling it does not change
            what the simulation does.
        trace: optional :class:`~repro.sim.trace.TraceCollector`
            attached to the kernel; stored in ``extras["trace"]``.
        sanitizer: optional :class:`~repro.sim.replay.ReplaySanitizer`
            attached to the kernel.  Every dispatched event is folded
            into its rolling digest (passively — observation never
            schedules); the final digest lands in
            ``extras["replay_digest"]``.  :func:`replay_check` runs a
            scenario twice and diffs two sanitizers.
        stream: optional streaming publisher (duck-typed to avoid a
            layering cycle — :class:`repro.obs.stream.StreamPublisher`
            in practice; it must wrap the same ``telemetry`` instance).
            Bound to the kernel as a passive run monitor before the
            run and closed after telemetry is finalized, so killed or
            wedged runs leave their telemetry in the stream's sinks.
        health: optional in-run health monitor (duck-typed —
            :class:`repro.obs.health.HealthMonitor` in practice).
            Ticked by the kernel on its own cadence, it evaluates
            liveness probes and the anomaly detectors over a partial
            result snapshot mid-run; the final
            :class:`~repro.obs.health.AlertLog` lands in
            ``extras["health"]``.  Neither hook schedules events or
            draws randomness: the dispatched event sequence (and the
            replay digest) is identical with or without them.
        control: optional service-mode controller (duck-typed —
            :class:`repro.obs.serve.ServeController` in practice).  The
            runner assembles a command-driven churn engine and a live
            fault injector, wraps them (plus live measurement and the
            explainer inputs) in a :class:`LiveRunHandle`, and calls
            ``control.bind(sim, handle)`` before the run.  The
            controller is a kernel run monitor: commands it applies at
            monitor ticks (flow arrivals/departures, faults, stop) *do*
            steer the simulation — but only from tick context, so an
            identical command sequence applied at identical tick times
            reproduces the identical run (the replay story of
            :mod:`repro.obs.serve`).  The engine's report lands in
            ``extras["control_report"]``; a fault or control run
            defaults ``rate_interval`` to 1.0 s.  Not supported with
            the static 2PP allocation.
        pace: ceiling on simulated seconds per wall-clock second
            (forwarded to :meth:`~repro.sim.kernel.Simulator.run`);
            ``None`` is free-running.  Pacing only sleeps — it never
            changes what the simulation does.

    Raises:
        ConfigError: on unknown protocol/substrate names, inconsistent
            durations, or a bad ``rate_interval``.
        FaultError: if ``faults`` targets unknown nodes or needs hooks
            the substrate lacks.
        InvariantError: if the end-of-run audit fails.
        SimulationError: when a kernel watchdog trips.
    """
    if protocol not in PROTOCOLS:
        raise ConfigError(f"unknown protocol {protocol!r}; pick from {PROTOCOLS}")
    if traffic not in TRAFFIC_MODELS:
        raise ConfigError(
            f"unknown traffic model {traffic!r}; pick from {tuple(TRAFFIC_MODELS)}"
        )
    if routing not in ROUTING_PROTOCOLS:
        raise ConfigError(
            f"unknown routing {routing!r}; pick from {tuple(ROUTING_PROTOCOLS)}"
        )
    if substrate not in SUBSTRATES:
        raise ConfigError(f"unknown substrate {substrate!r}; pick from {SUBSTRATES}")
    if duration <= 0:
        raise ConfigError(f"duration must be positive: {duration}")
    if warmup is None:
        warmup = duration / 3.0
    if not 0 <= warmup < duration:
        raise ConfigError(f"warmup {warmup} must lie within [0, {duration})")
    if (churn is not None or control is not None) and protocol == "2pp":
        raise ConfigError(
            "2pp enforces a static precomputed allocation; it cannot "
            "take a dynamic workload (churn or live control)"
        )
    if rate_interval is None and (
        faults is not None or churn is not None or control is not None
    ):
        rate_interval = 1.0
    if rate_interval is not None and not 0 < rate_interval <= duration:
        raise ConfigError(
            f"rate_interval {rate_interval} must lie within (0, {duration}]"
        )
    if check_invariants is None:
        check_invariants = substrate == "fluid"

    gmp_config = gmp_config or GmpConfig()
    topology = scenario.topology
    flows = scenario.flows
    if churn is not None or control is not None:
        # The engine mutates the flow set as flows come and go; work on
        # a copy so the Scenario object itself replays byte-identically
        # (replay_check runs it twice).
        flows = FlowSet(list(scenario.flows))
    routes = ROUTING_PROTOCOLS[routing](topology)
    assert_acyclic(routes, flows.destinations())
    if churn is not None or control is not None:
        # Any routable node can become a dynamic flow's destination.
        assert_acyclic(routes, sorted(topology.node_ids))
    # Every flow that ever existed this run, static or churned; the
    # measurement/sampling paths read it because departed flows leave
    # the live set.
    all_flows: dict[int, Flow] = {flow.flow_id: flow for flow in flows}

    sim = Simulator(
        seed=seed, trace=trace, telemetry=telemetry, sanitizer=sanitizer
    )
    if capacity_pps is None:
        packet_bytes = max(flow.packet_bytes for flow in flows)
        capacity_pps = phy.saturation_rate(packet_bytes, contenders=3)

    # The maximal-clique enumeration is shared by every consumer of the
    # clique-capacity model (fluid MAC, 2PP, maxmin reference) and is
    # computed lazily at most once per run.
    cliques_cache: list = []

    def topology_cliques():
        if not cliques_cache:
            cliques_cache.append(maximal_cliques(ContentionGraph(topology)))
        return cliques_cache[0]

    if substrate == "dcf":
        mac = DcfMac(sim, topology, phy=phy, config=dcf_config or DcfConfig())
    else:
        mac = FluidMac(
            sim,
            topology,
            round_interval=fluid_round,
            capacity_pps=capacity_pps,
            rate_caps=scenario.rate_caps,
            cliques=topology_cliques(),
        )

    stacks: dict[int, NodeStack] = {}

    def oracle_lookup(neighbor: int, dest: int) -> bool:
        buffer = stacks[neighbor].buffer
        return buffer.has_free(dest)  # type: ignore[attr-defined]

    def make_gate():
        if substrate == "fluid":
            return OracleGate(oracle_lookup)
        return OverhearingGate(stale_timeout=gmp_config.stale_timeout)

    def make_buffer(node_id: int) -> BufferPolicy:
        def next_hop(dest: int, node_id=node_id) -> int:
            return routes.next_hop(node_id, dest)

        if protocol == "802.11":
            return plain_dcf_buffer(node_id, next_hop)
        if protocol == "2pp":
            return PerFlowBuffer(node_id, next_hop, per_flow_capacity=10)
        if protocol == "backpressure-shared":
            return SharedBackpressureBuffer(
                node_id, next_hop, make_gate(), capacity=gmp_config.queue_capacity
            )
        # gmp and backpressure-perdest
        return PerDestinationBuffer(
            node_id,
            next_hop,
            make_gate(),
            per_dest_capacity=gmp_config.queue_capacity,
            telemetry=telemetry,
        )

    for node_id in topology.node_ids:
        stack = NodeStack(
            sim,
            node_id,
            make_buffer(node_id),
            mac,
            stale_retry=gmp_config.stale_timeout,
        )
        stack.attach()
        stacks[node_id] = stack

    gmp: GmpProtocol | None = None
    if protocol == "gmp":
        gmp = GmpProtocol(
            sim, topology, routes, flows, mac, stacks, config=gmp_config
        )
        for stack in stacks.values():
            stack.observer = gmp.observer()

    sources: dict[int, TrafficSource] = {}
    source_cls = TRAFFIC_MODELS[traffic]
    for flow in flows:
        stack = stacks[flow.source]
        on_generate = gmp.stamp if gmp is not None else None
        source = source_cls(sim, flow, stack.admit_local, on_generate=on_generate)
        sources[flow.flow_id] = source
        if gmp is not None:
            gmp.register_source(flow.flow_id, source)

    extras: dict[str, object] = {}
    if protocol == "2pp":
        allocation = two_phase_rates(flows, routes, topology_cliques(), capacity_pps)
        for flow_id, rate in allocation.rates.items():
            sources[flow_id].set_rate_limit(max(rate, 1.0))
        extras["two_phase"] = allocation

    injector: FaultInjector | None = None
    if faults is not None or control is not None:
        # A controlled run gets an injector even with no schedule: the
        # control plane applies faults live through it.
        schedule = faults if faults is not None else FaultSchedule()
        if faults is not None:
            faults.validate_within(duration)
        injector = FaultInjector(
            sim, schedule, mac=mac, stacks=stacks, sources=sources, gmp=gmp
        )
        if faults is not None:
            injector.arm()

    def make_dynamic_source(model: str):
        def factory(flow: Flow) -> TrafficSource:
            stack = stacks[flow.source]
            on_generate = gmp.stamp if gmp is not None else None
            return TRAFFIC_MODELS[model](
                sim, flow, stack.admit_local, on_generate=on_generate
            )

        return factory

    churn_engine: ChurnEngine | None = None
    if churn is not None:
        churn_engine = ChurnEngine(
            sim,
            churn,
            routes=routes,
            flows=flows,
            all_flows=all_flows,
            stacks=stacks,
            sources=sources,
            make_source=make_dynamic_source(churn.traffic),
            gmp=gmp,
            period=gmp_config.period,
        )
        churn_engine.arm(duration)

    # Live-control flow arrivals/departures go through the same engine
    # machinery as trace churn; with no churn spec, a command-driven
    # engine (spec=None) carries them alone.
    dynamic_engine: ChurnEngine | None = churn_engine
    if control is not None and dynamic_engine is None:
        dynamic_engine = ChurnEngine(
            sim,
            None,
            routes=routes,
            flows=flows,
            all_flows=all_flows,
            stacks=stacks,
            sources=sources,
            make_source=make_dynamic_source(traffic),
            gmp=gmp,
            period=gmp_config.period,
            duration=duration,
        )

    mac.start()
    if gmp is not None:
        gmp.start()
    jitter = sim.rng.stream("runner.start_jitter")
    for flow_id in sorted(sources):
        flow = flows.get(flow_id)
        offset = float(jitter.uniform(0.0, 1.0 / flow.desired_rate))
        sources[flow_id].start(offset=offset)

    # Snapshot deliveries at the end of warmup, measure until the end.
    warm_counts: dict[int, int] = {}

    def snapshot() -> None:
        for flow_id, flow in all_flows.items():
            sink = stacks[flow.destination]
            warm_counts[flow_id] = sink.delivered.get(flow_id, 0)

    sim.call_at(warmup, snapshot, tag="runner.warmup")

    # Per-interval delivered-rate series (fault-transient resolution).
    # Each sample divides by the *actual* window width, so the final
    # partial window (duration not a multiple of rate_interval) is not
    # understated; the window edges land in ``interval_bounds``.
    interval_rates: dict[int, list[float]] = {}
    interval_bounds: list[float] = []
    if rate_interval is not None:
        interval_rates = {flow_id: [] for flow_id in all_flows}
        counts: dict[int, int] = {flow_id: 0 for flow_id in all_flows}
        sample_state = {"time": 0.0}

        def sample() -> None:
            now = sim.now
            elapsed = now - sample_state["time"]
            if elapsed <= 0:
                return
            emitted = len(interval_bounds)
            for flow_id in sorted(all_flows):
                flow = all_flows[flow_id]
                series = interval_rates.setdefault(flow_id, [])
                if len(series) < emitted:
                    # The flow arrived mid-run: zero-pad the windows
                    # from before its arrival so every series aligns
                    # with ``interval_bounds``.
                    series.extend([0.0] * (emitted - len(series)))
                sink = stacks[flow.destination]
                total = sink.delivered.get(flow_id, 0)
                delta = total - counts.get(flow_id, 0)
                counts[flow_id] = total
                series.append(delta / elapsed)
            sample_state["time"] = now
            interval_bounds.append(now)

        # Multiply instead of accumulating so float drift cannot merge
        # or split the final window.
        index = 1
        while index * rate_interval < duration - 1e-9:
            sim.call_at(index * rate_interval, sample, tag="runner.sample")
            index += 1
        sim.call_at(duration, sample, tag="runner.sample")

    if stream is not None:
        stream.bind(sim)
    if health is not None:
        # The monitor scans a *partial* result each tick.  Everything
        # the snapshot touches is plain live state — no RNG, no event
        # scheduling — so health checks cannot perturb the run.
        reference_cache: dict[str, Any] = {}

        def health_snapshot() -> RunResult:
            snapshot_extras: dict[str, Any] = {}
            if telemetry is not None and telemetry.enabled:
                snapshot_extras["telemetry"] = telemetry
            if gmp is not None:
                key = tuple(sorted(flow.flow_id for flow in flows))
                if reference_cache.get("key") != key:
                    reference_cache["key"] = key
                    reference_cache["rates"] = dict(
                        weighted_maxmin_rates(
                            flows, routes, topology_cliques(), capacity_pps
                        ).rates
                    )
                snapshot_extras["maxmin_reference"] = reference_cache["rates"]
            # duration is the *planned* duration, not sim.now: the
            # detectors derive their warmup cutoffs and window grids
            # from it, and a fixed grid keeps mid-run findings a prefix
            # of the end-of-run scan instead of a drifting-window
            # superset (which false-positives on clean runs).
            return RunResult(
                scenario=scenario.name,
                protocol=protocol,
                substrate=substrate,
                duration=duration,
                warmup=warmup,
                seed=seed,
                flow_rates={},
                hop_counts={},
                effective_throughput=0.0,
                rate_interval=rate_interval,
                interval_rates=interval_rates,
                interval_bounds=interval_bounds,
                flow_lifetimes=(
                    dynamic_engine.live_lifetimes()
                    if dynamic_engine is not None
                    else {}
                ),
                extras=snapshot_extras,
            )

        health.bind(sim, health_snapshot)

    if control is not None:
        handle = LiveRunHandle(
            sim=sim,
            scenario=scenario,
            protocol=protocol,
            substrate=substrate,
            duration=duration,
            warmup=warmup,
            seed=seed,
            rate_interval=rate_interval,
            flows=flows,
            all_flows=all_flows,
            stacks=stacks,
            routes=routes,
            engine=dynamic_engine,
            injector=injector,
            gmp=gmp,
            telemetry=telemetry,
            stream=stream,
            health=health,
            capacity_pps=capacity_pps,
            cliques=topology_cliques,
            warm_counts=warm_counts,
            interval_rates=interval_rates,
            interval_bounds=interval_bounds,
        )
        control.bind(sim, handle)

    sim.run(
        until=duration,
        max_events=max_events,
        stall_limit=stall_limit,
        wall_deadline=wall_deadline,
        pace=pace,
    )
    if control is not None:
        finalize_control = getattr(control, "finalize", None)
        if finalize_control is not None:
            finalize_control(sim.now)

    extras["events_processed"] = sim.events_processed
    if sanitizer is not None:
        extras["replay_digest"] = sanitizer.hexdigest()
    if telemetry is not None and telemetry.enabled:
        telemetry.finalize(sim.now)
        telemetry.run_info.update(
            {
                "scenario": scenario.name,
                "protocol": protocol,
                "substrate": substrate,
                "duration": duration,
                "warmup": warmup,
                "seed": seed,
            }
        )
        extras["telemetry"] = telemetry
        if gmp is not None:
            reference = weighted_maxmin_rates(
                flows,
                routes,
                topology_cliques(),
                capacity_pps,
            )
            extras["maxmin_reference"] = dict(reference.rates)
            # The full solution (bottleneck clique per flow, clique
            # usage) plus the clique list and capacity feed the
            # per-flow rate explainer (repro.fidelity.explain).
            extras["maxmin_solution"] = reference
            extras["cliques"] = topology_cliques()
            extras["capacity_pps"] = capacity_pps
    if trace is not None:
        extras["trace"] = trace
    if stream is not None:
        # After telemetry.finalize and the run_info update, so the
        # streamed header and snapshot block carry exactly what the
        # end-of-run JSONL export would.
        stream.close(sim.now)
    if health is not None:
        extras["health"] = health.finalize(sim.now)

    churn_report = (
        dynamic_engine.finalize() if dynamic_engine is not None else None
    )
    lifetimes: dict[int, tuple[float, float]] = (
        dict(churn_report.lifetimes) if churn_report is not None else {}
    )

    flow_rates: dict[int, float] = {}
    hop_counts: dict[int, int] = {}
    flow_delays: dict[int, float] = {}
    flow_paths: dict[int, list] = {}
    for flow_id in sorted(all_flows):
        flow = all_flows[flow_id]
        flow_paths[flow_id] = list(
            routes.path_links(flow.source, flow.destination)
        )
        sink = stacks[flow.destination]
        total = sink.delivered.get(flow_id, 0)
        # Static flows measure over [warmup, duration] as always; a
        # churned flow measures over its own lifetime (no warmup
        # subtraction once it arrived after warmup, no post-departure
        # window once it left early).
        start, end = lifetimes.get(flow_id, (0.0, duration))
        if start < warmup < end:
            delivered = total - warm_counts.get(flow_id, 0)
            window = end - warmup
        else:
            delivered = total
            window = end - start
        flow_rates[flow_id] = delivered / window if window > 0 else 0.0
        hop_counts[flow_id] = routes.hop_count(flow.source, flow.destination)
        flow_delays[flow_id] = (
            sink.delay_sum.get(flow_id, 0.0) / total if total else float("nan")
        )
    extras["flow_delays"] = flow_delays
    extras["flow_paths"] = flow_paths
    extras["flow_weights"] = {
        flow_id: flow.weight for flow_id, flow in sorted(all_flows.items())
    }
    if churn_report is not None:
        if churn is not None:
            extras["churn"] = churn_report
        else:
            extras["control_report"] = churn_report
        if rate_interval and interval_rates:
            # A flow grafted moments before the run ended (e.g. via a
            # served session's shutdown) may have no completed
            # measurement window; it cannot be convergence-scored.
            arrivals_only = {
                flow_id: life
                for flow_id, life in lifetimes.items()
                if life[0] > 0.0 and flow_id in interval_rates
            }
            extras["per_arrival_convergence"] = per_arrival_convergence(
                interval_rates,
                rate_interval,
                lifetimes=arrivals_only,
                bounds=interval_bounds,
            )

    buffer_drops = sum(stack.buffer.drops for stack in stacks.values())
    mac_drops = sum(stack.mac_drops for stack in stacks.values())

    if gmp is not None:
        extras["rate_limits"] = gmp.rate_limits()
        extras["limit_history"] = {
            flow_id: gmp.limit_history(flow_id) for flow_id in sorted(all_flows)
        }
        extras["requests_issued"] = len(gmp.requests_issued)
        extras["violations_found"] = gmp.violations_found
        extras["control_broadcast_cost"] = (
            gmp.scope.link_state_broadcasts + gmp.scope.notice_broadcasts
        )
        extras["control_requests_dropped"] = gmp.control_requests_dropped

    if injector is not None:
        extras["faults"] = list(injector.fault_log)
        extras["crash_losses"] = {
            node_id: dict(stack.crash_losses)
            for node_id, stack in stacks.items()
            if stack.crash_losses
        }

    report = audit_run(
        flows=flows,
        sources=sources,
        stacks=stacks,
        mac=mac,
        rates=flow_rates,
        strict=check_invariants,
    )
    extras["invariants"] = report
    if check_invariants:
        report.check()

    measured_flows = (
        FlowSet(list(all_flows.values()))
        if churn is not None or control is not None
        else flows
    )
    return RunResult(
        scenario=scenario.name,
        protocol=protocol,
        substrate=substrate,
        duration=duration,
        warmup=warmup,
        seed=seed,
        flow_rates=flow_rates,
        hop_counts=hop_counts,
        effective_throughput=effective_network_throughput(
            flow_rates, measured_flows, routes
        ),
        buffer_drops=buffer_drops,
        mac_drops=mac_drops,
        rate_interval=rate_interval,
        interval_rates=interval_rates,
        interval_bounds=interval_bounds,
        flow_lifetimes=lifetimes,
        extras=extras,
    )


def replay_check(
    scenario: Scenario,
    *,
    journal_limit: int | None = None,
    **kwargs: object,
) -> tuple[ReplayReport, RunResult, RunResult]:
    """Run ``scenario`` twice with identical arguments and diff the
    replay digests.

    A matched report proves the two runs dispatched the identical
    event sequence; a mismatch names the first divergent event (index,
    timestamp, tag) — the symptom of an unseeded draw, a wall-clock
    read, or hash-order iteration feeding the schedule.

    Args:
        scenario: the scenario to run (twice).
        journal_limit: per-run event journal cap (None: sanitizer
            default).
        **kwargs: forwarded verbatim to both :func:`run_scenario`
            calls.  ``telemetry``/``trace`` instances accumulate per
            run, so pass factories' products only when you know they
            tolerate two runs; plain deterministic kwargs (protocol,
            substrate, duration, seed, ...) are the intended use.

    Returns:
        ``(report, first_result, second_result)``.
    """
    if "sanitizer" in kwargs:
        raise ConfigError("replay_check manages its own sanitizers")
    limits = (
        {"journal_limit": journal_limit} if journal_limit is not None else {}
    )
    first = ReplaySanitizer(**limits)
    second = ReplaySanitizer(**limits)
    result_first = run_scenario(scenario, sanitizer=first, **kwargs)  # type: ignore[arg-type]
    result_second = run_scenario(scenario, sanitizer=second, **kwargs)  # type: ignore[arg-type]
    return diff_sanitizers(first, second), result_first, result_second
