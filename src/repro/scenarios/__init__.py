"""Scenario layer: the paper's evaluation topologies and the runner
that assembles a full stack (topology → routing → buffers → MAC →
protocol → traffic) and collects results."""

from repro.scenarios.figures import (
    Scenario,
    figure1,
    figure2,
    figure3,
    figure4,
)
from repro.scenarios.results import RunResult
from repro.scenarios.runner import run_scenario

__all__ = [
    "Scenario",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "RunResult",
    "run_scenario",
]
