"""Run results.

A :class:`RunResult` carries everything the paper's tables report —
per-flow end-to-end rates, the effective network throughput ``U``, and
the two fairness indices — plus diagnostics (drops, protocol request
counts, rate-limit trajectories).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.fairness import (
    equality_fairness_index,
    maxmin_fairness_index,
)
from repro.analysis.report import format_table
from repro.flows.flow import FlowSet


@dataclass
class RunResult:
    """Outcome of one simulated session.

    Attributes:
        scenario: scenario name.
        protocol: "gmp", "802.11", "2pp", or a queueing-only mode.
        substrate: "dcf" or "fluid".
        duration: simulated seconds.
        warmup: seconds excluded from rate measurement.
        seed: RNG seed.
        flow_rates: delivered packets/second per flow over
            ``[warmup, duration]``.
        hop_counts: routing-path hop count per flow.
        effective_throughput: ``U = sum r(f) * l_f``.
        buffer_drops: packets lost to queue admission network-wide.
        mac_drops: packets discarded by MAC retry exhaustion.
        rate_interval: width in seconds of the per-interval rate
            samples, or None when no time series was recorded.
        interval_rates: per flow, delivered packets/second in each
            consecutive ``rate_interval`` window from t=0; used by
            the resilience metrics to time fault transients.  The last
            window may be *partial* (the run ended mid-window); its
            rate divides by the actual window width, and the true edges
            are in ``interval_bounds``.
        interval_bounds: end time of each interval-rate window (sample
            ``j`` covers ``(interval_bounds[j-1], interval_bounds[j]]``
            with an implicit leading 0.0); empty when no time series
            was recorded.
        flow_lifetimes: flow id → (arrival, departure) simulated times
            for flows that did not span the whole run (dynamic
            workloads).  A flow absent from this map lived from 0 to
            ``duration``; its rate excludes warmup as usual, while a
            churned flow's rate is measured over its lifetime window.
        extras: protocol-specific diagnostics (e.g. GMP rate-limit
            history, 2PP allocation, fault log, invariant report, the
            telemetry handle, the maxmin reference rates, the churn
            report and per-arrival convergence times).
    """

    scenario: str
    protocol: str
    substrate: str
    duration: float
    warmup: float
    seed: int
    flow_rates: dict[int, float]
    hop_counts: dict[int, int]
    effective_throughput: float
    buffer_drops: int = 0
    mac_drops: int = 0
    rate_interval: float | None = None
    interval_rates: dict[int, list[float]] = field(default_factory=dict)
    interval_bounds: list[float] = field(default_factory=list)
    flow_lifetimes: dict[int, tuple[float, float]] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)

    def lifetime(self, flow_id: int) -> tuple[float, float]:
        """The window a flow was alive: its churn lifetime if it had
        one, else the whole run."""
        return self.flow_lifetimes.get(flow_id, (0.0, self.duration))

    @property
    def i_mm(self) -> float:
        """Maxmin fairness index over raw flow rates."""
        return maxmin_fairness_index(self.flow_rates.values())

    @property
    def i_eq(self) -> float:
        """Chiu–Jain equality index over raw flow rates."""
        return equality_fairness_index(self.flow_rates.values())

    def normalized_rates(self, flows: FlowSet) -> dict[int, float]:
        """Per-flow normalized rates ``r(f)/w(f)``."""
        return {
            flow_id: flows.get(flow_id).normalized(rate)
            for flow_id, rate in self.flow_rates.items()
        }

    def point_summary(self) -> dict[str, Any]:
        """JSON-plain summary of this run — the sweep-cache record.

        Carries everything the fidelity harness and CI consume without
        re-running the scenario: per-flow raw and normalized rates,
        hop counts, weights, and the three paper metrics (``U``,
        ``I_mm``, ``I_eq``).  Flow ids become string keys so a freshly
        computed summary is byte-identical to one recalled from a JSON
        cache.
        """
        weights = self.extras.get("flow_weights", {})
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "substrate": self.substrate,
            "seed": self.seed,
            "duration": self.duration,
            "warmup": self.warmup,
            "flow_rates": {
                str(flow_id): rate
                for flow_id, rate in sorted(self.flow_rates.items())
            },
            "normalized_rates": {
                str(flow_id): rate / weights.get(flow_id, 1.0)
                for flow_id, rate in sorted(self.flow_rates.items())
            },
            "flow_weights": {
                str(flow_id): weights.get(flow_id, 1.0)
                for flow_id in sorted(self.flow_rates)
            },
            "hop_counts": {
                str(flow_id): hops
                for flow_id, hops in sorted(self.hop_counts.items())
            },
            "effective_throughput": self.effective_throughput,
            "i_mm": self.i_mm,
            "i_eq": self.i_eq,
            "buffer_drops": self.buffer_drops,
            "mac_drops": self.mac_drops,
        }

    def summary_table(self) -> str:
        """Paper-style text table of this run."""
        rows: list[list[object]] = [
            [f"f{flow_id}", float(rate)]
            for flow_id, rate in sorted(self.flow_rates.items())
        ]
        rows.append(["U", float(self.effective_throughput)])
        rows.append(["I_mm", float(self.i_mm)])
        rows.append(["I_eq", float(self.i_eq)])
        return format_table(
            ["metric", self.protocol],
            rows,
            title=f"{self.scenario} ({self.substrate}, {self.duration:g}s)",
            float_format="{:.3f}",
        )
