"""City-scale scenario family (ROADMAP item 1).

The paper's evaluation figures stop at ~15 nodes; this module provides
seeded scenarios at 10²–10³ nodes so the substrate's scaling behavior
is exercised end-to-end: uniformly random placements near the
Gupta–Kumar connectivity threshold and clustered (cluster-tree)
placements with a grid backbone, both carrying a Poisson-sized
population of unicast flows at the paper's desirable rate.

Scenario construction is fully deterministic given the seed: node
placement draws through the topology builders' named RNG streams and
the flow population through ``scale.flows``, so the same factory
always yields byte-identical scenarios (the sweep cache and the
benchmark suite both rely on this).

The named factories (``scale100``, ``scale300``, ``scale1000``,
``scale300c``) are registered in the sweep engine's
``SCENARIO_FACTORIES`` and addressable from the CLI like any paper
figure.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.flows.flow import Flow, FlowSet
from repro.scenarios.figures import (
    PAPER_DESIRED_RATE,
    PAPER_PACKET_BYTES,
    Scenario,
)
from repro.sim.rng import RngRegistry
from repro.topology.builders import (
    clustered_topology,
    random_topology,
    relay_count,
)
from repro.topology.network import DEFAULT_CS_RANGE, DEFAULT_TX_RANGE

#: Named stream for the flow population draw.
FLOW_STREAM = "scale.flows"

#: Target mean connectivity degree for random placements.  Random
#: geometric graphs connect w.h.p. once the mean degree clears
#: ``ln n`` (the Gupta–Kumar threshold — ~6.9 at n=1000); 9 keeps the
#: first draw connected most of the time while staying sparse enough
#: to be city-like.
DEFAULT_MEAN_DEGREE = 9.0

#: Mean flows per node for the Poisson flow-population draw.
DEFAULT_FLOWS_PER_NODE = 0.05


def scale_scenario(
    num_nodes: int,
    *,
    seed: int = 7,
    clustered: bool = False,
    mean_degree: float = DEFAULT_MEAN_DEGREE,
    flows_per_node: float = DEFAULT_FLOWS_PER_NODE,
    name: str | None = None,
) -> Scenario:
    """A seeded city-scale scenario with ``num_nodes`` nodes.

    Random mode sizes the square deployment area so the expected
    connectivity degree is ``mean_degree`` (area = ``n·π·tx² /
    mean_degree``); the builder redraws/densifies until connected.
    Clustered mode builds a cluster-tree of ~25-node clusters on a
    grid backbone (connected by construction).

    The flow count is ``max(1, Poisson(num_nodes · flows_per_node))``;
    each flow's source and destination are distinct uniform node
    draws.  All flows want the paper's desirable rate (§7) with unit
    weight.

    Raises:
        ConfigError: on a non-positive node count or rates.
    """
    if num_nodes < 2:
        raise ConfigError(f"scale scenarios need >= 2 nodes, got {num_nodes}")
    if mean_degree <= 0 or flows_per_node <= 0:
        raise ConfigError(
            f"mean_degree ({mean_degree}) and flows_per_node "
            f"({flows_per_node}) must be positive"
        )
    if clustered:
        # Budget ~15 nodes per cluster including that cluster's share
        # of backbone relays, then size clusters with what remains.
        num_clusters = max(2, num_nodes // 15)
        relays = relay_count(num_clusters, 800.0, 220.0)
        cluster_size = max(2, round((num_nodes - relays) / num_clusters))
        topology = clustered_topology(
            num_clusters,
            cluster_size,
            seed=seed,
            tx_range=DEFAULT_TX_RANGE,
            cs_range=DEFAULT_CS_RANGE,
        )
    else:
        side = math.sqrt(
            num_nodes * math.pi * DEFAULT_TX_RANGE**2 / mean_degree
        )
        topology = random_topology(
            num_nodes,
            width=side,
            height=side,
            seed=seed,
            tx_range=DEFAULT_TX_RANGE,
            cs_range=DEFAULT_CS_RANGE,
        )

    rng = RngRegistry(seed).stream(FLOW_STREAM)
    node_ids = topology.node_ids
    count = max(1, int(rng.poisson(len(node_ids) * flows_per_node)))
    flows = FlowSet()
    for flow_id in range(1, count + 1):
        source = int(node_ids[int(rng.integers(len(node_ids)))])
        destination = source
        while destination == source:
            destination = int(node_ids[int(rng.integers(len(node_ids)))])
        flows.add(
            Flow(
                flow_id=flow_id,
                source=source,
                destination=destination,
                weight=1.0,
                desired_rate=PAPER_DESIRED_RATE,
                packet_bytes=PAPER_PACKET_BYTES,
            )
        )

    kind = "clustered" if clustered else "random"
    return Scenario(
        name=name or f"scale{num_nodes}{'c' if clustered else ''}",
        topology=topology,
        flows=flows,
        notes=(
            f"city-scale {kind} topology: {len(node_ids)} nodes, "
            f"{len(flows)} Poisson-population flows, seed {seed}"
        ),
    )


def scale100() -> Scenario:
    """100-node seeded random city-scale scenario."""
    return scale_scenario(100, seed=7)


def scale300() -> Scenario:
    """300-node seeded random city-scale scenario (CI scale smoke)."""
    return scale_scenario(300, seed=7)


def scale1000() -> Scenario:
    """1000-node seeded random city-scale scenario (the < 5 s
    links+contention+cliques build target)."""
    return scale_scenario(1000, seed=7)


def scale300c() -> Scenario:
    """~300-node clustered (cluster-tree) city-scale scenario."""
    return scale_scenario(300, seed=7, clustered=True)
