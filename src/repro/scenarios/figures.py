"""The paper's evaluation topologies (Figures 1–4).

Geometry uses the paper's 250 m transmission range with the classic
550 m carrier-sense/interference range.  Where the paper draws a
topology without coordinates, node placement is chosen so that the
*stated* link and clique structure emerges from the geometry; the
derivations are documented per figure and cross-checked by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.flows.flow import Flow, FlowSet
from repro.topology.network import Link, Topology


@dataclass
class Scenario:
    """A runnable evaluation scenario.

    Attributes:
        name: identifier used in reports.
        topology: node placement and radio ranges.
        flows: the end-to-end flows.
        notes: provenance/derivation notes.
        rate_caps: optional per-directed-link rate ceilings, honored by
            the fluid substrate (used by the Figure-1 bottleneck).
    """

    name: str
    topology: Topology
    flows: FlowSet
    notes: str = ""
    rate_caps: dict[Link, float] = field(default_factory=dict)


#: Paper setup (§7): desirable rate of any flow, packets/second.
PAPER_DESIRED_RATE = 800.0
#: Paper setup: data payload per packet.
PAPER_PACKET_BYTES = 1024


def _flow(flow_id: int, source: int, dest: int, weight: float = 1.0) -> Flow:
    return Flow(
        flow_id=flow_id,
        source=source,
        destination=dest,
        weight=weight,
        desired_rate=PAPER_DESIRED_RATE,
        packet_bytes=PAPER_PACKET_BYTES,
    )


def figure2(weights: tuple[float, float, float, float] = (1, 1, 1, 1)) -> Scenario:
    """Fig. 2: two link groups with overlapping contention cliques.

    Single-hop flows f1:(0→1), f2:(1→2), f3:(3→4), f4:(4→5).  Links
    (0,1),(1,2) form clique 0; links (1,2),(3,4),(4,5) form clique 1
    ((0,1) does not contend with the second group).  Geometry: the
    groups are separated so that d(1,3) = 560 m > 550 m (no (0,1)
    contention across) while d(2,3) = 360 m and d(2,4) = 540 m keep
    (1,2) contending with both of the far links.

    Args:
        weights: flow weights; (1,2,1,3) reproduces Table 2.
    """
    if len(weights) != 4 or any(w <= 0 for w in weights):
        raise ConfigError(f"figure2 needs 4 positive weights, got {weights}")
    topology = Topology(tx_range=250.0, cs_range=550.0)
    topology.add_nodes(
        [
            (0.0, 0.0),
            (200.0, 0.0),
            (400.0, 0.0),
            (760.0, 0.0),
            (940.0, 0.0),
            (1140.0, 0.0),
        ]
    )
    flows = FlowSet(
        [
            _flow(1, 0, 1, weights[0]),
            _flow(2, 1, 2, weights[1]),
            _flow(3, 3, 4, weights[2]),
            _flow(4, 4, 5, weights[3]),
        ]
    )
    return Scenario(
        name="figure2",
        topology=topology,
        flows=flows,
        notes=(
            "cliques: {(0,1),(1,2)} and {(1,2),(3,4),(4,5)}; maxmin gives "
            "f2=f3=f4 and f1 the residual of clique 0"
        ),
    )


#: Table 2's weight vector (flows f1..f4).
TABLE2_WEIGHTS = (1.0, 2.0, 1.0, 3.0)


def figure2_weighted() -> Scenario:
    """Fig. 2 with Table 2's weights (1, 2, 1, 3).

    A zero-argument factory so the weighted-maxmin experiment is
    addressable from the sweep grid and the fidelity harness, which
    identify scenarios by name; the scenario is named ``figure2w`` so
    its cache entries never collide with unweighted ``figure2`` runs.
    """
    scenario = figure2(weights=TABLE2_WEIGHTS)
    scenario.name = "figure2w"
    return scenario


def figure3() -> Scenario:
    """Fig. 3: the three-link chain 0–1–2–3 (200 m spacing).

    Flows ⟨0,3⟩ (3 hops), ⟨1,3⟩ (2 hops), ⟨2,3⟩ (1 hop), all destined
    to node 3.  All three links mutually contend; interference is
    asymmetric (node 0 cannot decode node 2), producing the plain-
    802.11 unfairness of Table 3.
    """
    topology = Topology(tx_range=250.0, cs_range=550.0)
    topology.add_nodes([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0), (600.0, 0.0)])
    flows = FlowSet(
        [
            _flow(1, 0, 3),
            _flow(2, 1, 3),
            _flow(3, 2, 3),
        ]
    )
    return Scenario(
        name="figure3",
        topology=topology,
        flows=flows,
        notes="single clique of all 3 links; single destination (node 3)",
    )


def figure4() -> Scenario:
    """Fig. 4: four source→relay→sink gadgets in a row, eight flows.

    The paper does not print coordinates; the reconstruction is fixed
    by Table 4's reported effective-throughput values, which determine
    the hop counts exactly: odd flows (f1,f3,f5,f7) are 2-hop, even
    flows (f2,f4,f6,f8) are 1-hop, and each odd/even pair shares its
    source (their rates are identical under plain 802.11 because one
    FIFO serves both).  Gadget k is a vertical chain s_k→m_k→d_k
    (200 m spacing); gadgets are 350 m apart so adjacent gadgets'
    links all contend (no links across) and non-adjacent gadgets are
    independent — middle gadgets therefore contend on both sides,
    which halves their plain-802.11 share (Table 4).

    Flow 2k+1: s_k→m_k→d_k (destination d_k); flow 2k+2: s_k→m_k
    (destination m_k) — two destinations per gadget, exercising the
    multi-destination virtual networks of §5.
    """
    topology = Topology(tx_range=250.0, cs_range=550.0)
    positions = []
    for gadget in range(4):
        x = gadget * 350.0
        positions.extend([(x, 0.0), (x, 200.0), (x, 400.0)])
    topology.add_nodes(positions)

    flows = []
    for gadget in range(4):
        s, m, d = 3 * gadget, 3 * gadget + 1, 3 * gadget + 2
        flows.append(_flow(2 * gadget + 1, s, d))  # 2-hop flow
        flows.append(_flow(2 * gadget + 2, s, m))  # 1-hop flow
    return Scenario(
        name="figure4",
        topology=topology,
        flows=FlowSet(flows),
        notes=(
            "reconstructed from Table 4 hop counts (see EXPERIMENTS.md); "
            "cliques pair adjacent gadgets"
        ),
    )


def figure1(*, bottleneck_rate: float = 20.0, desired_rate: float = 70.0) -> Scenario:
    """Fig. 1: the per-destination-queueing argument (§5.1).

    f1: x→i→j→z→t shares nodes i, j with f2: y→i→j→v; (z,t) is a slow
    bottleneck link.  With one queue per node, backpressure from (z,t)
    saturates the shared queues at j and i and drags f2 down to f1's
    rate; with one queue per *destination*, f2 is isolated and reaches
    its desirable rate.

    The bottleneck is modeled as a per-link rate cap (honored by the
    fluid substrate), standing in for the paper's thick-arrow
    bandwidth-saturated link.  The paper's abstract units (desirable
    rate 5, bottleneck 1) are scaled so that f2's desirable rate fits
    the clique capacity of the shared region with room to spare — the
    point of the experiment is queueing isolation, not channel
    saturation.

    Node ids: x=0, y=1, i=2, j=3, z=4, t=5, v=6.
    """
    if bottleneck_rate <= 0 or desired_rate <= bottleneck_rate:
        raise ConfigError(
            "need 0 < bottleneck_rate < desired_rate, got "
            f"{bottleneck_rate}, {desired_rate}"
        )
    topology = Topology(tx_range=250.0, cs_range=550.0)
    topology.add_nodes(
        [
            (0.0, 0.0),  # 0 = x
            (0.0, 200.0),  # 1 = y
            (200.0, 100.0),  # 2 = i
            (400.0, 100.0),  # 3 = j
            (600.0, 100.0),  # 4 = z
            (800.0, 100.0),  # 5 = t
            (550.0, 250.0),  # 6 = v
        ]
    )
    flows = FlowSet(
        [
            Flow(flow_id=1, source=0, destination=5, desired_rate=desired_rate),
            Flow(flow_id=2, source=1, destination=6, desired_rate=desired_rate),
        ]
    )
    return Scenario(
        name="figure1",
        topology=topology,
        flows=flows,
        notes="per-destination queueing isolation experiment (§5.1)",
        rate_caps={(4, 5): bottleneck_rate},
    )
