# simcheck: allow-file[DET001] sweep wall-clock timing is operator-facing
"""Parallel parameter-sweep engine with a content-addressed result cache.

A sweep expands a parameter grid — scenario × protocol × substrate ×
seed × duration — into :class:`SweepPoint`\\ s, runs each point through
:func:`~repro.scenarios.runner.run_scenario`, and collects one
JSON-serializable summary per point.  Two things make large sweeps
cheap:

* **Sharding.**  Points are distributed over ``workers`` processes via
  a spawn-context :mod:`multiprocessing` pool.  Every run constructs
  its own kernel and RNG registry from its seed, so results are
  independent of the worker count — the same grid run with 1, 2, or 8
  workers yields byte-identical summaries.
* **Caching.**  Each point's summary is stored on disk under a digest
  of the point parameters *and* a fingerprint of the library source
  (every ``src/repro/**/*.py`` file).  Re-running the same grid is
  pure cache hits; editing any library file invalidates the whole
  cache automatically — no stale results after a code change.

Command line::

    python -m repro sweep --scenarios figure3,figure4 --seeds 1,2,3 \\
        --durations 30 --workers 4 --json sweep.json

See docs/PERFORMANCE.md for how the cache key is built.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field
from multiprocessing import get_context
from pathlib import Path

from repro.errors import ConfigError
from repro.scenarios.figures import (
    figure1,
    figure2,
    figure2_weighted,
    figure3,
    figure4,
)
from repro.scenarios.runner import PROTOCOLS, SUBSTRATES, run_scenario
from repro.scenarios.scale import scale100, scale300, scale300c, scale1000

#: Scenario factories addressable from a sweep grid.  ``figure2w`` is
#: Figure 2 under Table 2's weights (1, 2, 1, 3) — a separate name so
#: weighted and unweighted runs never share cache entries.  The
#: ``scale*`` family (:mod:`repro.scenarios.scale`) provides seeded
#: city-scale topologies; ``scale300c`` is the clustered variant.
SCENARIO_FACTORIES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure2w": figure2_weighted,
    "figure3": figure3,
    "figure4": figure4,
    "scale100": scale100,
    "scale300": scale300,
    "scale300c": scale300c,
    "scale1000": scale1000,
}

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".sweep-cache"


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the parameter grid."""

    scenario: str
    protocol: str
    substrate: str
    seed: int
    duration: float

    def label(self) -> str:
        return (
            f"{self.scenario}/{self.protocol}/{self.substrate}"
            f"/seed{self.seed}/{self.duration:g}s"
        )


@dataclass(frozen=True)
class SweepSpec:
    """A parameter grid.

    Attributes are the axis value lists; :meth:`points` expands their
    cross product in deterministic nested order (scenario, protocol,
    substrate, seed, duration).
    """

    scenarios: tuple[str, ...] = ("figure3",)
    protocols: tuple[str, ...] = ("gmp",)
    substrates: tuple[str, ...] = ("fluid",)
    seeds: tuple[int, ...] = (1,)
    durations: tuple[float, ...] = (30.0,)

    def __post_init__(self) -> None:
        for name in self.scenarios:
            if name not in SCENARIO_FACTORIES:
                raise ConfigError(
                    f"unknown scenario {name!r}; pick from "
                    f"{tuple(SCENARIO_FACTORIES)}"
                )
        for name in self.protocols:
            if name not in PROTOCOLS:
                raise ConfigError(
                    f"unknown protocol {name!r}; pick from {PROTOCOLS}"
                )
        for name in self.substrates:
            if name not in SUBSTRATES:
                raise ConfigError(
                    f"unknown substrate {name!r}; pick from {SUBSTRATES}"
                )
        if not (self.scenarios and self.protocols and self.substrates
                and self.seeds and self.durations):
            raise ConfigError("every sweep axis needs at least one value")
        if any(duration <= 0 for duration in self.durations):
            raise ConfigError("sweep durations must be positive")

    def points(self) -> list[SweepPoint]:
        """The grid, expanded in deterministic order."""
        return [
            SweepPoint(scenario, protocol, substrate, seed, float(duration))
            for scenario in self.scenarios
            for protocol in self.protocols
            for substrate in self.substrates
            for seed in self.seeds
            for duration in self.durations
        ]


@dataclass
class SweepReport:
    """Outcome of :func:`run_sweep`.

    Attributes:
        results: one summary dict per grid point, in grid order.
        cache_hits / cache_misses: how many points were recalled from
            (resp. computed into) the on-disk cache.
        wall_seconds: elapsed wall-clock time of the whole sweep.
        workers: process count the fresh points were sharded over.
        fingerprint: library-source fingerprint the cache was keyed on.
    """

    results: list[dict] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    fingerprint: str = ""

    def to_json(self) -> dict:
        return asdict(self)


def code_fingerprint(package_root: Path | None = None) -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Any library edit changes the fingerprint, which invalidates every
    cached sweep result — the cache can never serve numbers produced
    by different code.
    """
    root = package_root or Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def _point_digest(point: SweepPoint, fingerprint: str) -> str:
    payload = json.dumps(asdict(point), sort_keys=True)
    return hashlib.sha256(f"{payload}\0{fingerprint}".encode()).hexdigest()


def run_point(point: SweepPoint) -> dict:
    """Run one grid point and summarize it as plain JSON data.

    The summary is :meth:`~repro.scenarios.results.RunResult.
    point_summary` — raw and normalized per-flow rates, hop counts,
    weights, and the paper metrics ``U``/``I_mm``/``I_eq`` — with the
    *grid* scenario name substituted so cache keys and summaries agree
    (e.g. the ``figure2w`` grid name rather than the scenario's own).
    """
    scenario = SCENARIO_FACTORIES[point.scenario]()
    result = run_scenario(
        scenario,
        protocol=point.protocol,
        substrate=point.substrate,
        duration=point.duration,
        seed=point.seed,
    )
    summary = result.point_summary()
    summary["scenario"] = point.scenario
    return summary


def _worker(args: tuple[str, str, str, int, float]) -> dict:
    """Top-level (hence picklable) pool worker: rebuild the point and
    run it; the spawn context gives every run a fresh interpreter."""
    scenario, protocol, substrate, seed, duration = args
    return run_point(SweepPoint(scenario, protocol, substrate, seed, duration))


def _cache_path(cache_dir: Path, digest: str) -> Path:
    return cache_dir / f"{digest}.json"


def _cache_load(path: Path) -> dict | None:
    try:
        with path.open(encoding="utf-8") as handle:
            loaded = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return loaded if isinstance(loaded, dict) else None


def _cache_store(path: Path, summary: dict) -> None:
    """Atomic write: a crashed sweep never leaves a torn cache entry."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w",
        encoding="utf-8",
        dir=path.parent,
        prefix=path.name,
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            json.dump(summary, handle, sort_keys=True)
        os.replace(handle.name, path)
    except BaseException:
        os.unlink(handle.name)
        raise


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
    fingerprint: str | None = None,
) -> SweepReport:
    """Run (or recall) every point of ``spec``.

    Args:
        spec: the parameter grid.
        workers: processes to shard fresh points over; 1 runs in-process
            (no pool), which is what tests and tiny grids want.
        cache_dir: cache directory, or None to disable caching.
        fingerprint: override the library-source fingerprint (tests
            use this to exercise invalidation without editing files).

    Raises:
        ConfigError: on a non-positive worker count.
    """
    if workers < 1:
        raise ConfigError(f"sweep needs at least one worker, got {workers}")
    started = time.perf_counter()
    points = spec.points()
    report = SweepReport(workers=workers)
    cache_base = Path(cache_dir) if cache_dir is not None else None
    if cache_base is not None:
        report.fingerprint = (
            fingerprint if fingerprint is not None else code_fingerprint()
        )

    results: list[dict | None] = [None] * len(points)
    fresh: list[tuple[int, SweepPoint]] = []
    digests: dict[int, str] = {}
    for index, point in enumerate(points):
        if cache_base is not None:
            digest = _point_digest(point, report.fingerprint)
            digests[index] = digest
            cached = _cache_load(_cache_path(cache_base, digest))
            if cached is not None:
                results[index] = cached
                report.cache_hits += 1
                continue
        fresh.append((index, point))

    report.cache_misses = len(fresh)
    if fresh:
        if workers == 1 or len(fresh) == 1:
            computed = [run_point(point) for _, point in fresh]
        else:
            args = [
                (p.scenario, p.protocol, p.substrate, p.seed, p.duration)
                for _, p in fresh
            ]
            context = get_context("spawn")
            with context.Pool(processes=min(workers, len(fresh))) as pool:
                computed = pool.map(_worker, args)
        for (index, _), summary in zip(fresh, computed):
            results[index] = summary
            if cache_base is not None:
                _cache_store(
                    _cache_path(cache_base, digests[index]), summary
                )

    report.results = [summary for summary in results if summary is not None]
    report.wall_seconds = time.perf_counter() - started
    return report


# --- command line ---------------------------------------------------------------


def _csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def sweep_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro sweep``."""
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run a parameter grid of scenarios in parallel "
        "with content-addressed result caching.",
    )
    parser.add_argument(
        "--scenarios", default="figure3",
        help="comma-separated scenario names (default figure3)",
    )
    parser.add_argument("--protocols", default="gmp")
    parser.add_argument("--substrates", default="fluid")
    parser.add_argument("--seeds", default="1")
    parser.add_argument("--durations", default="30")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point; do not read or write the cache",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="write the report JSON here instead of stdout",
    )
    args = parser.parse_args(argv)

    try:
        spec = SweepSpec(
            scenarios=tuple(_csv(args.scenarios)),
            protocols=tuple(_csv(args.protocols)),
            substrates=tuple(_csv(args.substrates)),
            seeds=tuple(int(part) for part in _csv(args.seeds)),
            durations=tuple(float(part) for part in _csv(args.durations)),
        )
        report = run_sweep(
            spec,
            workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
        )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    payload = json.dumps(report.to_json(), indent=2, sort_keys=True)
    if args.json_out:
        Path(args.json_out).write_text(payload + "\n", encoding="utf-8")
        print(
            f"{len(report.results)} points "
            f"({report.cache_hits} cached, {report.cache_misses} computed) "
            f"in {report.wall_seconds:.2f}s -> {args.json_out}",
            file=sys.stderr,
        )
    else:
        print(payload)
    return 0
