"""The simulation kernel: clock, scheduling, timers, run control,
watchdogs, and telemetry collection.

Watchdogs exist so that pathological models — a retry loop that
re-schedules itself at zero delay, a fault scenario that triggers an
event storm — fail loudly with diagnostics instead of hanging the
process.  Three are available on :meth:`Simulator.run`:

* ``max_events`` — hard budget on dispatched events;
* ``stall_limit`` — maximum events dispatched without the simulated
  clock advancing; on trip the error names the offending event tags;
* ``wall_deadline`` — real (wall-clock) seconds the run may take.

Telemetry: when a :class:`~repro.telemetry.Telemetry` instance is
attached, :meth:`Simulator.run` counts dispatched events per tag, and
— with profiling on — measures per-tag handler wall time (totals plus
log-bucketed :class:`~repro.telemetry.SampleHistogram` distributions
for p50/p95/p99) and samples an events/sec throughput series.
Collection is strictly passive: the kernel never schedules events on
behalf of telemetry, so an instrumented run dispatches exactly the
same events as a bare one.

Monitors: :meth:`Simulator.attach_monitor` accepts passive
:class:`RunMonitor` observers (streaming telemetry sinks, the in-run
health monitor) whose ticks are paced by the simulated clock but fire
*between* event dispatches — they appear nowhere in the event queue,
so the replay digest of a monitored run is byte-identical to a bare
one.  Watchdog aborts call each monitor's ``on_abort`` hook first, so
diagnostics are flushed instead of dying with the process.
"""

from __future__ import annotations

# simcheck: allow-file[DET001] watchdogs and opt-in profiling read wall
# clocks deliberately; their readings never feed simulation state (see
# docs/SIMCHECK.md).

import time as _time
from bisect import bisect_left
from collections import Counter
from typing import Callable, Protocol

from repro.errors import SimulationError
from repro.sim.event import DEFAULT_PRIORITY, Event, EventQueue
from repro.sim.replay import ReplaySanitizer
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceCollector
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: Events between throughput samples when telemetry is collecting.
_THROUGHPUT_WINDOW = 4096

#: Geometric handler-wall-time buckets for the profiling histograms:
#: 100 ns doubling up to ~3.4 s.  Durations land in one of 26 buckets
#: (plus overflow); p50/p95/p99 are interpolated inside a bucket, so
#: the estimate error is bounded by one doubling.
WALL_TIME_BOUNDS: tuple[float, ...] = tuple(1e-7 * (2**i) for i in range(26))

#: Upper bound on events popped from the heap per dispatch batch.
#: Batching amortises heap maintenance; correctness does not depend on
#: the value because the loop re-checks order before every dispatch and
#: parks the unprocessed tail back in the queue when overtaken.
_BATCH_LIMIT = 128


class RunMonitor(Protocol):
    """Passive observer paced by the simulated clock.

    Attached via :meth:`Simulator.attach_monitor`, a monitor's
    :meth:`on_tick` is invoked *between* event dispatches whenever the
    simulated clock first reaches its next due time — the kernel never
    schedules events on a monitor's behalf, so attaching one cannot
    change the dispatched event sequence (the replay digest is pinned
    byte-identical by tests).  Monitors must honor the same contract as
    telemetry: never schedule, never touch the RNG registry, never
    mutate model state.

    Optional hooks (looked up by name, so plain objects qualify):

    * ``on_abort(now, error)`` — called when a kernel watchdog
      (stall/budget/deadline) is about to abort the run, so streaming
      sinks can flush diagnostics that would otherwise die with the
      process.
    """

    @property
    def interval(self) -> float:
        """Simulated seconds between :meth:`on_tick` invocations."""
        ...

    def on_tick(self, now: float) -> None:
        """The clock reached the monitor's next due time."""
        ...


class Timer:
    """A restartable one-shot timer bound to a :class:`Simulator`.

    A timer wraps a pending event and supports the cancel/restart
    pattern MAC state machines need (e.g. CTS timeout, defer timers).
    """

    def __init__(
        self,
        sim: "Simulator",
        callback: Callable[[], None],
        *,
        tag: str = "timer",
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._tag = tag
        self._priority = priority
        self._event: Event | None = None

    @property
    def pending(self) -> bool:
        """True if the timer is armed and has not yet fired."""
        return self._event is not None and self._event.active

    @property
    def expires_at(self) -> float | None:
        """Absolute expiry time, or None when not armed."""
        if self.pending:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now, replacing any
        previously armed expiry."""
        self.cancel()
        self._event = self._sim.call_later(
            delay, self._fire, priority=self._priority, tag=self._tag
        )

    def cancel(self) -> None:
        """Disarm the timer.  Safe to call when not armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class Simulator:
    """Discrete-event simulator facade.

    Owns the clock, the event queue, the seeded RNG registry and the
    trace collector.  All model components schedule through one
    Simulator instance, so a scenario is fully described by (model,
    seed) and replays identically.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        trace: TraceCollector | None = None,
        telemetry: Telemetry | None = None,
        sanitizer: ReplaySanitizer | None = None,
    ) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else TraceCollector(enabled=False)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Optional replay sanitizer; observes every dispatched event
        #: (passively — it never schedules) so two runs can be diffed.
        self.sanitizer = sanitizer
        self._events_processed = 0
        self._monitors: list[RunMonitor] = []
        self._monitor_due: list[float] = []

    # --- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (excludes cancelled)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (including tombstones)."""
        return len(self._queue)

    # --- scheduling ---------------------------------------------------------

    def call_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        tag: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f} before now={self._now:.9f}"
            )
        return self._queue.push(time, callback, priority=priority, tag=tag)

    def call_later(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        tag: str = "",
    ) -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Pushes directly: delay >= 0 already guarantees the call_at
        # not-in-the-past invariant, and this is the hottest scheduling
        # entry point.
        return self._queue.push(
            self._now + delay, callback, priority=priority, tag=tag
        )

    def timer(
        self,
        callback: Callable[[], None],
        *,
        tag: str = "timer",
        priority: int = DEFAULT_PRIORITY,
    ) -> Timer:
        """Create an unarmed :class:`Timer` bound to this simulator."""
        return Timer(self, callback, tag=tag, priority=priority)

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start_at: float | None = None,
        tag: str = "periodic",
    ) -> Callable[[], None]:
        """Run ``callback`` periodically.

        The first firing is at ``start_at`` (default: now + interval).
        Returns a zero-argument function that stops the recurrence.

        Raises:
            SimulationError: if ``interval`` is not positive.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive: {interval}")
        stopped = False
        slot: Event | None = None

        def fire() -> None:
            if stopped:
                return
            callback()
            # Re-arm the same Event object (slot pattern): repush draws a
            # fresh sequence number at exactly the point the old
            # per-firing call_later did, so dispatch order — and the
            # replay digest — are unchanged.
            if not stopped and slot is not None:
                self._queue.repush(slot, self._now + interval)

        first = self._now + interval if start_at is None else start_at
        slot = self.call_at(first, fire, tag=tag)

        def stop() -> None:
            nonlocal stopped
            stopped = True
            if slot is not None:
                slot.cancel()

        return stop

    # --- monitors -----------------------------------------------------------

    def attach_monitor(self, monitor: RunMonitor) -> None:
        """Attach a passive :class:`RunMonitor`.

        The monitor's first tick is one ``interval`` from now; ticks
        fire from inside the dispatch loop (between callbacks) when the
        simulated clock first reaches the due time, so they appear
        nowhere in the event sequence.

        Raises:
            SimulationError: if the monitor's interval is not positive.
        """
        interval = float(monitor.interval)
        if interval <= 0:
            raise SimulationError(
                f"monitor interval must be positive: {interval}"
            )
        self._monitors.append(monitor)
        self._monitor_due.append(self._now + interval)

    def _tick_monitors(self) -> float:
        """Fire every due monitor once; return the next overall due."""
        now = self._now
        for index, monitor in enumerate(self._monitors):
            due = self._monitor_due[index]
            if due > now:
                continue
            interval = float(monitor.interval)
            # One tick per crossing, however far the clock jumped: a
            # sparse schedule must not trigger a catch-up storm.
            while due <= now:
                due += interval
            self._monitor_due[index] = due
            monitor.on_tick(now)
        return min(self._monitor_due)

    def _watchdog_abort(self, message: str) -> SimulationError:
        """Build the watchdog error and give every monitor a chance to
        flush diagnostics before the run dies with it."""
        error = SimulationError(message)
        for monitor in self._monitors:
            hook = getattr(monitor, "on_abort", None)
            if hook is None:
                continue
            try:
                hook(self._now, error)
            except Exception:  # noqa: BLE001 - a failing flush must
                pass  # never mask the watchdog diagnosis itself
        return error

    # --- run control --------------------------------------------------------

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after the
        in-flight event completes."""
        self._stopped = True

    def run(
        self,
        until: float | None = None,
        *,
        max_events: int | None = None,
        stall_limit: int | None = None,
        wall_deadline: float | None = None,
        pace: float | None = None,
    ) -> float:
        """Dispatch events in time order.

        Args:
            until: stop once the clock would pass this time; the clock
                is then advanced exactly to ``until``.  ``None`` runs
                until the event queue drains.
            max_events: optional safety valve on dispatched events.
            stall_limit: maximum consecutive events dispatched without
                the simulated clock advancing.  A model stuck in a
                zero-delay rescheduling loop trips this; the error
                names the tags of the stalled events.
            wall_deadline: real-time budget in seconds; checked
                periodically, so overshoot is bounded by one batch of
                events, not one event.
            pace: ceiling on simulated seconds advanced per wall-clock
                second (``pace=20`` runs at most 20x real time; ``None``
                is free-running).  Pacing only ever *sleeps* before a
                batch — it never feeds wall time into the model — so the
                dispatched event sequence, and hence the replay digest,
                are identical at every pace.

        Returns:
            The simulation time when the run stopped.

        Raises:
            SimulationError: on re-entrant ``run`` calls or when a
                watchdog trips.  The kernel is left in a defined state
                (clock at the failing event's time, ``run`` callable
                again) when a watchdog or a callback raises.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        if stall_limit is not None and stall_limit < 1:
            raise SimulationError(f"stall_limit must be >= 1: {stall_limit}")
        if wall_deadline is not None and wall_deadline <= 0:
            raise SimulationError(
                f"wall_deadline must be positive: {wall_deadline}"
            )
        if pace is not None and pace <= 0:
            raise SimulationError(f"pace must be positive: {pace}")
        self._running = True
        self._stopped = False
        wall_start = _time.monotonic() if wall_deadline is not None else 0.0
        events_at_now = 0
        stalled_tags: Counter[str] = Counter()
        telemetry = self.telemetry
        sanitizer = self.sanitizer
        collect = telemetry.enabled
        profile = telemetry.profile
        tag_counts: dict[str, int] = {}
        tag_wall: dict[str, float] = {}
        tag_wall_buckets: dict[str, list[int]] = {}
        wall_bounds = WALL_TIME_BOUNDS
        bucket_width = len(wall_bounds) + 1
        run_events = 0
        run_start = _time.monotonic() if collect else 0.0
        window_start = run_start
        throughput = (
            telemetry.registry.series("kernel.events_per_sec_window")
            if collect
            else None
        )
        queue = self._queue
        batches = 0
        batched_events = 0
        # Fast path: with every watchdog and observer off, the per-event
        # work reduces to clock advance + dispatch.
        fast = (
            max_events is None
            and stall_limit is None
            and wall_deadline is None
            and pace is None
            and sanitizer is None
            and not collect
            and not self._monitors
        )
        monitor_due = (
            min(self._monitor_due) if self._monitors else float("inf")
        )
        pace_origin = self._now
        pace_start = _time.monotonic() if pace is not None else 0.0
        try:
            if fast:
                processed = 0
                try:
                    while not self._stopped:
                        batch = queue.pop_batch(_BATCH_LIMIT, until)
                        if not batch:
                            break
                        n = len(batch)
                        if n == 1:
                            # Overwhelmingly common shape (a model that
                            # schedules one event at a time): dispatch
                            # without the batch bookkeeping.
                            event = batch[0]
                            if not event.cancelled:
                                processed += 1
                                self._now = event.time
                                event.callback()
                            continue
                        index = 0
                        try:
                            while index < n:
                                event = batch[index]
                                if event.cancelled:
                                    index += 1
                                    continue
                                if index and queue.first_precedes(event):
                                    break
                                index += 1
                                processed += 1
                                self._now = event.time
                                event.callback()
                                if self._stopped:
                                    break
                        finally:
                            if index < n:
                                queue.reinject(batch[index:])
                finally:
                    self._events_processed += processed
                if until is not None and not self._stopped and self._now < until:
                    self._now = until
                return self._now
            while not self._stopped:
                batch = queue.pop_batch(_BATCH_LIMIT, until)
                if not batch:
                    break
                if pace is not None:
                    # Throttle before the batch: the head event must not
                    # run before its wall due time.  Sleeps are chunked
                    # so an external stop() is honored promptly, and
                    # overshoot is bounded by one batch of events.
                    target = (batch[0].time - pace_origin) / pace
                    while not self._stopped:
                        lag = target - (_time.monotonic() - pace_start)
                        if lag <= 0:
                            break
                        _time.sleep(min(lag, 0.2))
                    if self._stopped:
                        queue.reinject(batch)
                        break
                batches += 1
                batched_events += len(batch)
                index = 0
                try:
                    while index < len(batch):
                        event = batch[index]
                        if event.cancelled:
                            # Cancelled by an earlier callback in this
                            # batch; skip without counting, exactly as
                            # the heap's lazy discard would have.
                            index += 1
                            continue
                        if index and queue.first_precedes(event):
                            # A callback scheduled something that orders
                            # before the rest of this batch: park the
                            # tail (via the finally) and re-pop.
                            break
                        index += 1
                        if event.time > self._now:
                            events_at_now = 0
                            stalled_tags.clear()
                        self._now = event.time
                        self._events_processed += 1
                        events_at_now += 1
                        if stall_limit is not None:
                            stalled_tags[event.tag or "<untagged>"] += 1
                            if events_at_now > stall_limit:
                                offenders = ", ".join(
                                    f"{tag} x{count}"
                                    for tag, count in stalled_tags.most_common(5)
                                )
                                raise self._watchdog_abort(
                                    f"simulated clock stalled at t={self._now:.9f}: "
                                    f"{events_at_now} events without advancing; "
                                    f"offending tags: {offenders}"
                                )
                        if (
                            max_events is not None
                            and self._events_processed > max_events
                        ):
                            raise self._watchdog_abort(
                                f"exceeded max_events={max_events}; runaway model?"
                            )
                        if (
                            wall_deadline is not None
                            and self._events_processed % 512 == 0
                            and _time.monotonic() - wall_start > wall_deadline
                        ):
                            raise self._watchdog_abort(
                                f"wall-clock deadline of {wall_deadline:g}s "
                                f"exceeded at t={self._now:.6f} after "
                                f"{self._events_processed} events"
                            )
                        if sanitizer is not None:
                            sanitizer.observe(
                                event.time, event.priority, event.tag, event.callback
                            )
                        if not collect:
                            event.callback()
                        else:
                            tag = event.tag or "<untagged>"
                            tag_counts[tag] = tag_counts.get(tag, 0) + 1
                            run_events += 1
                            if profile:
                                handler_start = _time.perf_counter()
                                event.callback()
                                duration = (
                                    _time.perf_counter() - handler_start
                                )
                                tag_wall[tag] = (
                                    tag_wall.get(tag, 0.0) + duration
                                )
                                buckets = tag_wall_buckets.get(tag)
                                if buckets is None:
                                    buckets = [0] * bucket_width
                                    tag_wall_buckets[tag] = buckets
                                buckets[
                                    bisect_left(wall_bounds, duration)
                                ] += 1
                            else:
                                event.callback()
                            if run_events % _THROUGHPUT_WINDOW == 0:
                                wall_now = _time.monotonic()
                                window = wall_now - window_start
                                if window > 0 and throughput is not None:
                                    throughput.record(
                                        self._now, _THROUGHPUT_WINDOW / window
                                    )
                                window_start = wall_now
                        if self._now >= monitor_due:
                            # Paced by the simulated clock but invoked
                            # between callbacks: monitors observe, never
                            # schedule, so the event sequence — and the
                            # replay digest — are untouched.
                            monitor_due = self._tick_monitors()
                        if self._stopped:
                            break
                finally:
                    if index < len(batch):
                        queue.reinject(batch[index:])
            if until is not None and not self._stopped and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False
            if collect:
                registry = telemetry.registry
                for tag, count in tag_counts.items():
                    registry.counter("kernel.events_by_tag", tag=tag).inc(count)
                for tag, wall in tag_wall.items():
                    registry.counter(
                        "kernel.handler_wall_seconds", tag=tag
                    ).inc(wall)
                    buckets = tag_wall_buckets.get(tag)
                    if buckets is not None:
                        registry.sample_histogram(
                            "kernel.handler_wall_hist",
                            wall_bounds,
                            tag=tag,
                        ).merge_counts(buckets, wall)
                if batches:
                    registry.counter("kernel.event_batches").inc(batches)
                    registry.counter("kernel.batched_events").inc(batched_events)
                elapsed = _time.monotonic() - run_start
                if run_events and elapsed > 0:
                    registry.gauge("kernel.events_per_sec").set(
                        run_events / elapsed
                    )
