"""Discrete-event simulation kernel.

A minimal but complete event-driven kernel: a binary-heap event queue
(:mod:`repro.sim.event`), a :class:`~repro.sim.kernel.Simulator` facade
with timers and stop conditions, deterministic named random streams
(:mod:`repro.sim.rng`), and a structured trace collector
(:mod:`repro.sim.trace`).
"""

from repro.sim.event import Event, EventQueue
from repro.sim.kernel import Simulator, Timer
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceCollector, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Timer",
    "RngRegistry",
    "TraceCollector",
    "TraceRecord",
]
