"""Discrete-event simulation kernel.

A minimal but complete event-driven kernel: a binary-heap event queue
(:mod:`repro.sim.event`), a :class:`~repro.sim.kernel.Simulator` facade
with timers and stop conditions, deterministic named random streams
(:mod:`repro.sim.rng`), a structured trace collector
(:mod:`repro.sim.trace`), and the replay sanitizer
(:mod:`repro.sim.replay`) that proves two runs dispatched identical
event sequences.
"""

from repro.sim.event import Event, EventQueue
from repro.sim.kernel import Simulator, Timer
from repro.sim.replay import ReplayReport, ReplaySanitizer, diff_sanitizers
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceCollector, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "ReplayReport",
    "ReplaySanitizer",
    "RngRegistry",
    "Simulator",
    "Timer",
    "TraceCollector",
    "TraceRecord",
    "diff_sanitizers",
]
