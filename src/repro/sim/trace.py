"""Structured trace collection.

Model components emit ``TraceRecord`` rows tagged with a category
(``"mac.tx"``, ``"gmp.adjust"``, ...).  Tracing is off by default; when
enabled it supports category filters so long DCF runs do not drown in
backoff noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class TraceRecord:
    """One trace row: time, category, and free-form fields."""

    time: float
    category: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        detail = " ".join(f"{key}={value}" for key, value in self.fields.items())
        return f"[{self.time:12.6f}] {self.category:<20} {detail}"


class TraceCollector:
    """Accumulates :class:`TraceRecord` rows.

    Args:
        enabled: master switch; a disabled collector drops everything.
        categories: if given, only these categories (or prefixes ending
            in ``*``) are kept.
        limit: optional cap on stored records (oldest kept).  Records
            past the cap are counted in :attr:`dropped` and a single
            ``trace.truncated`` marker is appended (so stored length
            may reach ``limit + 1``) — truncation is never silent.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        categories: Iterable[str] | None = None,
        limit: int | None = None,
    ) -> None:
        self.enabled = enabled
        self._exact: set[str] = set()
        self._prefixes: list[str] = []
        if categories is not None:
            for category in categories:
                if category.endswith("*"):
                    self._prefixes.append(category[:-1])
                else:
                    self._exact.add(category)
        self._limit = limit
        self._records: list[TraceRecord] = []
        self.dropped = 0  # records refused because the limit was hit

    def __len__(self) -> int:
        return len(self._records)

    def wants(self, category: str) -> bool:
        """True if the filter admits this category.

        Capacity is *not* part of the answer: emitters use ``wants`` to
        skip building expensive fields, and the limit is enforced (and
        counted) at :meth:`emit` time so truncation stays observable.
        """
        if not self.enabled:
            return False
        if not self._exact and not self._prefixes:
            return True
        if category in self._exact:
            return True
        return any(category.startswith(prefix) for prefix in self._prefixes)

    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Store one record if the filter admits it.

        Once ``limit`` records are stored, further admitted records
        are counted in :attr:`dropped` and a single ``trace.truncated``
        marker (with the limit and, at read time, the running drop
        count) is appended in their place.
        """
        if not self.wants(category):
            return
        if self._limit is not None and len(self._records) >= self._limit:
            if self.dropped == 0:
                self._records.append(
                    TraceRecord(
                        time=time,
                        category="trace.truncated",
                        fields={"limit": self._limit},
                    )
                )
            self.dropped += 1
            return
        self._records.append(TraceRecord(time=time, category=category, fields=fields))

    def records(self, category: str | None = None) -> list[TraceRecord]:
        """Stored records, optionally filtered to one exact category."""
        if category is None:
            return list(self._records)
        return [record for record in self._records if record.category == category]

    def clear(self) -> None:
        """Drop all stored records and reset the drop counter."""
        self._records.clear()
        self.dropped = 0
