"""Event objects and the pending-event heap.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number makes ordering total and FIFO among simultaneous equal-priority
events, which keeps runs reproducible regardless of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError

#: Default event priority.  Lower runs first among simultaneous events.
DEFAULT_PRIORITY = 0


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time (seconds) at which to fire.
        priority: tie-breaker among simultaneous events (lower first).
        seq: insertion sequence number; makes ordering total.
        callback: zero-argument callable invoked when the event fires.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
        tag: free-form label used by traces and debugging.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    tag: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it.  Idempotent."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True if the event has not been cancelled."""
        return not self.cancelled


class EventQueue:
    """A heap of pending :class:`Event` objects.

    Cancelled events stay in the heap and are lazily discarded when
    popped, which makes :meth:`Event.cancel` O(1).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if event.active)

    def __bool__(self) -> bool:
        return any(event.active for event in self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        tag: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            callback=callback,
            tag=tag,
        )
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float:
        """Time of the earliest active event.

        Raises:
            SimulationError: if the queue holds no active events.
        """
        self._discard_cancelled()
        if not self._heap:
            raise SimulationError("peek on an empty event queue")
        return self._heap[0].time

    def pop(self) -> Event:
        """Remove and return the earliest active event.

        Raises:
            SimulationError: if the queue holds no active events.
        """
        self._discard_cancelled()
        if not self._heap:
            raise SimulationError("pop on an empty event queue")
        return heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
