"""Event objects and the pending-event heap.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number makes ordering total and FIFO among simultaneous equal-priority
events, which keeps runs reproducible regardless of heap internals.

The heap stores ``(time, priority, seq, event)`` tuples so ordering
comparisons run at C speed and never touch the event's callback.
Cancellation is lazy: a cancelled event stays in the heap as a
*tombstone* (making :meth:`Event.cancel` O(1)) and is discarded when it
reaches the top, or in bulk when tombstones outnumber live events
(:meth:`EventQueue._compact`); a tombstone count keeps ``len`` and
truthiness O(1) instead of scanning the heap.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError

#: Default event priority.  Lower runs first among simultaneous events.
DEFAULT_PRIORITY = 0

#: Compaction trigger: rebuild the heap once at least this many
#: tombstones accumulate *and* they outnumber the live events.
_COMPACT_MIN_TOMBSTONES = 256


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time (seconds) at which to fire.
        priority: tie-breaker among simultaneous events (lower first).
        seq: insertion sequence number; makes ordering total.
        callback: zero-argument callable invoked when the event fires.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
        tag: free-form label used by traces and debugging.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    tag: str = field(default="", compare=False)
    #: Owning queue, so cancellation can maintain the tombstone count.
    _queue: "EventQueue | None" = field(
        default=None, init=False, compare=False, repr=False
    )
    #: True while the event sits in its owner's heap.
    _in_heap: bool = field(default=False, init=False, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._in_heap and self._queue is not None:
                self._queue._note_cancel()

    @property
    def active(self) -> bool:
        """True if the event has not been cancelled."""
        return not self.cancelled


class EventQueue:
    """A heap of pending :class:`Event` objects.

    Cancelled events stay in the heap as tombstones and are lazily
    discarded when popped (or compacted away in bulk), which makes
    :meth:`Event.cancel` O(1) and ``len``/truthiness O(1).
    """

    __slots__ = ("_heap", "_counter", "_tombstones")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._tombstones = 0

    def __len__(self) -> int:
        return len(self._heap) - self._tombstones

    def __bool__(self) -> bool:
        return len(self._heap) > self._tombstones

    @property
    def tombstones(self) -> int:
        """Cancelled events currently occupying heap slots."""
        return self._tombstones

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        tag: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        seq = next(self._counter)
        event = Event(time, priority, seq, callback, False, tag)
        event._queue = self
        event._in_heap = True
        heapq.heappush(self._heap, (time, priority, seq, event))
        return event

    def repush(self, event: Event, time: float) -> Event:
        """Re-arm a previously popped event at ``time`` with a fresh
        sequence number (the *slot* pattern for recurring timers: the
        Event object is reused instead of allocated per firing).

        Raises:
            SimulationError: if the event still sits in the heap.
        """
        if event._in_heap:
            raise SimulationError("repush of an event still in the heap")
        event.time = time
        event.seq = next(self._counter)
        event.cancelled = False
        event._queue = self
        event._in_heap = True
        heapq.heappush(self._heap, (time, event.priority, event.seq, event))
        return event

    def reinject(self, events: "list[Event]") -> None:
        """Return already-popped events to the heap *unchanged* (same
        sequence numbers), preserving their original dispatch order.
        Used by the kernel to park the unprocessed tail of a batch."""
        for event in events:
            event._in_heap = True
            if event.cancelled:
                self._tombstones += 1
            heapq.heappush(
                self._heap, (event.time, event.priority, event.seq, event)
            )

    def peek_time(self) -> float:
        """Time of the earliest active event.

        Raises:
            SimulationError: if the queue holds no active events.
        """
        self._discard_cancelled()
        if not self._heap:
            raise SimulationError("peek on an empty event queue")
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the earliest active event.

        Raises:
            SimulationError: if the queue holds no active events.
        """
        self._discard_cancelled()
        if not self._heap:
            raise SimulationError("pop on an empty event queue")
        event = heapq.heappop(self._heap)[3]
        event._in_heap = False
        return event

    def pop_batch(self, limit: int, until: float | None = None) -> "list[Event]":
        """Remove and return up to ``limit`` earliest active events, all
        with ``time <= until`` when ``until`` is given.

        Returns an empty list when no active event is eligible (queue
        drained, or every remaining event lies beyond ``until``).
        """
        heap = self._heap
        pop = heapq.heappop
        batch: list[Event] = []
        append = batch.append
        count = 0
        while heap and count < limit:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                pop(heap)
                event._in_heap = False
                self._tombstones -= 1
                continue
            if until is not None and entry[0] > until:
                break
            pop(heap)
            event._in_heap = False
            append(event)
            count += 1
        return batch

    def first_precedes(self, event: Event) -> bool:
        """True when the earliest pending active event orders strictly
        before ``event`` — i.e. dispatching ``event`` next would violate
        ``(time, priority, seq)`` order."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)
                entry[3]._in_heap = False
                self._tombstones -= 1
                continue
            return (entry[0], entry[1], entry[2]) < (
                event.time,
                event.priority,
                event.seq,
            )
        return False

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[3]._in_heap = False
        self._heap.clear()
        self._tombstones = 0

    def _note_cancel(self) -> None:
        """An in-heap event was cancelled: count the tombstone and
        compact once tombstones dominate the heap."""
        self._tombstones += 1
        if (
            self._tombstones >= _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (amortized O(n))."""
        kept: list[tuple[float, int, int, Event]] = []
        for entry in self._heap:
            if entry[3].cancelled:
                entry[3]._in_heap = False
            else:
                kept.append(entry)
        heapq.heapify(kept)
        self._heap = kept
        self._tombstones = 0

    def _discard_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            event = heapq.heappop(heap)[3]
            event._in_heap = False
            self._tombstones -= 1
