"""Deterministic named random streams.

Every stochastic component asks the registry for a stream by name
(e.g. ``"mac.backoff.node3"``).  Streams are derived from a single root
seed with SeedSequence spawning keyed by the stream name, so:

* runs are reproducible given (model, seed);
* adding a new consumer does not perturb the draws of existing ones
  (unlike sharing one global generator).
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed this registry derives all streams from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always yields the same generator object (and
        therefore a single consistent draw sequence) within one
        registry.
        """
        generator = self._streams.get(name)
        if generator is None:
            key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def names(self) -> list[str]:
        """Names of every stream created so far, in creation order."""
        return list(self._streams)
