"""Runtime replay sanitizer: a rolling digest over dispatched events.

The static pass (:mod:`repro.simcheck`) catches nondeterminism it can
see syntactically; this module is the dynamic backstop.  A
:class:`ReplaySanitizer` attached to the kernel observes every
dispatched event as ``(time, priority, tag, payload)`` — the payload
being a *stable* description of the callback (qualified name, never an
``id()``) — folds it into a SHA-256 rolling digest, and journals a
short per-event digest.  Running the same scenario twice and comparing
sanitizers (:func:`diff_sanitizers`) then either proves the runs
dispatched the identical event sequence or names the first divergent
event with its index, timestamp, and tag.

The sanitizer is strictly passive: it never schedules events, touches
the RNG registry, or reads wall clocks, so a sanitized run dispatches
exactly the same events as a bare one.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass
from typing import Callable

#: Journal cap: at ~50 bytes/event this bounds memory near 25 MB while
#: still locating divergence in any realistic scenario run.
DEFAULT_JOURNAL_LIMIT = 500_000


def describe_callback(callback: Callable[[], None]) -> str:
    """A run-stable description of an event callback.

    Uses qualified names (``NodeStack.admit_local``), unwrapping
    ``functools.partial``; never identities or memory addresses, which
    differ between two otherwise identical runs.
    """
    if isinstance(callback, functools.partial):
        return f"partial({describe_callback(callback.func)})"
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return str(qualname)
    return type(callback).__name__


@dataclass(frozen=True)
class JournalEntry:
    """One observed event: enough to name a divergence point."""

    index: int
    time: float
    tag: str
    digest: str  # short hash of (time, priority, tag, payload)


@dataclass(frozen=True)
class Divergence:
    """The first event at which two sanitized runs disagree."""

    index: int
    first: JournalEntry | None  # None when run A ended early
    second: JournalEntry | None  # None when run B ended early

    def render(self) -> str:
        def side(entry: JournalEntry | None) -> str:
            if entry is None:
                return "<run ended>"
            return f"t={entry.time:.9f} tag={entry.tag or '<untagged>'}"

        return (
            f"event #{self.index}: run A {side(self.first)} vs "
            f"run B {side(self.second)}"
        )


class ReplaySanitizer:
    """Rolling digest + journal of every dispatched event."""

    def __init__(
        self, *, journal_limit: int | None = DEFAULT_JOURNAL_LIMIT
    ) -> None:
        self._rolling = hashlib.sha256()
        self.events = 0
        self.journal: list[JournalEntry] = []
        self.journal_limit = journal_limit
        self.journal_dropped = 0

    def observe(
        self, time: float, priority: int, tag: str, callback: Callable[[], None]
    ) -> None:
        """Fold one dispatched event into the digest (kernel hook)."""
        entry = f"{time!r}|{priority}|{tag}|{describe_callback(callback)}"
        blob = entry.encode("utf-8")
        self._rolling.update(blob)
        if (
            self.journal_limit is None
            or len(self.journal) < self.journal_limit
        ):
            self.journal.append(
                JournalEntry(
                    index=self.events,
                    time=time,
                    tag=tag,
                    digest=hashlib.sha256(blob).hexdigest()[:16],
                )
            )
        else:
            self.journal_dropped += 1
        self.events += 1

    def hexdigest(self) -> str:
        """Digest of everything observed so far."""
        return self._rolling.hexdigest()


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of comparing two sanitized runs of one scenario."""

    matched: bool
    digest_first: str
    digest_second: str
    events_first: int
    events_second: int
    divergence: Divergence | None
    journal_truncated: bool

    def render(self) -> str:
        if self.matched:
            return (
                f"replay check passed: {self.events_first} events, "
                f"digest {self.digest_first[:16]}…"
            )
        lines = [
            "replay check FAILED: runs diverged",
            f"  digests: {self.digest_first[:16]}… vs "
            f"{self.digest_second[:16]}…",
            f"  events:  {self.events_first} vs {self.events_second}",
        ]
        if self.divergence is not None:
            lines.append(f"  first divergence: {self.divergence.render()}")
        elif self.journal_truncated:
            lines.append(
                "  first divergence beyond the journal limit "
                "(raise journal_limit to locate it)"
            )
        return "\n".join(lines)


def diff_sanitizers(
    first: ReplaySanitizer, second: ReplaySanitizer
) -> ReplayReport:
    """Compare two sanitized runs; locate the first divergent event."""
    matched = (
        first.hexdigest() == second.hexdigest()
        and first.events == second.events
    )
    divergence: Divergence | None = None
    truncated = bool(first.journal_dropped or second.journal_dropped)
    if not matched:
        for index in range(max(len(first.journal), len(second.journal))):
            entry_a = (
                first.journal[index] if index < len(first.journal) else None
            )
            entry_b = (
                second.journal[index] if index < len(second.journal) else None
            )
            if (
                entry_a is None
                or entry_b is None
                or entry_a.digest != entry_b.digest
            ):
                divergence = Divergence(
                    index=index, first=entry_a, second=entry_b
                )
                break
    return ReplayReport(
        matched=matched,
        digest_first=first.hexdigest(),
        digest_second=second.hexdigest(),
        events_first=first.events,
        events_second=second.events,
        divergence=divergence,
        journal_truncated=truncated,
    )


__all__ = [
    "DEFAULT_JOURNAL_LIMIT",
    "Divergence",
    "JournalEntry",
    "ReplayReport",
    "ReplaySanitizer",
    "describe_callback",
    "diff_sanitizers",
]
