"""``python -m repro check`` — the consolidated static gate.

One command, one exit code.  Runs every static check the repository
uses, in order of how much of the tree each one covers:

1. **simcheck** — the in-house whole-program analyzer (determinism,
   layering, parallel-safety, hot-path complexity, unit/dimension
   rules; see ``docs/SIMCHECK.md``).  Runs in-process; no external
   tooling needed.
2. **ruff** — style/bug lints, configured in ``pyproject.toml``.
3. **mypy** — strict typing on the islands listed in
   ``pyproject.toml``.

ruff and mypy are optional dependencies of the *development* workflow,
not of the library: when a tool is not installed the step is reported
as ``skipped`` and does not fail the gate (CI installs both, so a skip
there cannot mask a regression; locally it keeps the gate usable in a
bare interpreter).  ``--strict-tools`` turns a missing tool into a
failure for environments that must have the full gate.

The exit code is 0 only when every step that ran passed.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.simcheck.__main__ import main as simcheck_main

#: Steps the gate runs, in order.
STEPS = ("simcheck", "ruff", "mypy")


@dataclass(frozen=True)
class StepResult:
    """Outcome of one step of the gate."""

    name: str
    status: str  # "ok" | "fail" | "skipped"
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "fail"


def _repo_root() -> Path:
    """The repository root (the directory holding ``pyproject.toml``),
    found from this file; falls back to the current directory when the
    package is imported from an installed location."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").is_file():
            return parent
    return Path.cwd()


def _run_simcheck(root: Path, *, github: bool) -> StepResult:
    argv = [str(root / "src")]
    baseline = root / "simcheck-baseline.json"
    if baseline.is_file():
        argv += ["--baseline", str(baseline)]
    else:
        argv += ["--no-baseline"]
    if github:
        argv += ["--format", "github"]
    code = simcheck_main(argv)
    if code == 0:
        return StepResult("simcheck", "ok")
    return StepResult("simcheck", "fail", f"exit code {code}")


def _run_tool(
    name: str, argv: list[str], root: Path, *, strict_tools: bool
) -> StepResult:
    """Run an external linter, mapping "not installed" to a skip."""
    if shutil.which(argv[0]) is None:
        status = "fail" if strict_tools else "skipped"
        return StepResult(name, status, f"{argv[0]} not installed")
    proc = subprocess.run(argv, cwd=root)
    if proc.returncode == 0:
        return StepResult(name, "ok")
    return StepResult(name, "fail", f"exit code {proc.returncode}")


def run_gate(
    *,
    root: Path | None = None,
    github: bool = False,
    strict_tools: bool = False,
    only: list[str] | None = None,
) -> list[StepResult]:
    """Run the consolidated gate and return one result per step."""
    root = root or _repo_root()
    selected = set(only) if only else set(STEPS)
    results: list[StepResult] = []
    if "simcheck" in selected:
        results.append(_run_simcheck(root, github=github))
    if "ruff" in selected:
        targets = [
            name
            for name in ("src", "tests", "examples", "benchmarks")
            if (root / name).is_dir()
        ]
        results.append(
            _run_tool(
                "ruff",
                ["ruff", "check", *targets],
                root,
                strict_tools=strict_tools,
            )
        )
    if "mypy" in selected:
        results.append(
            _run_tool("mypy", ["mypy"], root, strict_tools=strict_tools)
        )
    return results


def check_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Run the consolidated static gate: simcheck + ruff + mypy.",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="simcheck output format (github emits ::error annotations)",
    )
    parser.add_argument(
        "--strict-tools",
        action="store_true",
        help="treat a missing ruff/mypy binary as a failure instead of a skip",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=STEPS,
        help="run only the named step (repeatable)",
    )
    args = parser.parse_args(argv)

    results = run_gate(
        github=args.format == "github",
        strict_tools=args.strict_tools,
        only=args.only,
    )
    print("check: " + "  ".join(f"{r.name}={r.status}" for r in results))
    for result in results:
        if result.detail and result.status != "ok":
            print(f"check: {result.name}: {result.detail}")
    return 1 if any(r.failed for r in results) else 0


if __name__ == "__main__":
    raise SystemExit(check_main())
