"""Reusable topology generators.

The paper's evaluation figures live in :mod:`repro.scenarios.figures`;
the builders here cover generic shapes used by examples, tests, and
random-workload benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.sim.rng import RngRegistry
from repro.topology.network import (
    DEFAULT_CS_RANGE,
    DEFAULT_TX_RANGE,
    Topology,
)

#: Named stream for random node placement.  Routing topology draws
#: through the registry (instead of a raw ``np.random.default_rng``)
#: keeps them isolated from every protocol/MAC stream: a topology
#: redraw can never perturb backoff or traffic randomness, and vice
#: versa.
PLACEMENT_STREAM = "topology.random_placement"


def chain_topology(
    num_nodes: int,
    spacing: float = 200.0,
    *,
    tx_range: float = DEFAULT_TX_RANGE,
    cs_range: float = DEFAULT_CS_RANGE,
) -> Topology:
    """Nodes 0..n-1 on a straight line, ``spacing`` meters apart.

    With the default ranges, adjacent nodes are linked and any two
    transmitters within two hops sense each other — the classic chain
    used by the paper's Figure 3.
    """
    if num_nodes < 1:
        raise TopologyError(f"need at least one node, got {num_nodes}")
    if spacing <= 0 or spacing > tx_range:
        raise TopologyError(
            f"spacing {spacing} must be in (0, tx_range={tx_range}] for a "
            "connected chain"
        )
    topology = Topology(tx_range=tx_range, cs_range=cs_range)
    topology.add_nodes((index * spacing, 0.0) for index in range(num_nodes))
    return topology


def grid_topology(
    rows: int,
    cols: int,
    spacing: float = 200.0,
    *,
    tx_range: float = DEFAULT_TX_RANGE,
    cs_range: float = DEFAULT_CS_RANGE,
) -> Topology:
    """A rows×cols lattice with ``spacing`` meters between neighbors.

    Node ids are assigned row-major: node ``r * cols + c`` sits at
    ``(c * spacing, r * spacing)``.
    """
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid must be at least 1x1, got {rows}x{cols}")
    if spacing <= 0 or spacing > tx_range:
        raise TopologyError(
            f"spacing {spacing} must be in (0, tx_range={tx_range}] for a "
            "connected grid"
        )
    topology = Topology(tx_range=tx_range, cs_range=cs_range)
    topology.add_nodes(
        (col * spacing, row * spacing) for row in range(rows) for col in range(cols)
    )
    return topology


def parallel_chains_topology(
    num_chains: int,
    chain_length: int,
    *,
    node_spacing: float = 200.0,
    chain_spacing: float = 350.0,
    tx_range: float = DEFAULT_TX_RANGE,
    cs_range: float = DEFAULT_CS_RANGE,
) -> Topology:
    """Several vertical chains side by side.

    With the defaults, nodes within one chain are linked, chains do not
    link to each other, but adjacent chains' links mutually contend —
    the structure behind the paper's Figure 4 (see
    :func:`repro.scenarios.figures.figure4`).

    Node ids are chain-major: chain ``k`` owns ids
    ``k * chain_length .. (k + 1) * chain_length - 1`` ordered top to
    bottom.
    """
    if num_chains < 1 or chain_length < 1:
        raise TopologyError(
            f"need positive dimensions, got {num_chains} chains of {chain_length}"
        )
    if node_spacing <= 0 or node_spacing > tx_range:
        raise TopologyError(
            f"node_spacing {node_spacing} must be in (0, tx_range={tx_range}]"
        )
    if chain_spacing <= tx_range:
        raise TopologyError(
            f"chain_spacing {chain_spacing} must exceed tx_range {tx_range} "
            "to keep chains unlinked"
        )
    topology = Topology(tx_range=tx_range, cs_range=cs_range)
    topology.add_nodes(
        (chain * chain_spacing, position * node_spacing)
        for chain in range(num_chains)
        for position in range(chain_length)
    )
    return topology


def random_topology(
    num_nodes: int,
    *,
    width: float = 800.0,
    height: float = 800.0,
    seed: int = 0,
    tx_range: float = DEFAULT_TX_RANGE,
    cs_range: float = DEFAULT_CS_RANGE,
    require_connected: bool = True,
    max_attempts: int = 200,
) -> Topology:
    """Uniformly random node placement in a width×height rectangle.

    When ``require_connected`` is set (default) placements are redrawn
    until the derived connectivity graph is connected.  Whether that
    succeeds quickly is a density question: random geometric graphs
    connect with high probability only once
    ``pi * tx_range**2 * n / area >~ ln(n)`` (the Gupta–Kumar
    connectivity threshold), so for sparse parameter combinations no
    reasonable number of redraws will find a connected placement.
    Rather than failing, the builder *progressively densifies*: after
    each round of ``max_attempts`` failed draws it grows ``tx_range``
    (and ``cs_range`` proportionally, preserving their ratio) by 30%
    and tries again.  This terminates deterministically — once
    ``tx_range`` reaches the rectangle's diagonal every placement is a
    complete graph — while leaving dense requests untouched (their
    first round succeeds with the requested ranges).
    """
    if num_nodes < 1:
        raise TopologyError(f"need at least one node, got {num_nodes}")
    if max_attempts < 1:
        raise TopologyError(f"max_attempts must be >= 1: {max_attempts}")
    rng = RngRegistry(seed).stream(PLACEMENT_STREAM)
    range_ratio = cs_range / tx_range
    diagonal = float(np.hypot(width, height))
    while True:
        for _attempt in range(max_attempts):
            topology = Topology(tx_range=tx_range, cs_range=cs_range)
            xs = rng.uniform(0.0, width, size=num_nodes)
            ys = rng.uniform(0.0, height, size=num_nodes)
            topology.add_nodes(zip(xs.tolist(), ys.tolist()))
            if not require_connected or _is_connected(topology):
                return topology
        # Exhausted this round below the connectivity threshold:
        # densify and redraw.  tx_range >= diagonal makes any placement
        # a complete graph, so the loop is guaranteed to terminate.
        if tx_range >= diagonal:  # pragma: no cover - complete graphs connect
            raise TopologyError(
                f"no connected placement of {num_nodes} nodes in "
                f"{width}x{height} even at tx_range={tx_range}"
            )
        tx_range = min(tx_range * 1.3, diagonal)
        cs_range = tx_range * range_ratio


#: Named stream for clustered node placement, separate from the
#: uniform-random stream so the two builders never share draws.
CLUSTER_STREAM = "topology.cluster_placement"


def clustered_topology(
    num_clusters: int,
    cluster_size: int,
    *,
    cluster_radius: float = 200.0,
    cluster_spacing: float = 800.0,
    relay_spacing: float = 220.0,
    seed: int = 0,
    tx_range: float = DEFAULT_TX_RANGE,
    cs_range: float = DEFAULT_CS_RANGE,
) -> Topology:
    """A cluster-tree: dense node clusters joined by relay chains
    along a spanning tree of a cluster grid.

    Cluster heads sit on a ``ceil(sqrt(C))``-wide row-major grid with
    ``cluster_spacing`` between neighbors (well beyond radio range, so
    clusters are radio-isolated pockets); members are placed uniformly
    in a disc of radius ``cluster_radius`` around their head.  The
    spanning tree connects each cluster to its left neighbor (or, for
    the first cluster of a row, to the cluster above), and every tree
    edge carries a straight chain of relay nodes at most
    ``relay_spacing`` apart.  With ``cluster_radius <= tx_range`` and
    ``relay_spacing <= tx_range`` (both enforced) the whole topology
    is connected *by construction* — no redraw loop — while the
    inter-cluster distance keeps the global density city-like instead
    of uniformly saturated.

    Node ids are cluster-major (cluster ``k`` owns ids
    ``k * cluster_size .. (k + 1) * cluster_size - 1``, head first)
    with the relay nodes appended after all clusters, edge by edge.
    """
    if num_clusters < 1 or cluster_size < 1:
        raise TopologyError(
            f"need positive dimensions, got {num_clusters} clusters "
            f"of {cluster_size}"
        )
    if not 0 < cluster_radius <= tx_range:
        raise TopologyError(
            f"cluster_radius {cluster_radius} must be in (0, "
            f"tx_range={tx_range}] to keep members linked to their head"
        )
    if not 0 < relay_spacing <= tx_range:
        raise TopologyError(
            f"relay_spacing {relay_spacing} must be in (0, "
            f"tx_range={tx_range}] to keep relay chains connected"
        )
    if cluster_spacing <= 0:
        raise TopologyError(f"cluster_spacing must be positive: {cluster_spacing}")
    rng = RngRegistry(seed).stream(CLUSTER_STREAM)
    columns = int(np.ceil(np.sqrt(num_clusters)))
    centers = [
        (
            (cluster % columns) * cluster_spacing,
            (cluster // columns) * cluster_spacing,
        )
        for cluster in range(num_clusters)
    ]
    positions: list[tuple[float, float]] = []
    for center_x, center_y in centers:
        positions.append((center_x, center_y))
        radii = cluster_radius * np.sqrt(rng.uniform(size=cluster_size - 1))
        angles = rng.uniform(0.0, 2.0 * np.pi, size=cluster_size - 1)
        positions.extend(
            (center_x + float(r * np.cos(a)), center_y + float(r * np.sin(a)))
            for r, a in zip(radii, angles)
        )
    segments = max(1, int(np.ceil(cluster_spacing / relay_spacing)))
    for cluster in range(1, num_clusters):
        parent = cluster - 1 if cluster % columns else cluster - columns
        ax, ay = centers[parent]
        bx, by = centers[cluster]
        positions.extend(
            (
                ax + (bx - ax) * step / segments,
                ay + (by - ay) * step / segments,
            )
            for step in range(1, segments)
        )
    topology = Topology(tx_range=tx_range, cs_range=cs_range)
    topology.add_nodes(positions)
    return topology


def relay_count(num_clusters: int, cluster_spacing: float, relay_spacing: float) -> int:
    """Relay nodes :func:`clustered_topology` adds for these
    parameters (used to budget total node counts)."""
    segments = max(1, int(np.ceil(cluster_spacing / relay_spacing)))
    return max(0, num_clusters - 1) * (segments - 1)


def _is_connected(topology: Topology) -> bool:
    """BFS over the topology's neighbor map.

    The map itself is derived through the spatial index (vectorized
    candidate-cell queries), so a full connectivity check — and hence
    each densification round above — costs O(n + links) set walks, not
    the historical O(n²) all-pairs distance scan per redraw.
    """
    ids = topology.node_ids
    if not ids:
        return True
    seen = {ids[0]}
    frontier = [ids[0]]
    while frontier:
        current = frontier.pop()
        for neighbor in topology.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(ids)
