"""Reusable topology generators.

The paper's evaluation figures live in :mod:`repro.scenarios.figures`;
the builders here cover generic shapes used by examples, tests, and
random-workload benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.sim.rng import RngRegistry
from repro.topology.network import (
    DEFAULT_CS_RANGE,
    DEFAULT_TX_RANGE,
    Topology,
)

#: Named stream for random node placement.  Routing topology draws
#: through the registry (instead of a raw ``np.random.default_rng``)
#: keeps them isolated from every protocol/MAC stream: a topology
#: redraw can never perturb backoff or traffic randomness, and vice
#: versa.
PLACEMENT_STREAM = "topology.random_placement"


def chain_topology(
    num_nodes: int,
    spacing: float = 200.0,
    *,
    tx_range: float = DEFAULT_TX_RANGE,
    cs_range: float = DEFAULT_CS_RANGE,
) -> Topology:
    """Nodes 0..n-1 on a straight line, ``spacing`` meters apart.

    With the default ranges, adjacent nodes are linked and any two
    transmitters within two hops sense each other — the classic chain
    used by the paper's Figure 3.
    """
    if num_nodes < 1:
        raise TopologyError(f"need at least one node, got {num_nodes}")
    if spacing <= 0 or spacing > tx_range:
        raise TopologyError(
            f"spacing {spacing} must be in (0, tx_range={tx_range}] for a "
            "connected chain"
        )
    topology = Topology(tx_range=tx_range, cs_range=cs_range)
    topology.add_nodes((index * spacing, 0.0) for index in range(num_nodes))
    return topology


def grid_topology(
    rows: int,
    cols: int,
    spacing: float = 200.0,
    *,
    tx_range: float = DEFAULT_TX_RANGE,
    cs_range: float = DEFAULT_CS_RANGE,
) -> Topology:
    """A rows×cols lattice with ``spacing`` meters between neighbors.

    Node ids are assigned row-major: node ``r * cols + c`` sits at
    ``(c * spacing, r * spacing)``.
    """
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid must be at least 1x1, got {rows}x{cols}")
    if spacing <= 0 or spacing > tx_range:
        raise TopologyError(
            f"spacing {spacing} must be in (0, tx_range={tx_range}] for a "
            "connected grid"
        )
    topology = Topology(tx_range=tx_range, cs_range=cs_range)
    topology.add_nodes(
        (col * spacing, row * spacing) for row in range(rows) for col in range(cols)
    )
    return topology


def parallel_chains_topology(
    num_chains: int,
    chain_length: int,
    *,
    node_spacing: float = 200.0,
    chain_spacing: float = 350.0,
    tx_range: float = DEFAULT_TX_RANGE,
    cs_range: float = DEFAULT_CS_RANGE,
) -> Topology:
    """Several vertical chains side by side.

    With the defaults, nodes within one chain are linked, chains do not
    link to each other, but adjacent chains' links mutually contend —
    the structure behind the paper's Figure 4 (see
    :func:`repro.scenarios.figures.figure4`).

    Node ids are chain-major: chain ``k`` owns ids
    ``k * chain_length .. (k + 1) * chain_length - 1`` ordered top to
    bottom.
    """
    if num_chains < 1 or chain_length < 1:
        raise TopologyError(
            f"need positive dimensions, got {num_chains} chains of {chain_length}"
        )
    if node_spacing <= 0 or node_spacing > tx_range:
        raise TopologyError(
            f"node_spacing {node_spacing} must be in (0, tx_range={tx_range}]"
        )
    if chain_spacing <= tx_range:
        raise TopologyError(
            f"chain_spacing {chain_spacing} must exceed tx_range {tx_range} "
            "to keep chains unlinked"
        )
    topology = Topology(tx_range=tx_range, cs_range=cs_range)
    topology.add_nodes(
        (chain * chain_spacing, position * node_spacing)
        for chain in range(num_chains)
        for position in range(chain_length)
    )
    return topology


def random_topology(
    num_nodes: int,
    *,
    width: float = 800.0,
    height: float = 800.0,
    seed: int = 0,
    tx_range: float = DEFAULT_TX_RANGE,
    cs_range: float = DEFAULT_CS_RANGE,
    require_connected: bool = True,
    max_attempts: int = 200,
) -> Topology:
    """Uniformly random node placement in a width×height rectangle.

    When ``require_connected`` is set (default) placements are redrawn
    until the derived connectivity graph is connected.  Whether that
    succeeds quickly is a density question: random geometric graphs
    connect with high probability only once
    ``pi * tx_range**2 * n / area >~ ln(n)`` (the Gupta–Kumar
    connectivity threshold), so for sparse parameter combinations no
    reasonable number of redraws will find a connected placement.
    Rather than failing, the builder *progressively densifies*: after
    each round of ``max_attempts`` failed draws it grows ``tx_range``
    (and ``cs_range`` proportionally, preserving their ratio) by 30%
    and tries again.  This terminates deterministically — once
    ``tx_range`` reaches the rectangle's diagonal every placement is a
    complete graph — while leaving dense requests untouched (their
    first round succeeds with the requested ranges).
    """
    if num_nodes < 1:
        raise TopologyError(f"need at least one node, got {num_nodes}")
    if max_attempts < 1:
        raise TopologyError(f"max_attempts must be >= 1: {max_attempts}")
    rng = RngRegistry(seed).stream(PLACEMENT_STREAM)
    range_ratio = cs_range / tx_range
    diagonal = float(np.hypot(width, height))
    while True:
        for _attempt in range(max_attempts):
            topology = Topology(tx_range=tx_range, cs_range=cs_range)
            xs = rng.uniform(0.0, width, size=num_nodes)
            ys = rng.uniform(0.0, height, size=num_nodes)
            topology.add_nodes(zip(xs.tolist(), ys.tolist()))
            if not require_connected or _is_connected(topology):
                return topology
        # Exhausted this round below the connectivity threshold:
        # densify and redraw.  tx_range >= diagonal makes any placement
        # a complete graph, so the loop is guaranteed to terminate.
        if tx_range >= diagonal:  # pragma: no cover - complete graphs connect
            raise TopologyError(
                f"no connected placement of {num_nodes} nodes in "
                f"{width}x{height} even at tx_range={tx_range}"
            )
        tx_range = min(tx_range * 1.3, diagonal)
        cs_range = tx_range * range_ratio


def _is_connected(topology: Topology) -> bool:
    ids = topology.node_ids
    if not ids:
        return True
    seen = {ids[0]}
    frontier = [ids[0]]
    while frontier:
        current = frontier.pop()
        for neighbor in topology.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(ids)
