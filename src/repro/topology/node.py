"""Node identity and placement."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Node:
    """A stationary wireless node.

    Attributes:
        node_id: unique non-negative integer identifier.
        x: east-west coordinate in meters.
        y: north-south coordinate in meters.
    """

    node_id: int
    x: float
    y: float

    def distance_to(self, other: "Node") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __str__(self) -> str:
        return f"n{self.node_id}@({self.x:g},{self.y:g})"
