"""Greedy per-node dominating sets.

Paper §6.2: "each node i ... identifies a minimum subset of one-hop
neighbors, called i's dominating set, whose adjacent links reach all
two-hop neighbors."  Link-state updates broadcast by i are rebroadcast
only by members of this set, which suffices to cover every node within
two hops of i.

Minimum set cover is NP-hard; we use the standard greedy
(ln n)-approximation, with deterministic ties (smallest node id).
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.neighbors import two_hop_neighbors
from repro.topology.network import Topology


def dominating_set(topology: Topology, node_id: int) -> frozenset[int]:
    """One-hop neighbors of ``node_id`` that jointly reach all of its
    two-hop neighbors.

    Returns the empty set when ``node_id`` has no two-hop neighbors.

    Raises:
        TopologyError: if some two-hop neighbor is not reachable
            through any one-hop neighbor (cannot happen on a
            consistent topology; guards against future non-geometric
            overrides).
    """
    targets = set(two_hop_neighbors(topology, node_id))
    if not targets:
        return frozenset()

    coverage = {
        neighbor: frozenset(topology.neighbors(neighbor)) & targets
        for neighbor in topology.neighbors(node_id)
    }
    chosen: set[int] = set()
    uncovered = set(targets)
    while uncovered:
        best = max(
            coverage,
            key=lambda neighbor: (len(coverage[neighbor] & uncovered), -neighbor),
        )
        gained = coverage[best] & uncovered
        if not gained:
            raise TopologyError(
                f"two-hop neighbors {sorted(uncovered)} of node {node_id} "
                "are unreachable through any one-hop neighbor"
            )
        chosen.add(best)
        uncovered -= gained
    return frozenset(chosen)


def dominating_sets(topology: Topology) -> dict[int, frozenset[int]]:
    """The dominating set of every node in the topology."""
    return {node_id: dominating_set(topology, node_id) for node_id in topology.node_ids}
