"""Uniform-grid spatial index for range queries over node positions.

City-scale topologies (ROADMAP item 1) made the all-pairs scans in
:class:`~repro.topology.network.Topology` the dominant construction
cost: the neighbor map did O(n²) distance checks and the contention
graph O(L²) pairwise probes.  Both queries are *spatially local* under
the paper's 2-hop RTS/CTS interference model (§2.1/§3.3) — a node only
ever interacts with nodes within a fixed radius — so a uniform grid
with cell size ``cs_range`` answers them by inspecting a constant
number of candidate cells per node, making construction near-linear in
n at fixed density.

Exactness: candidate filtering is vectorized numpy on squared
distances, but every *borderline* candidate (within a 1e-9 relative
band of the query radius) is confirmed with the same
:func:`math.hypot` call the brute-force path uses, so results are
bit-identical to the historical all-pairs scans — including ties at
exactly the radius.  ``tests/test_topology_spatial.py`` pins this
equivalence property on seeded random topologies.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TopologyError

#: Relative half-width of the borderline band around the query radius
#: inside which squared-distance filtering defers to exact math.hypot.
#: Far wider than the ~2-ulp error of the vectorized d² computation.
_BAND = 1e-9


class SpatialIndex:
    """Grid buckets over fixed node positions.

    Positions are addressed by *row* (0..n-1); the caller owns the
    mapping between rows and node ids.  The index is immutable — the
    topology invalidates and rebuilds it when nodes are added.

    Args:
        xs, ys: coordinate arrays (meters), one row per node.
        cell_size: grid cell edge length; queries are cheapest when
            the common query radius is at most a small multiple of it.
    """

    def __init__(self, xs: np.ndarray, ys: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0:
            raise TopologyError(f"cell size must be positive: {cell_size}")
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        if self.xs.shape != self.ys.shape or self.xs.ndim != 1:
            raise TopologyError("xs and ys must be equal-length 1-D arrays")
        self.cell_size = float(cell_size)
        count = len(self.xs)
        if count:
            cell_x = np.floor(self.xs / self.cell_size).astype(np.int64)
            cell_y = np.floor(self.ys / self.cell_size).astype(np.int64)
        else:
            cell_x = cell_y = np.zeros(0, dtype=np.int64)
        self._cell_x = cell_x
        self._cell_y = cell_y
        buckets: dict[tuple[int, int], list[int]] = {}
        for row in range(count):
            buckets.setdefault(
                (int(cell_x[row]), int(cell_y[row])), []
            ).append(row)
        # Rows within a bucket are ascending (insertion order above).
        self._buckets = {
            key: np.asarray(rows, dtype=np.int64)
            for key, rows in buckets.items()
        }

    def __len__(self) -> int:
        return len(self.xs)

    # --- exact range filtering ----------------------------------------------

    def _confirm(
        self,
        dx: np.ndarray,
        dy: np.ndarray,
        radius: float,
    ) -> np.ndarray:
        """Boolean mask: which (dx, dy) offsets lie within ``radius``.

        Vectorized squared-distance comparison away from the radius;
        exact :func:`math.hypot` on the borderline band, so the mask
        equals ``math.hypot(dx, dy) <= radius`` everywhere.
        """
        d2 = dx * dx + dy * dy
        lo = (radius * (1.0 - _BAND)) ** 2
        hi = (radius * (1.0 + _BAND)) ** 2
        keep = d2 <= lo
        border = np.flatnonzero((d2 > lo) & (d2 <= hi))
        for k in border.tolist():
            keep[k] = math.hypot(float(dx[k]), float(dy[k])) <= radius
        return keep

    # --- queries ---------------------------------------------------------------

    def _candidate_rows(self, cell: tuple[int, int], reach: int) -> np.ndarray:
        """Rows in the (2·reach+1)² cell block centered on ``cell``."""
        blocks = [
            bucket
            for dx in range(-reach, reach + 1)
            for dy in range(-reach, reach + 1)
            if (bucket := self._buckets.get((cell[0] + dx, cell[1] + dy)))
            is not None
        ]
        if not blocks:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(blocks)

    def ball(self, row: int, radius: float) -> np.ndarray:
        """Rows within ``radius`` of node ``row`` (excluding itself),
        ascending."""
        reach = int(math.ceil(radius / self.cell_size))
        cell = (int(self._cell_x[row]), int(self._cell_y[row]))
        candidates = self._candidate_rows(cell, reach)
        dx = self.xs[candidates] - self.xs[row]
        dy = self.ys[candidates] - self.ys[row]
        keep = self._confirm(dx, dy, radius)
        keep &= candidates != row
        result = candidates[keep]
        result.sort()
        return result

    def pairs(self, radius: float) -> np.ndarray:
        """All unordered row pairs within ``radius``, as an (k, 2)
        array with ``pair[0] < pair[1]``, lexicographically sorted.

        Each distinct cell pair is visited once (half-space offsets),
        so no pair is produced twice; within-cell pairs come from the
        upper triangle.
        """
        reach = int(math.ceil(radius / self.cell_size))
        offsets = [(0, dy) for dy in range(0, reach + 1)] + [
            (dx, dy)
            for dx in range(1, reach + 1)
            for dy in range(-reach, reach + 1)
        ]
        firsts: list[np.ndarray] = []
        seconds: list[np.ndarray] = []
        for cell in sorted(self._buckets):
            rows_a = self._buckets[cell]
            for dx_cell, dy_cell in offsets:
                if dx_cell == 0 and dy_cell == 0:
                    if len(rows_a) < 2:
                        continue
                    upper_i, upper_j = np.triu_indices(len(rows_a), k=1)
                    cand_a = rows_a[upper_i]
                    cand_b = rows_a[upper_j]
                else:
                    rows_b = self._buckets.get(
                        (cell[0] + dx_cell, cell[1] + dy_cell)
                    )
                    if rows_b is None:
                        continue
                    cand_a = np.repeat(rows_a, len(rows_b))
                    cand_b = np.tile(rows_b, len(rows_a))
                dx = self.xs[cand_b] - self.xs[cand_a]
                dy = self.ys[cand_b] - self.ys[cand_a]
                keep = self._confirm(dx, dy, radius)
                if keep.any():
                    firsts.append(cand_a[keep])
                    seconds.append(cand_b[keep])
        if not firsts:
            return np.zeros((0, 2), dtype=np.int64)
        left = np.concatenate(firsts)
        right = np.concatenate(seconds)
        low = np.minimum(left, right)
        high = np.maximum(left, right)
        order = np.lexsort((high, low))
        return np.column_stack((low[order], high[order]))
