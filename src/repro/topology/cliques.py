"""Maximal contention cliques.

"A set of mutually contending wireless links forms a contention
clique.  A proper clique is a clique that is not contained by a larger
clique." (paper §3.3).  Whenever the paper — and this library — says
*clique*, a maximal clique of the contention graph is meant.

Cliques are enumerated with Bron–Kerbosch with pivoting (implemented
here rather than via networkx so the substrate is self-contained; the
test-suite cross-validates against ``networkx.find_cliques``).

Each clique receives the paper's system-wide identifier: the smallest
node id appearing in the clique plus a sequence number (paper §6.3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.topology.contention import ContentionGraph
from repro.topology.network import Link


@dataclass(frozen=True)
class Clique:
    """A maximal set of mutually contending links.

    Attributes:
        clique_id: ``(smallest node id in the clique, sequence number)``.
        links: canonical undirected links, as a frozenset.
    """

    clique_id: tuple[int, int]
    links: frozenset[Link]

    def __contains__(self, a_link: Link) -> bool:
        i, j = a_link
        canon = (i, j) if i <= j else (j, i)
        return canon in self.links

    def sorted_links(self) -> list[Link]:
        """Member links in deterministic order."""
        return sorted(self.links)

    def nodes(self) -> frozenset[int]:
        """All node ids touched by member links."""
        return frozenset(node for a_link in self.links for node in a_link)


def _bron_kerbosch(
    adjacency: dict[Link, frozenset[Link]],
    r: set[Link],
    p: set[Link],
    x: set[Link],
    out: list[frozenset[Link]],
) -> None:
    if not p and not x:
        out.append(frozenset(r))
        return
    pivot = max(p | x, key=lambda v: (len(adjacency[v] & p), v))
    for vertex in sorted(p - adjacency[pivot]):
        neighbors = adjacency[vertex]
        _bron_kerbosch(adjacency, r | {vertex}, p & neighbors, x & neighbors, out)
        p.remove(vertex)
        x.add(vertex)


def maximal_cliques(graph: ContentionGraph) -> list[Clique]:
    """All proper (maximal) contention cliques of ``graph``.

    Isolated links (no contenders) form singleton cliques, matching
    the definition: a lone link still shares the channel with itself.

    Results are deterministic: cliques are sorted by their link sets
    and numbered in that order.
    """
    adjacency = {a_link: graph.contenders(a_link) for a_link in graph.links}
    raw: list[frozenset[Link]] = []
    _bron_kerbosch(adjacency, set(), set(adjacency), set(), raw)
    raw.sort(key=lambda members: sorted(members))

    sequence_by_owner: dict[int, int] = {}
    cliques: list[Clique] = []
    for members in raw:
        owner = min(node for a_link in members for node in a_link)
        sequence = sequence_by_owner.get(owner, 0)
        sequence_by_owner[owner] = sequence + 1
        cliques.append(Clique(clique_id=(owner, sequence), links=members))
    return cliques


def cliques_of_link(cliques: list[Clique], a_link: Link) -> list[Clique]:
    """The subset of ``cliques`` containing ``a_link``."""
    return [clique for clique in cliques if a_link in clique]


def link_clique_index(
    cliques: list[Clique],
) -> dict[Link, tuple[tuple[int, int], ...]]:
    """Map each canonical link to the ids of the cliques containing it.

    Solvers that repeatedly ask "which cliques does this link cross?"
    (water-filling, traversal counting) build this once instead of
    scanning every clique per link; ids are in clique order.
    """
    lists: dict[Link, list[tuple[int, int]]] = defaultdict(list)
    for clique in cliques:
        for a_link in clique.sorted_links():
            lists[a_link].append(clique.clique_id)
    return {a_link: tuple(ids) for a_link, ids in lists.items()}


def clique_index_positions(cliques: list[Clique]) -> dict[Link, tuple[int, ...]]:
    """Map each canonical link to the *positions* (indices into
    ``cliques``) of the cliques containing it, ascending.

    This is the index behind the hot-path water-filling: looking a
    directed link up here (after canonicalizing) yields exactly the
    tuple that scanning ``enumerate(cliques)`` with ``a_link in
    clique`` would, without the per-link O(cliques) rescan.
    """
    positions: dict[Link, list[int]] = defaultdict(list)
    for index, clique in enumerate(cliques):
        for member in clique.sorted_links():
            positions[member].append(index)
    return {a_link: tuple(ids) for a_link, ids in positions.items()}
