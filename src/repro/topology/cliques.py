"""Maximal contention cliques.

"A set of mutually contending wireless links forms a contention
clique.  A proper clique is a clique that is not contained by a larger
clique." (paper §3.3).  Whenever the paper — and this library — says
*clique*, a maximal clique of the contention graph is meant.

Cliques are enumerated with Bron–Kerbosch with pivoting (implemented
here rather than via networkx so the substrate is self-contained; the
test-suite cross-validates against ``networkx.find_cliques``).

Each clique receives the paper's system-wide identifier: the smallest
node id appearing in the clique plus a sequence number (paper §6.3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.topology.contention import ContentionGraph
from repro.topology.network import Link


@dataclass(frozen=True)
class Clique:
    """A maximal set of mutually contending links.

    Attributes:
        clique_id: ``(smallest node id in the clique, sequence number)``.
        links: canonical undirected links, as a frozenset.
    """

    clique_id: tuple[int, int]
    links: frozenset[Link]

    def __contains__(self, a_link: Link) -> bool:
        i, j = a_link
        canon = (i, j) if i <= j else (j, i)
        return canon in self.links

    def sorted_links(self) -> list[Link]:
        """Member links in deterministic order."""
        return sorted(self.links)

    def nodes(self) -> frozenset[int]:
        """All node ids touched by member links."""
        return frozenset(node for a_link in self.links for node in a_link)


def _bron_kerbosch(
    adjacency: list[int],
    r: int,
    p: int,
    x: int,
    out: list[int],
) -> None:
    """Bron–Kerbosch with pivoting over bitmask vertex sets.

    Vertex sets are arbitrary-precision integers (bit ``v`` set ⇔
    vertex ``v`` present), so intersections and unions are single
    CPython big-int operations instead of per-element hash-set work —
    the difference between minutes and seconds on city-scale
    contention graphs.  On top of Tomita-style pivoting (branch only
    on ``p - N(pivot)``), the single scan that selects the pivot also
    applies two exact reductions that collapse the dense disc-shaped
    neighborhoods geometric contention graphs are made of:

    * **domination prune** — an excluded vertex adjacent to *all* of
      ``p`` would extend any clique this subtree could report, so
      nothing here is maximal and the node dies without branching;
    * **forced absorption** — a candidate adjacent to all *other*
      candidates belongs to every maximal clique of the subproblem
      (any clique missing it could be extended by it), so it moves
      straight into ``r`` without a branch, and the scan restarts on
      the reduced problem.

    The enumerated *set* of maximal cliques is an invariant of the
    graph, so callers that sort the output are unaffected by visit
    order; equivalence with the historical all-at-once set-based
    enumeration is pinned by the spatial property tests.
    """
    while True:
        if not p:
            if not x:
                out.append(r)
            return
        p_size = p.bit_count()
        best = -1
        pivot_adjacency = 0
        excluded = x
        while excluded:
            bit = excluded & -excluded
            excluded ^= bit
            candidate = adjacency[bit.bit_length() - 1]
            count = (candidate & p).bit_count()
            if count == p_size:
                return
            if count > best:
                best = count
                pivot_adjacency = candidate
        forced = 0
        candidates = p
        while candidates:
            bit = candidates & -candidates
            candidates ^= bit
            candidate = adjacency[bit.bit_length() - 1]
            count = (candidate & p).bit_count()
            if count == p_size - 1:
                forced |= bit
            elif count > best:
                best = count
                pivot_adjacency = candidate
        if not forced:
            break
        r |= forced
        p &= ~forced
        while forced:
            bit = forced & -forced
            forced ^= bit
            x &= adjacency[bit.bit_length() - 1]
    extension = p & ~pivot_adjacency
    while extension:
        bit = extension & -extension
        extension ^= bit
        neighbors = adjacency[bit.bit_length() - 1]
        _bron_kerbosch(adjacency, r | bit, p & neighbors, x & neighbors, out)
        p &= ~bit
        x |= bit


def _components(adjacency: list[int]) -> list[int]:
    """Connected components of the contention graph as bitmasks,
    ordered by smallest member."""
    unvisited = (1 << len(adjacency)) - 1
    components: list[int] = []
    while unvisited:
        start = unvisited & -unvisited
        component = start
        frontier = start
        while frontier:
            bit = frontier & -frontier
            frontier ^= bit
            fresh = adjacency[bit.bit_length() - 1] & unvisited & ~component
            component |= fresh
            frontier |= fresh
        unvisited &= ~component
        components.append(component)
    return components


def _bit_positions(mask: int, num_bytes: int) -> tuple[int, ...]:
    """Set-bit positions of ``mask``, ascending (vectorized — cliques
    in dense city-scale contention graphs run to ~100 members)."""
    packed = np.frombuffer(mask.to_bytes(num_bytes, "little"), np.uint8)
    return tuple(
        np.flatnonzero(np.unpackbits(packed, bitorder="little")).tolist()
    )


def maximal_cliques(graph: ContentionGraph) -> list[Clique]:
    """All proper (maximal) contention cliques of ``graph``.

    Isolated links (no contenders) form singleton cliques, matching
    the definition: a lone link still shares the channel with itself.

    Bron–Kerbosch runs per connected component of the contention
    graph, over bitmask vertex sets (links mapped to bit positions in
    sorted-link order — see :func:`_bron_kerbosch`); a clique can
    never span components, so the union of per-component enumerations
    is exactly the global enumeration.  The enumerated set of maximal
    cliques is a graph invariant, and the global sort below fixes the
    numbering, so ids are bit-identical to the historical
    all-at-once set-based run.

    Results are deterministic: cliques are sorted by their link sets
    and numbered in that order.
    """
    links = graph.links
    adjacency = graph.contender_masks()
    raw_masks: list[int] = []
    for component in _components(adjacency):
        _bron_kerbosch(adjacency, 0, component, 0, raw_masks)
    # Bit positions follow sorted-link order, so ascending-bit
    # extraction yields each clique's links already sorted, and
    # sorting the position tuples equals sorting by link sets.  The
    # owner (smallest node id) is the first endpoint of the first
    # link: links are canonical (i < j) and sorted by (i, j).
    num_bytes = (len(links) + 7) // 8
    raw = sorted(_bit_positions(members, num_bytes) for members in raw_masks)

    sequence_by_owner: dict[int, int] = {}
    cliques: list[Clique] = []
    for key in raw:
        owner = links[key[0]][0]
        sequence = sequence_by_owner.get(owner, 0)
        sequence_by_owner[owner] = sequence + 1
        members = frozenset(links[index] for index in key)
        cliques.append(Clique(clique_id=(owner, sequence), links=members))
    return cliques


def cliques_of_link(cliques: list[Clique], a_link: Link) -> list[Clique]:
    """The subset of ``cliques`` containing ``a_link``."""
    return [clique for clique in cliques if a_link in clique]


def link_clique_index(
    cliques: list[Clique],
) -> dict[Link, tuple[tuple[int, int], ...]]:
    """Map each canonical link to the ids of the cliques containing it.

    Solvers that repeatedly ask "which cliques does this link cross?"
    (water-filling, traversal counting) build this once instead of
    scanning every clique per link; ids are in clique order.
    """
    lists: dict[Link, list[tuple[int, int]]] = defaultdict(list)
    for clique in cliques:
        for a_link in clique.sorted_links():
            lists[a_link].append(clique.clique_id)
    return {a_link: tuple(ids) for a_link, ids in lists.items()}


def clique_index_positions(cliques: list[Clique]) -> dict[Link, tuple[int, ...]]:
    """Map each canonical link to the *positions* (indices into
    ``cliques``) of the cliques containing it, ascending.

    This is the index behind the hot-path water-filling: looking a
    directed link up here (after canonicalizing) yields exactly the
    tuple that scanning ``enumerate(cliques)`` with ``a_link in
    clique`` would, without the per-link O(cliques) rescan.
    """
    positions: dict[Link, list[int]] = defaultdict(list)
    for index, clique in enumerate(cliques):
        for member in clique.sorted_links():
            positions[member].append(index)
    return {a_link: tuple(ids) for a_link, ids in positions.items()}
