"""Wireless topology substrate.

Models a static multihop wireless network: node placement, range-based
link derivation, one/two-hop neighborhoods, greedy minimum dominating
sets (used by GMP's dissemination), the link contention graph, and
maximal ("proper") contention cliques.
"""

from repro.topology.builders import (
    chain_topology,
    clustered_topology,
    grid_topology,
    parallel_chains_topology,
    random_topology,
)
from repro.topology.cliques import Clique, maximal_cliques
from repro.topology.contention import ContentionGraph, links_contend
from repro.topology.dominating import dominating_set
from repro.topology.neighbors import one_hop_neighbors, two_hop_neighbors
from repro.topology.network import Link, Topology, link, reverse
from repro.topology.node import Node
from repro.topology.spatial import SpatialIndex

__all__ = [
    "Node",
    "Link",
    "Topology",
    "SpatialIndex",
    "link",
    "reverse",
    "chain_topology",
    "clustered_topology",
    "grid_topology",
    "parallel_chains_topology",
    "random_topology",
    "one_hop_neighbors",
    "two_hop_neighbors",
    "dominating_set",
    "ContentionGraph",
    "links_contend",
    "Clique",
    "maximal_cliques",
]
