"""Link contention relation and contention graph.

Two wireless links *contend* if they cannot carry successful
transmissions simultaneously (paper §2.1).  Under the RTS/CTS protocol
interference model this holds exactly when the links share a node or
some endpoint of one link lies within interference range of some
endpoint of the other (the DATA or the CTS/ACK of one exchange would
corrupt the other).

The relation is direction-insensitive: ``(i, j)`` contends with
``(u, v)`` iff ``(j, i)`` does.  Contention graphs are therefore built
over *undirected* link representatives ``(min, max)``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import TopologyError
from repro.topology.network import Link, Topology


def _canonical(a_link: Link) -> Link:
    i, j = a_link
    return (i, j) if i <= j else (j, i)


def links_contend(topology: Topology, first: Link, second: Link) -> bool:
    """True if the two wireless links cannot be active simultaneously.

    A link never contends with itself (or its own reverse).
    """
    a = _canonical(first)
    b = _canonical(second)
    if a == b:
        return False
    if set(a) & set(b):
        return True
    return any(topology.interferes(x, y) for x in a for y in b)


def _contention_adjacency(
    topology: Topology, vertices: list[Link]
) -> tuple[dict[Link, frozenset[Link]], list[int]]:
    """Adjacency of the contention graph over ``vertices``, built
    locally instead of via O(L²) :func:`links_contend` probes.

    Two distinct canonical links contend iff they share a node or some
    endpoint of one lies within interference range of some endpoint of
    the other — equivalently, writing ``close(x)`` for the vertices
    with an endpoint in ``{x} ∪ ball(x, cs_range)``, the contenders of
    ``(i, j)`` are exactly ``close(i) ∪ close(j)`` minus the link
    itself.  ``ball`` comes from the topology's per-sender sensing
    sets (spatial index), so construction touches only spatially
    nearby link pairs: near-linear in the link count at fixed density.
    The equivalence with pairwise ``links_contend`` probes is pinned
    by ``tests/test_topology_spatial.py``.

    Returns the adjacency both as link frozensets (the graph API) and
    as per-vertex bitmasks over vertex positions (bit ``k`` ⇔
    ``vertices[k]``), which the clique enumerator consumes directly.
    """
    incident: dict[int, list[int]] = {}
    for position, (i, j) in enumerate(vertices):
        incident.setdefault(i, []).append(position)
        incident.setdefault(j, []).append(position)
    incident_arrays = {
        node_id: np.asarray(positions, dtype=np.int64)
        for node_id, positions in incident.items()
    }

    def close_links(node_id: int) -> np.ndarray:
        blocks = [incident_arrays[node_id]]
        for other in sorted(topology.sensing_nodes(node_id)):
            block = incident_arrays.get(other)
            if block is not None:
                blocks.append(block)
        return np.unique(np.concatenate(blocks))

    close_cache: dict[int, np.ndarray] = {}
    adjacency: dict[Link, frozenset[Link]] = {}
    masks: list[int] = []
    row = np.zeros(len(vertices), dtype=bool)
    for position, a_link in enumerate(vertices):
        i, j = a_link
        near_i = close_cache.get(i)
        if near_i is None:
            near_i = close_cache[i] = close_links(i)
        near_j = close_cache.get(j)
        if near_j is None:
            near_j = close_cache[j] = close_links(j)
        contenders = np.union1d(near_i, near_j)
        adjacency[a_link] = frozenset(
            vertices[k] for k in contenders.tolist() if k != position
        )
        row[contenders] = True
        row[position] = False
        masks.append(
            int.from_bytes(np.packbits(row, bitorder="little").tobytes(), "little")
        )
        row[contenders] = False
    return adjacency, masks


class ContentionGraph:
    """Adjacency structure over undirected wireless links.

    Vertices are canonical ``(min, max)`` link pairs; an edge joins two
    links that contend.  Built once per scenario and shared by the
    clique enumeration, the fluid MAC, and GMP's bandwidth-saturated
    condition.  Construction is localized through the topology's
    spatial index (see :func:`_contention_adjacency`) — only links
    whose endpoints fall within ``cs_range + 2·tx_range`` of each
    other can contend, so no all-pairs probing is needed.
    """

    def __init__(self, topology: Topology, links: Iterable[Link] | None = None) -> None:
        self.topology = topology
        if links is None:
            vertices = list(topology.undirected_links())
        else:
            vertices = sorted({_canonical(a_link) for a_link in links})
            for a_link in vertices:
                topology.validate_link(a_link)
        self._vertices: list[Link] = vertices
        self._adjacency, self._masks = _contention_adjacency(topology, vertices)

    @property
    def links(self) -> list[Link]:
        """All vertices (canonical undirected links), sorted."""
        return list(self._vertices)

    def canonical(self, a_link: Link) -> Link:
        """Canonical representative of ``a_link``.

        Raises:
            TopologyError: if the link is not part of this graph.
        """
        canon = _canonical(a_link)
        if canon not in self._adjacency:
            raise TopologyError(f"link {a_link} not in contention graph")
        return canon

    def contenders(self, a_link: Link) -> frozenset[Link]:
        """Links that contend with ``a_link`` (canonical forms)."""
        return self._adjacency[self.canonical(a_link)]

    def contender_masks(self) -> list[int]:
        """Per-vertex contention adjacency as bitmasks: entry ``k``
        has bit ``m`` set iff ``links[k]`` contends with ``links[m]``
        (positions into :attr:`links`).  This is the representation
        the clique enumerator works in."""
        return list(self._masks)

    def degree(self, a_link: Link) -> int:
        """Number of links contending with ``a_link``."""
        return len(self.contenders(a_link))

    def are_adjacent(self, first: Link, second: Link) -> bool:
        """True if the two links contend (graph edge present)."""
        return self.canonical(second) in self.contenders(first)
