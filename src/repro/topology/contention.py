"""Link contention relation and contention graph.

Two wireless links *contend* if they cannot carry successful
transmissions simultaneously (paper §2.1).  Under the RTS/CTS protocol
interference model this holds exactly when the links share a node or
some endpoint of one link lies within interference range of some
endpoint of the other (the DATA or the CTS/ACK of one exchange would
corrupt the other).

The relation is direction-insensitive: ``(i, j)`` contends with
``(u, v)`` iff ``(j, i)`` does.  Contention graphs are therefore built
over *undirected* link representatives ``(min, max)``.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import TopologyError
from repro.topology.network import Link, Topology


def _canonical(a_link: Link) -> Link:
    i, j = a_link
    return (i, j) if i <= j else (j, i)


def links_contend(topology: Topology, first: Link, second: Link) -> bool:
    """True if the two wireless links cannot be active simultaneously.

    A link never contends with itself (or its own reverse).
    """
    a = _canonical(first)
    b = _canonical(second)
    if a == b:
        return False
    if set(a) & set(b):
        return True
    return any(topology.interferes(x, y) for x in a for y in b)


class ContentionGraph:
    """Adjacency structure over undirected wireless links.

    Vertices are canonical ``(min, max)`` link pairs; an edge joins two
    links that contend.  Built once per scenario and shared by the
    clique enumeration, the fluid MAC, and GMP's bandwidth-saturated
    condition.
    """

    def __init__(self, topology: Topology, links: Iterable[Link] | None = None) -> None:
        self.topology = topology
        if links is None:
            vertices = list(topology.undirected_links())
        else:
            vertices = sorted({_canonical(a_link) for a_link in links})
            for a_link in vertices:
                topology.validate_link(a_link)
        self._vertices: list[Link] = vertices
        self._adjacency: dict[Link, frozenset[Link]] = {}
        for a in vertices:
            contenders = {
                b for b in vertices if b != a and links_contend(topology, a, b)
            }
            self._adjacency[a] = frozenset(contenders)

    @property
    def links(self) -> list[Link]:
        """All vertices (canonical undirected links), sorted."""
        return list(self._vertices)

    def canonical(self, a_link: Link) -> Link:
        """Canonical representative of ``a_link``.

        Raises:
            TopologyError: if the link is not part of this graph.
        """
        canon = _canonical(a_link)
        if canon not in self._adjacency:
            raise TopologyError(f"link {a_link} not in contention graph")
        return canon

    def contenders(self, a_link: Link) -> frozenset[Link]:
        """Links that contend with ``a_link`` (canonical forms)."""
        return self._adjacency[self.canonical(a_link)]

    def degree(self, a_link: Link) -> int:
        """Number of links contending with ``a_link``."""
        return len(self.contenders(a_link))

    def are_adjacent(self, first: Link, second: Link) -> bool:
        """True if the two links contend (graph edge present)."""
        return self.canonical(second) in self.contenders(first)
