"""One- and two-hop neighborhood queries.

GMP's dissemination step (paper §6.2) requires every node to know the
topology of its two-hop neighborhood after deployment; these helpers
compute the corresponding sets.
"""

from __future__ import annotations

from repro.topology.network import Topology


def one_hop_neighbors(topology: Topology, node_id: int) -> frozenset[int]:
    """Nodes exactly one hop from ``node_id``."""
    return topology.neighbors(node_id)


def two_hop_neighbors(topology: Topology, node_id: int) -> frozenset[int]:
    """Nodes exactly two hops from ``node_id``.

    A node is a *two-hop* neighbor if it is reachable through some
    one-hop neighbor but is neither ``node_id`` itself nor one of its
    one-hop neighbors.
    """
    direct = topology.neighbors(node_id)
    reachable: set[int] = set()
    for middle in direct:
        reachable.update(topology.neighbors(middle))
    reachable.discard(node_id)
    return frozenset(reachable - direct)


def within_two_hops(topology: Topology, node_id: int) -> frozenset[int]:
    """Union of the one- and two-hop neighborhoods."""
    return one_hop_neighbors(topology, node_id) | two_hop_neighbors(topology, node_id)
