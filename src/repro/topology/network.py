"""The :class:`Topology` container and directed-link helpers.

A *wireless link* exists between two nodes whose distance is at most
the transmission range; traffic on a link is directed, so the rest of
the library represents a link as an ordered pair ``(i, j)`` of node
identifiers meaning "i transmits to j".

Besides the decode range (``tx_range``), the topology records a
carrier-sense range (``cs_range``, also used as the interference
range): a node senses energy — and a reception is corrupted — within
``cs_range`` of a transmitter even when the frame cannot be decoded.
The default 250 m / 550 m pair mirrors the classic ns-2 802.11
configuration that the paper's setup ("transmission range of 250
meters") implies.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import TopologyError
from repro.topology.node import Node
from repro.topology.spatial import SpatialIndex

#: A directed wireless link: (transmitter node id, receiver node id).
Link = tuple[int, int]

DEFAULT_TX_RANGE = 250.0
DEFAULT_CS_RANGE = 550.0


def link(i: int, j: int) -> Link:
    """Construct a directed link from ``i`` to ``j``."""
    return (i, j)


def reverse(a_link: Link) -> Link:
    """The same wireless link in the opposite direction."""
    return (a_link[1], a_link[0])


class Topology:
    """A static multihop wireless network.

    Nodes are placed on a plane; undirected connectivity is derived
    from ``tx_range``.  Range-derived structures (the neighbor map and
    per-sender sensing sets) are computed once the topology is frozen
    (first connectivity query) through a uniform-grid spatial index
    (:class:`~repro.topology.spatial.SpatialIndex`, cell size
    ``cs_range``), so construction cost is near-linear in the node
    count at fixed density instead of the historical O(n²) all-pairs
    scan, and the MAC hot paths see O(1) set lookups.

    Args:
        tx_range: decode range in meters.
        cs_range: carrier-sense / interference range in meters; must be
            at least ``tx_range``.
    """

    def __init__(
        self,
        *,
        tx_range: float = DEFAULT_TX_RANGE,
        cs_range: float = DEFAULT_CS_RANGE,
    ) -> None:
        if tx_range <= 0:
            raise TopologyError(f"tx_range must be positive: {tx_range}")
        if cs_range < tx_range:
            raise TopologyError(
                f"cs_range ({cs_range}) must be >= tx_range ({tx_range})"
            )
        self.tx_range = float(tx_range)
        self.cs_range = float(cs_range)
        self._nodes: dict[int, Node] = {}
        self._neighbors: dict[int, frozenset[int]] | None = None
        self._index: SpatialIndex | None = None
        self._ids: list[int] = []
        self._rows: dict[int, int] = {}
        self._sensing: dict[int, frozenset[int]] = {}

    # --- construction -------------------------------------------------------

    def add_node(self, node_id: int, x: float, y: float) -> Node:
        """Place a node; returns the created :class:`Node`.

        Raises:
            TopologyError: on duplicate node ids.
        """
        if node_id in self._nodes:
            raise TopologyError(f"duplicate node id {node_id}")
        node = Node(node_id=node_id, x=float(x), y=float(y))
        self._nodes[node_id] = node
        # Invalidate derived state (neighbor map, spatial index,
        # sensing-set cache).
        self._neighbors = None
        self._index = None
        self._sensing.clear()
        return node

    def add_nodes(self, positions: Iterable[tuple[float, float]]) -> list[Node]:
        """Place several nodes with consecutive ids starting after the
        current largest id (0 for an empty topology)."""
        start = max(self._nodes, default=-1) + 1
        return [
            self.add_node(start + offset, x, y)
            for offset, (x, y) in enumerate(positions)
        ]

    # --- basic queries --------------------------------------------------------

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_ids(self) -> list[int]:
        """All node identifiers in ascending order."""
        return sorted(self._nodes)

    def node(self, node_id: int) -> Node:
        """Look up a node.

        Raises:
            TopologyError: if the node does not exist.
        """
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    def distance(self, i: int, j: int) -> float:
        """Euclidean distance in meters between nodes ``i`` and ``j``.

        Computed on demand from the coordinates (no O(n²) cache); the
        range predicates below answer from precomputed sets instead of
        calling this.
        """
        return self.node(i).distance_to(self.node(j))

    # --- connectivity -----------------------------------------------------------

    def spatial_index(self) -> SpatialIndex:
        """The uniform-grid index over current node positions (cell
        size ``cs_range``), rebuilt lazily after node additions."""
        if self._index is None:
            ids = sorted(self._nodes)
            self._ids = ids
            self._rows = {node_id: row for row, node_id in enumerate(ids)}
            xs = np.fromiter(
                (self._nodes[node_id].x for node_id in ids), float, len(ids)
            )
            ys = np.fromiter(
                (self._nodes[node_id].y for node_id in ids), float, len(ids)
            )
            self._index = SpatialIndex(xs, ys, self.cs_range)
        return self._index

    def _neighbor_map(self) -> dict[int, frozenset[int]]:
        if self._neighbors is None:
            index = self.spatial_index()
            ids = self._ids
            adjacency: dict[int, list[int]] = {node_id: [] for node_id in ids}
            for row_i, row_j in index.pairs(self.tx_range).tolist():
                i, j = ids[row_i], ids[row_j]
                adjacency[i].append(j)
                adjacency[j].append(i)
            self._neighbors = {
                node_id: frozenset(peers) for node_id, peers in adjacency.items()
            }
        return self._neighbors

    def neighbors(self, node_id: int) -> frozenset[int]:
        """Nodes within decode range of ``node_id`` (excluding itself)."""
        self.node(node_id)
        return self._neighbor_map()[node_id]

    def has_link(self, i: int, j: int) -> bool:
        """True if ``i`` and ``j`` can exchange frames directly."""
        return j in self.neighbors(i)

    def links(self) -> list[Link]:
        """Every directed link, sorted for determinism."""
        result = [
            (i, j) for i in self.node_ids for j in sorted(self.neighbors(i))
        ]
        return result

    def undirected_links(self) -> list[Link]:
        """One representative ``(min, max)`` pair per wireless link."""
        return [
            (i, j)
            for i in self.node_ids
            for j in sorted(self.neighbors(i))
            if i < j
        ]

    def validate_link(self, a_link: Link) -> None:
        """Raise :class:`TopologyError` unless ``a_link`` exists."""
        i, j = a_link
        if not self.has_link(i, j):
            raise TopologyError(f"no wireless link between {i} and {j}")

    # --- radio ranges ------------------------------------------------------------

    def decodes(self, sender: int, receiver: int) -> bool:
        """True if ``receiver`` can decode frames from ``sender``."""
        self.node(receiver)
        return receiver in self.neighbors(sender)

    def senses(self, sender: int, listener: int) -> bool:
        """True if ``listener`` detects channel energy when ``sender``
        transmits (decodable or not)."""
        self.node(listener)
        return listener in self.sensing_nodes(sender)

    def interferes(self, sender: int, receiver: int) -> bool:
        """True if a transmission by ``sender`` corrupts an overlapping
        reception at ``receiver``.  Same radius as :meth:`senses`."""
        return self.senses(sender, receiver)

    def sensing_nodes(self, sender: int) -> frozenset[int]:
        """All nodes that sense ``sender``'s transmissions.

        Answered from the spatial index and cached per sender — this
        sits on the MAC hot paths (carrier-sense attribution in both
        substrates), which used to rescan every node id per call.
        """
        cached = self._sensing.get(sender)
        if cached is None:
            self.node(sender)
            index = self.spatial_index()
            rows = index.ball(self._rows[sender], self.cs_range)
            ids = self._ids
            cached = frozenset(ids[row] for row in rows.tolist())
            self._sensing[sender] = cached
        return cached

    def __iter__(self) -> Iterator[Node]:
        for node_id in self.node_ids:
            yield self._nodes[node_id]
