"""Routing tables and the network-wide route set."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.topology.network import Link


@dataclass
class RoutingTable:
    """Next-hop table of one node.

    Attributes:
        node_id: owner of the table.
        next_hops: destination → next-hop neighbor.  A destination maps
            to itself when the owner *is* the destination.
    """

    node_id: int
    next_hops: dict[int, int] = field(default_factory=dict)

    def next_hop(self, destination: int) -> int:
        """Neighbor to forward to for ``destination``.

        Raises:
            RoutingError: if the destination is unreachable.
        """
        if destination == self.node_id:
            return self.node_id
        try:
            return self.next_hops[destination]
        except KeyError:
            raise RoutingError(
                f"node {self.node_id} has no route to {destination}"
            ) from None

    def has_route(self, destination: int) -> bool:
        """True if the destination is reachable (or is the owner)."""
        return destination == self.node_id or destination in self.next_hops

    def destinations(self) -> list[int]:
        """All reachable destinations, sorted (excluding the owner)."""
        return sorted(self.next_hops)


class RouteSet:
    """All routing tables of a network plus path/link derivations.

    This is the object the rest of the library consumes: the scenario
    runner asks it for flow paths, GMP asks which links serve a given
    destination (to build virtual networks).
    """

    def __init__(self, tables: dict[int, RoutingTable]) -> None:
        self._tables = dict(tables)

    def table(self, node_id: int) -> RoutingTable:
        """The routing table of ``node_id``.

        Raises:
            RoutingError: for unknown nodes.
        """
        try:
            return self._tables[node_id]
        except KeyError:
            raise RoutingError(f"no routing table for node {node_id}") from None

    def next_hop(self, node_id: int, destination: int) -> int:
        """Shortcut for ``table(node_id).next_hop(destination)``."""
        return self.table(node_id).next_hop(destination)

    def path(self, source: int, destination: int) -> list[int]:
        """Node sequence from ``source`` to ``destination`` inclusive.

        Raises:
            RoutingError: if the route is missing or contains a loop.
        """
        path = [source]
        current = source
        limit = len(self._tables) + 1
        while current != destination:
            current = self.next_hop(current, destination)
            if current in path:
                raise RoutingError(
                    f"routing loop toward {destination}: {path + [current]}"
                )
            path.append(current)
            if len(path) > limit:
                raise RoutingError(
                    f"path from {source} to {destination} exceeds node count"
                )
        return path

    def path_links(self, source: int, destination: int) -> list[Link]:
        """Directed links of the path from ``source`` to ``destination``."""
        path = self.path(source, destination)
        return list(zip(path, path[1:]))

    def hop_count(self, source: int, destination: int) -> int:
        """Number of links on the route."""
        return len(self.path(source, destination)) - 1

    def node_ids(self) -> list[int]:
        """All nodes with a routing table, sorted."""
        return sorted(self._tables)
