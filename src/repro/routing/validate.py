"""Routing validation.

The congestion-avoidance scheme's no-deadlock argument (paper §2.2:
"No cyclic waiting is possible if routing is acyclic") requires
per-destination acyclicity; these checks enforce it before a scenario
runs.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.routing.table import RouteSet


def routing_is_acyclic(routes: RouteSet, destination: int) -> bool:
    """True if the next-hop graph toward ``destination`` has no cycle.

    The next-hop graph has an edge ``i -> next_hop(i, destination)``
    for every node with a route; acyclicity means every forwarding
    walk terminates at the destination.
    """
    state: dict[int, int] = {}  # 0 = visiting, 1 = done

    for start in routes.node_ids():
        if not routes.table(start).has_route(destination):
            continue
        walk: list[int] = []
        current = start
        while True:
            mark = state.get(current)
            if mark == 1 or current == destination:
                break
            if mark == 0:
                return False  # reached a node already on this walk
            state[current] = 0
            walk.append(current)
            if not routes.table(current).has_route(destination):
                break
            current = routes.next_hop(current, destination)
        for visited in walk:
            state[visited] = 1
    return True


def assert_acyclic(routes: RouteSet, destinations: list[int]) -> None:
    """Raise :class:`RoutingError` if any destination's next-hop graph
    contains a cycle."""
    for destination in destinations:
        if not routing_is_acyclic(routes, destination):
            raise RoutingError(
                f"next-hop graph toward {destination} contains a cycle"
            )
