"""Greedy geographic routing (GPSR-style).

The paper notes that "the routing table may be implicit under
geographic routing [GPSR]" (§2.1).  This module provides the greedy
forwarding mode: each node forwards toward the neighbor strictly
closest to the destination.  Packets reaching a local minimum (no
neighbor closer than the current node — a "void") have no greedy
route; GPSR's perimeter mode is out of scope, so such destinations are
simply absent from the table, exactly like disconnected ones in the
other substrates.

The output is an ordinary :class:`~repro.routing.table.RouteSet`, so
every consumer (scenario runner, GMP's virtual networks) works
unchanged.

Greedy routing is always loop-free: the distance to the destination
strictly decreases at every hop.
"""

from __future__ import annotations

from repro.routing.table import RouteSet, RoutingTable
from repro.topology.network import Topology


def greedy_geographic_routes(topology: Topology) -> RouteSet:
    """Greedy geographic routing tables for every node.

    A route toward ``destination`` exists at node ``i`` iff some
    neighbor of ``i`` is strictly closer (in Euclidean distance) to the
    destination than ``i`` itself, and the same holds recursively along
    the greedy walk until the destination is reached.
    """
    ids = topology.node_ids
    tables = {node_id: RoutingTable(node_id=node_id) for node_id in ids}

    for destination in ids:
        # First pass: the locally greedy next hop for every node.
        greedy_hop: dict[int, int] = {}
        for node_id in ids:
            if node_id == destination:
                continue
            best = node_id
            best_distance = topology.distance(node_id, destination)
            for neighbor in sorted(topology.neighbors(node_id)):
                candidate = topology.distance(neighbor, destination)
                if candidate < best_distance:
                    best = neighbor
                    best_distance = candidate
            if best != node_id:
                greedy_hop[node_id] = best

        # Second pass: keep only nodes whose greedy walk actually
        # reaches the destination (no dead-ends into a void).
        reaches: dict[int, bool] = {destination: True}

        def walk(start: int) -> bool:
            path = []
            current = start
            while current not in reaches:
                next_hop = greedy_hop.get(current)
                if next_hop is None:
                    for visited in path + [current]:
                        reaches[visited] = False
                    return False
                path.append(current)
                current = next_hop
            result = reaches[current]
            for visited in path:
                reaches[visited] = result
            return result

        for node_id in ids:
            if node_id != destination and walk(node_id):
                tables[node_id].next_hops[destination] = greedy_hop[node_id]

    return RouteSet(tables)
