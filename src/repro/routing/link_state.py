"""Link-state route computation (Dijkstra per destination).

Each node is assumed to know the full topology (as a link-state
protocol would flood it) and runs Dijkstra.  Ties between equal-cost
paths are broken toward the smaller neighbor id so that every node
computes consistent, loop-free next hops.
"""

from __future__ import annotations

import heapq

from repro.routing.table import RouteSet, RoutingTable
from repro.topology.network import Topology


def _dijkstra_parents(
    topology: Topology, destination: int
) -> dict[int, int]:
    """Shortest-path tree toward ``destination``.

    Returns ``parent`` where ``parent[i]`` is i's next hop toward the
    destination (computed by running Dijkstra *from* the destination on
    the undirected connectivity graph; costs are hop counts).
    """
    dist: dict[int, float] = {destination: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = [(0.0, destination, destination)]
    while heap:
        cost, tiebreak, current = heapq.heappop(heap)
        del tiebreak
        if cost > dist.get(current, float("inf")):
            continue
        for neighbor in sorted(topology.neighbors(current)):
            candidate = cost + 1.0
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                parent[neighbor] = current
                heapq.heappush(heap, (candidate, neighbor, neighbor))
    return parent


def link_state_routes(topology: Topology) -> RouteSet:
    """Shortest-path (hop count) routing tables for every node.

    Unreachable destinations are simply absent from the tables;
    :class:`~repro.routing.table.RoutingTable.next_hop` raises for
    them.
    """
    tables = {
        node_id: RoutingTable(node_id=node_id) for node_id in topology.node_ids
    }
    for destination in topology.node_ids:
        parent = _dijkstra_parents(topology, destination)
        for node_id, next_hop in parent.items():
            tables[node_id].next_hops[destination] = next_hop
    return RouteSet(tables)
