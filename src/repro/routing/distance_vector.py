"""Distance-vector route computation (synchronous Bellman–Ford).

Emulates RIP-style convergence: every node repeatedly advertises its
distance vector to its neighbors until no distance changes.  Ties are
broken toward the smaller-id neighbor, matching the link-state
implementation so the two substrates are interchangeable.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.routing.table import RouteSet, RoutingTable
from repro.topology.network import Topology

_INF = float("inf")


def distance_vector_routes(
    topology: Topology, *, max_rounds: int | None = None
) -> RouteSet:
    """Routing tables computed by synchronous distance-vector rounds.

    Args:
        topology: the network.
        max_rounds: safety cap on advertisement rounds; defaults to the
            node count (Bellman–Ford converges in at most |V|-1 rounds
            on static topologies).

    Raises:
        RoutingError: if the computation fails to converge within the
            round cap (impossible on a static topology; defensive).
    """
    ids = topology.node_ids
    if max_rounds is None:
        max_rounds = max(len(ids), 1)

    # distance[i][t] and via[i][t]: i's current belief about destination t.
    distance: dict[int, dict[int, float]] = {
        i: {t: (0.0 if t == i else _INF) for t in ids} for i in ids
    }
    via: dict[int, dict[int, int]] = {i: {} for i in ids}

    for _round in range(max_rounds + 1):
        changed = False
        for i in ids:
            for neighbor in sorted(topology.neighbors(i)):
                for t in ids:
                    candidate = distance[neighbor][t] + 1.0
                    best = distance[i][t]
                    current_via = via[i].get(t)
                    better = candidate < best
                    same_cost_smaller_hop = (
                        candidate == best
                        and current_via is not None
                        and neighbor < current_via
                    )
                    if better or same_cost_smaller_hop:
                        distance[i][t] = candidate
                        via[i][t] = neighbor
                        changed = True
        if not changed:
            break
    else:  # pragma: no cover - defensive; static graphs always converge
        raise RoutingError(f"distance-vector did not converge in {max_rounds} rounds")

    tables = {}
    for i in ids:
        table = RoutingTable(node_id=i)
        for t in ids:
            if t != i and distance[i][t] < _INF:
                table.next_hops[t] = via[i][t]
        tables[i] = table
    return RouteSet(tables)
