"""Routing substrate.

The paper assumes "there exists a routing protocol that establishes a
routing table at each node" (§2.1).  We provide two ways to build
those tables over a :class:`~repro.topology.Topology`:

* :func:`link_state_routes` — Dijkstra shortest paths (link-state);
* :func:`distance_vector_routes` — iterative Bellman–Ford
  (distance-vector), converging the way RIP-style protocols do.

Both produce the same next hops on unit-cost topologies (asserted by
tests) and both are validated to be loop-free per destination.
"""

from repro.routing.distance_vector import distance_vector_routes
from repro.routing.geographic import greedy_geographic_routes
from repro.routing.link_state import link_state_routes
from repro.routing.table import RouteSet, RoutingTable
from repro.routing.validate import assert_acyclic, routing_is_acyclic

__all__ = [
    "RouteSet",
    "RoutingTable",
    "link_state_routes",
    "distance_vector_routes",
    "greedy_geographic_routes",
    "assert_acyclic",
    "routing_is_acyclic",
]
