"""repro — reproduction of "Achieving Global End-to-End Maxmin in
Multihop Wireless Networks" (ICDCS 2008).

The package implements the paper's GMP protocol and every substrate it
depends on: a discrete-event kernel, a packet-level IEEE 802.11 DCF
simulator, buffer-based backpressure, link classification over virtual
networks, and the 802.11/2PP baselines used in the evaluation.

Quickstart::

    from repro import Flow, run_scenario
    from repro.scenarios import figure3

    scenario = figure3()
    result = run_scenario(scenario, protocol="gmp", duration=60.0, seed=1)
    for flow_id, rate in sorted(result.flow_rates.items()):
        print(flow_id, rate)
"""

from repro.core import GmpConfig, GmpProtocol
from repro.errors import ReproError
from repro.flows import Flow, FlowSet
from repro.scenarios import RunResult, run_scenario
from repro.topology import Topology, chain_topology, grid_topology, random_topology

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Flow",
    "FlowSet",
    "GmpConfig",
    "GmpProtocol",
    "RunResult",
    "run_scenario",
    "Topology",
    "chain_topology",
    "grid_topology",
    "random_topology",
    "__version__",
]
