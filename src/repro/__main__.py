"""Command-line interface: ``python -m repro``.

Runs one of the paper's scenarios under a chosen protocol and prints
the paper-style result table.

Examples::

    python -m repro figure3 --protocol gmp --substrate fluid
    python -m repro figure2 --protocol gmp --weights 1,2,1,3 --duration 200
    python -m repro figure4 --protocol 802.11 --substrate dcf
    python -m repro figure3 --substrate fluid \
        --faults "crash:1@20;recover:1@40" --rate-interval 1
    python -m repro figure3 --substrate fluid --profile \
        --metrics-out m.jsonl --trace-out t.json
    python -m repro figure3 --substrate fluid --profile \
        --inspect-out narrative.txt
    python -m repro sweep --scenarios figure3,figure4 --seeds 1,2,3 \
        --workers 4 --json sweep.json
    python -m repro fidelity --tables 1,2,3,4 --seeds 1,2,3 \
        --json FIDELITY.json --markdown FIDELITY.md
    python -m repro explain figure3 --flow 2
    python -m repro figure3 --substrate fluid \
        --churn "poisson:rate=0.3,mean_hold=6,hold=pareto" --duration 60
    python -m repro fuzz --budget 60 --seed 1
    python -m repro figure3 --substrate fluid \
        --stream-out live.jsonl --stream-db live.db
    python -m repro figure3 --substrate fluid --duration 60 \
        --churn "poisson:rate=0.3,mean_hold=6" \
        --health --alerts-out alerts.jsonl
    python -m repro perftrend BENCH_4.json BENCH_7.json --out trend.md
    python -m repro serve scale100 --substrate fluid --pace 20 \
        --port 8787 --session-dir serve-session
    python -m repro serve --replay serve-session/commands.jsonl

Fault specs (``--faults``) are semicolon-separated events; see
:mod:`repro.faults.spec` for the grammar.  ``--metrics-out`` /
``--trace-out`` / ``--profile`` turn on the telemetry subsystem
(:mod:`repro.telemetry`); the trace JSON loads in Perfetto or
``about:tracing``, and GMP runs additionally print the convergence
narrative from :mod:`repro.analysis.inspector` (``--inspect-out``
persists it).  ``fidelity`` regenerates the paper's Tables 1-4 and
checks every EXPERIMENTS.md shape assertion (:mod:`repro.fidelity`);
``explain`` attributes each flow's rate to its bottleneck clique,
active local condition, and centralized-reference gap.

``--stream-out`` / ``--stream-db`` stream telemetry to disk *during*
the run (:mod:`repro.obs`), so a killed or watchdog-aborted run keeps
its metrics; ``--health`` arms the in-run health monitor whose alerts
print as they fire (``--alerts-out`` also appends them as JSON lines);
``perftrend`` renders the accumulated ``BENCH_*.json`` history as a
per-PR trend report; ``serve`` hosts a paced run behind a live HTTP
observability and control plane (:mod:`repro.obs.serve`) and replays a
served session's command journal.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.inspector import inspect_run
from repro.churn.spec import parse_churn_spec
from repro.core.config import GmpConfig
from repro.errors import ReproError
from repro.faults.spec import parse_fault_spec
from repro.scenarios.figures import figure1, figure2, figure3, figure4
from repro.scenarios.runner import (
    PROTOCOLS,
    SUBSTRATES,
    replay_check,
    run_scenario,
)
from repro.sim.trace import TraceCollector
from repro.telemetry import Telemetry
from repro.telemetry.exporters import (
    format_summary,
    write_chrome_trace,
    write_metrics_jsonl,
)


def _build_scenario(args: argparse.Namespace):
    if args.scenario == "figure1":
        return figure1()
    if args.scenario == "figure2":
        weights = tuple(float(part) for part in args.weights.split(","))
        return figure2(weights=weights)  # type: ignore[arg-type]
    if args.scenario == "figure3":
        return figure3()
    if args.scenario == "figure4":
        return figure4()
    # City-scale family (repro.scenarios.scale), e.g. scale300/scale300c.
    from repro.scenarios.sweep import SCENARIO_FACTORIES

    return SCENARIO_FACTORIES[args.scenario]()


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        # Parameter-grid mode has its own option surface; hand the rest
        # of the command line to the sweep engine's parser.
        from repro.scenarios.sweep import sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "fidelity":
        from repro.fidelity.harness import fidelity_main

        return fidelity_main(argv[1:])
    if argv and argv[0] == "explain":
        from repro.fidelity.explain import explain_main

        return explain_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from repro.fuzz.cli import fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "perftrend":
        from repro.obs.perftrend import perftrend_main

        return perftrend_main(argv[1:])
    if argv and argv[0] == "check":
        from repro.check import check_main

        return check_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.obs.serve import serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "scenario",
        choices=(
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "scale100",
            "scale300",
            "scale300c",
            "scale1000",
        ),
    )
    parser.add_argument("--protocol", choices=PROTOCOLS, default="gmp")
    parser.add_argument("--substrate", choices=SUBSTRATES, default="fluid")
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--period", type=float, default=2.0, help="GMP period (s)")
    parser.add_argument("--beta", type=float, default=0.10)
    parser.add_argument(
        "--traffic",
        choices=("cbr", "poisson", "onoff", "pareto-onoff"),
        default="cbr",
    )
    parser.add_argument(
        "--churn",
        default=None,
        help="dynamic workload, e.g. "
        '"poisson:rate=0.3,mean_hold=6,hold=pareto" or '
        '"adversary:burst=2,on=2,off=2"',
    )
    parser.add_argument(
        "--weights",
        default="1,1,1,1",
        help="figure2 flow weights, comma-separated (e.g. 1,2,1,3)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help='fault schedule, e.g. "crash:1@20;recover:1@40;ctrl:0.5@10-30"',
    )
    parser.add_argument(
        "--rate-interval",
        type=float,
        default=None,
        help="record per-flow rates over windows of this many seconds",
    )
    parser.add_argument(
        "--max-events",
        type=int,
        default=None,
        help="kernel watchdog: hard budget on dispatched events",
    )
    parser.add_argument(
        "--stall-limit",
        type=int,
        default=1_000_000,
        help="kernel watchdog: max events without simulated time advancing",
    )
    parser.add_argument(
        "--wall-deadline",
        type=float,
        default=None,
        help="kernel watchdog: real seconds the run may take",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write telemetry metrics + events as JSONL to PATH",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON (Perfetto-loadable) to PATH",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the kernel (per-tag wall time, events/sec) and "
        "print the telemetry summary",
    )
    parser.add_argument(
        "--inspect-out",
        default=None,
        metavar="PATH",
        help="persist the convergence-inspector narrative to PATH "
        "(GMP runs; implies telemetry)",
    )
    parser.add_argument(
        "--trace-categories",
        default=None,
        metavar="CATS",
        help="enable the structured trace collector for these comma-"
        'separated categories (suffix * for prefixes, e.g. "mac.*,gmp.adjust")',
    )
    parser.add_argument(
        "--sanitize",
        choices=("replay",),
        default=None,
        help="run the scenario twice under the replay sanitizer and "
        "diff the event digests (exit 1 and name the first divergent "
        "event on mismatch)",
    )
    parser.add_argument(
        "--stream-out",
        default=None,
        metavar="PATH",
        help="stream telemetry records to a JSONL file *while the run "
        "is in flight* (implies telemetry); a killed run keeps "
        "everything flushed so far",
    )
    parser.add_argument(
        "--stream-db",
        default=None,
        metavar="PATH",
        help="stream telemetry records into a SQLite database "
        "(append-safe across runs; implies telemetry)",
    )
    parser.add_argument(
        "--stream-interval",
        type=float,
        default=1.0,
        help="simulated seconds between streaming flushes "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--health",
        action="store_true",
        help="arm the in-run health monitor: liveness probes plus the "
        "anomaly detectors over sliding windows, alerts printed as "
        "they fire (implies telemetry)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="simulated seconds between health evaluations "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--alerts-out",
        default=None,
        metavar="PATH",
        help="append every delivered health alert as a JSON line to "
        "PATH (implies --health)",
    )
    args = parser.parse_args(argv)

    if args.alerts_out:
        args.health = True
    streaming = bool(args.stream_out or args.stream_db)
    telemetry_on = bool(
        args.metrics_out
        or args.trace_out
        or args.profile
        or args.inspect_out
        or streaming
        or args.health
    )
    telemetry = (
        Telemetry(enabled=True, profile=args.profile) if telemetry_on else None
    )
    trace = None
    if args.trace_categories is not None:
        categories = [
            part.strip() for part in args.trace_categories.split(",") if part.strip()
        ]
        trace = TraceCollector(
            enabled=True, categories=categories or None, limit=200_000
        )

    if args.sanitize is not None and (telemetry is not None or trace is not None):
        print(
            "error: --sanitize replay runs the scenario twice and cannot "
            "share one telemetry/trace collector across runs; drop "
            "--metrics-out/--trace-out/--profile/--trace-categories/"
            "--stream-out/--stream-db/--health/--alerts-out",
            file=sys.stderr,
        )
        return 2

    stream = None
    health = None
    if streaming:
        from repro.obs import JsonlSink, SqliteSink, StreamPublisher

        sinks = []
        if args.stream_out:
            sinks.append(JsonlSink(args.stream_out))
        if args.stream_db:
            sinks.append(SqliteSink(args.stream_db))
        assert telemetry is not None
        stream = StreamPublisher(
            telemetry, sinks, interval=args.stream_interval
        )
    if args.health:
        from repro.obs import (
            HealthConfig,
            HealthMonitor,
            console_delivery,
            jsonl_delivery,
        )

        deliveries = [console_delivery()]
        if args.alerts_out:
            deliveries.append(jsonl_delivery(args.alerts_out))
        health = HealthMonitor(
            HealthConfig(interval=args.health_interval),
            deliveries=deliveries,
        )

    replay_report = None
    try:
        scenario = _build_scenario(args)
        faults = parse_fault_spec(args.faults) if args.faults else None
        churn = parse_churn_spec(args.churn) if args.churn else None
        kwargs = dict(
            protocol=args.protocol,
            substrate=args.substrate,
            duration=args.duration,
            seed=args.seed,
            traffic=args.traffic,
            gmp_config=GmpConfig(period=args.period, beta=args.beta),
            faults=faults,
            churn=churn,
            rate_interval=args.rate_interval,
            max_events=args.max_events,
            stall_limit=args.stall_limit,
            wall_deadline=args.wall_deadline,
        )
        if args.sanitize is not None:
            replay_report, result, _ = replay_check(scenario, **kwargs)
        else:
            result = run_scenario(
                scenario,
                telemetry=telemetry,
                trace=trace,
                stream=stream,
                health=health,
                **kwargs,
            )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        if stream is not None and stream.aborted:
            print(
                "partial telemetry flushed to the streaming sink(s) "
                "before the abort",
                file=sys.stderr,
            )
        return 2

    print(result.summary_table())
    if "rate_limits" in result.extras:
        limits = ", ".join(
            f"f{flow_id}={limit:.0f}" if limit is not None else f"f{flow_id}=-"
            for flow_id, limit in sorted(result.extras["rate_limits"].items())
        )
        print(f"final rate limits: {limits}")
    if "faults" in result.extras:
        for when, text in result.extras["faults"]:
            print(f"fault @ t={when:.3f}s: {text}")
    if "churn" in result.extras:
        churn_report = result.extras["churn"]
        print(
            f"churn: {churn_report.arrivals} arrival(s), "
            f"{churn_report.departures} departure(s), "
            f"{churn_report.skipped_at_cap} skipped at cap; "
            + ("teardown clean" if churn_report.clean else "STATE RESIDUE")
        )
        convergence = result.extras.get("per_arrival_convergence", {})
        settled = [t for t in convergence.values() if t is not None]
        if settled:
            print(
                f"per-arrival convergence: median "
                f"{sorted(settled)[len(settled) // 2]:.1f}s over "
                f"{len(settled)}/{len(convergence)} arrival(s)"
            )

    if telemetry is not None:
        if args.metrics_out:
            lines = write_metrics_jsonl(args.metrics_out, telemetry)
            print(f"metrics: {lines} JSONL records -> {args.metrics_out}")
        if args.trace_out:
            events = write_chrome_trace(args.trace_out, telemetry, trace=trace)
            print(
                f"trace: {events} events -> {args.trace_out} "
                "(load in https://ui.perfetto.dev)"
            )
        if args.profile:
            print()
            print(format_summary(telemetry))
        if "maxmin_reference" in result.extras:
            narrative = inspect_run(result).narrative()
            print()
            print(narrative)
            if args.inspect_out:
                Path(args.inspect_out).write_text(
                    narrative + "\n", encoding="utf-8"
                )
                print(f"inspector narrative -> {args.inspect_out}")
        elif args.inspect_out:
            print(
                "warning: --inspect-out needs a GMP run (no maxmin "
                "reference recorded); nothing written",
                file=sys.stderr,
            )
    if trace is not None:
        note = f"structured trace: {len(trace)} records"
        if trace.dropped:
            note += f" ({trace.dropped} dropped at the limit)"
        print(note)
    if stream is not None:
        targets = ", ".join(
            path for path in (args.stream_out, args.stream_db) if path
        )
        print(
            f"stream: {stream.records_streamed} records in "
            f"{stream.flushes} flushes -> {targets}"
        )
    if health is not None:
        print(health.log.render())
        if args.alerts_out and health.alerts():
            print(f"delivered alerts -> {args.alerts_out}")
    if replay_report is not None:
        print()
        print(replay_report.render())
        if not replay_report.matched:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
