"""simcheck: determinism, layering, and passivity static analysis.

The repo's core guarantees — runs replay identically given a seed,
telemetry is strictly passive, modules respect the dependency DAG —
are cheap to break silently: one ``random.random()``, one iteration
over a ``set`` in an event handler, one telemetry import of the
kernel.  ``simcheck`` walks the AST of every source file and flags
exactly those hazards at review time, before a golden test has to
catch them at run time.

Two analysis layers share one parse of the tree: a per-file AST pass,
and a whole-program pass built on the :mod:`repro.simcheck.callgraph`
call graph (hot-path and worker-process classification with evidence
chains from the registration site).

Rule families (see :data:`RULES` and docs/SIMCHECK.md):

* ``DET0xx`` — determinism: entropy sources outside ``sim/rng.py``,
  wall-clock reads, unordered-set iteration, hash/identity-order
  sorting, float accumulation over unordered collections;
* ``LAY0xx`` — layering: the module dependency DAG, with the
  telemetry/kernel separation called out specially;
* ``PAS0xx`` — passivity: telemetry instrument call sites must be
  side-effect-free expressions;
* ``PERF0xx`` — hot-path complexity: latent O(n^2) collection rescans,
  loop-invariant recomputation, per-event container churn — only on
  functions reachable from a kernel scheduling registration;
* ``UNIT0xx`` — dimension checking over seconds/bits/bits-per-second
  inferred from ``repro.units`` constants and identifier names;
* ``PAR0xx`` — sweep-pool safety: unpicklable callables crossing the
  worker boundary, worker-side writes to module-level state.

Usage::

    python -m repro.simcheck src/
    python -m repro.simcheck src/ --update-baseline
    python -m repro.simcheck src/ --graph-out callgraph.json
    python -m repro check            # simcheck + ruff + mypy, one exit code

Suppressions: append ``# simcheck: allow[RULE] reason`` to the
offending line, or put ``# simcheck: allow-file[RULE] reason`` on a
comment line to suppress a rule for a whole file.  Grandfathered
findings live in ``simcheck-baseline.json``; CI fails on new findings
*and* on stale baseline entries, so the baseline only ever shrinks.
"""

from __future__ import annotations

from repro.simcheck.baseline import Baseline, match_baseline
from repro.simcheck.callgraph import Program, build_program, parse_module
from repro.simcheck.findings import Finding, RULES
from repro.simcheck.rules import analyze_paths, check_file, check_paths

__all__ = [
    "Baseline",
    "Finding",
    "Program",
    "RULES",
    "analyze_paths",
    "build_program",
    "check_file",
    "check_paths",
    "match_baseline",
    "parse_module",
]
