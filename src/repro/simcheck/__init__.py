"""simcheck: determinism, layering, and passivity static analysis.

The repo's core guarantees — runs replay identically given a seed,
telemetry is strictly passive, modules respect the dependency DAG —
are cheap to break silently: one ``random.random()``, one iteration
over a ``set`` in an event handler, one telemetry import of the
kernel.  ``simcheck`` walks the AST of every source file and flags
exactly those hazards at review time, before a golden test has to
catch them at run time.

Rule families (see :data:`RULES` and docs/DETERMINISM.md):

* ``DET0xx`` — determinism: entropy sources outside ``sim/rng.py``,
  wall-clock reads, unordered-set iteration, hash/identity-order
  sorting, float accumulation over unordered collections;
* ``LAY0xx`` — layering: the module dependency DAG, with the
  telemetry/kernel separation called out specially;
* ``PAS0xx`` — passivity: telemetry instrument call sites must be
  side-effect-free expressions.

Usage::

    python -m repro.simcheck src/
    python -m repro.simcheck src/ --update-baseline

Suppressions: append ``# simcheck: allow[RULE] reason`` to the
offending line, or put ``# simcheck: allow-file[RULE] reason`` on a
comment line to suppress a rule for a whole file.  Grandfathered
findings live in ``simcheck-baseline.json``; CI fails on new findings
*and* on stale baseline entries, so the baseline only ever shrinks.
"""

from __future__ import annotations

from repro.simcheck.baseline import Baseline, match_baseline
from repro.simcheck.findings import Finding, RULES
from repro.simcheck.rules import check_file, check_paths

__all__ = [
    "Baseline",
    "Finding",
    "RULES",
    "check_file",
    "check_paths",
    "match_baseline",
]
