"""The AST pass behind ``python -m repro.simcheck``.

One walk per file, three rule families (determinism, layering,
passivity); see :data:`repro.simcheck.findings.RULES` for the
catalogue and docs/DETERMINISM.md for the rationale behind each rule.

The checker is purely syntactic — it resolves import aliases
(``import time as _time`` still trips DET001) but does no type
inference, so it flags *expressions that are sets* (literals,
``set()``/``frozenset()`` calls, comprehensions, and set-operator
combinations of those), not variables that merely happen to hold sets.
That keeps it fast, zero-dependency, and free of false positives on
ordinary code; the runtime replay sanitizer (:mod:`repro.sim.replay`)
is the dynamic backstop for what a syntactic pass cannot see.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.simcheck.findings import Finding
from repro.simcheck.layering import (
    KERNEL_SUBMODULES,
    SCHEDULING_CALLS,
    import_allowed,
)

#: Wall-clock reads (dotted, alias-resolved) flagged by DET001.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.thread_time",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Ambient entropy (DET003).
_ENTROPY_CALLS = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}
_ENTROPY_MODULES = {"secrets"}

#: Identity/repr sort keys (DET006).
_UNSTABLE_SORT_KEYS = {"id", "repr"}

#: Methods that mutate their receiver (PAS002).
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
    "write",
}

#: Attribute names that mark a call as a telemetry instrument mutation.
#: ``inc``/``record``/``record_changed`` are distinctive enough on any
#: receiver; the generic names additionally require a telemetry-ish
#: token somewhere in the receiver chain.
_INSTRUMENT_ATTRS_ALWAYS = {"inc", "record", "record_changed"}
_INSTRUMENT_ATTRS_TOKENED = {"set", "update", "emit", "event", "observe"}
_TELEMETRY_TOKENS = {
    "telemetry",
    "registry",
    "metrics",
    "counter",
    "gauge",
    "series",
    "histogram",
    "hist",
    "instrument",
    "trace",
    "tracer",
    "_tm",
    "tm",
    "sanitizer",
}

_PRAGMA_RE = re.compile(
    r"#\s*simcheck:\s*(allow-file|allow|module)\b\s*(?:\[([^\]]*)\])?\s*(\S*)"
)


def _parse_pragmas(
    lines: Sequence[str],
) -> tuple[dict[int, set[str]], set[str], str | None]:
    """Extract suppression pragmas and the module override.

    Returns ``(line -> allowed rules, file-wide allowed rules,
    module override)``; the rule set ``{"*"}`` allows everything.
    """
    inline: dict[int, set[str]] = {}
    filewide: set[str] = set()
    module_override: str | None = None
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        kind, rules_text, tail = match.groups()
        if kind == "module":
            module_override = tail or None
            continue
        rules = {part.strip() for part in (rules_text or "*").split(",")}
        rules.discard("")
        if kind == "allow":
            inline.setdefault(lineno, set()).update(rules)
        else:
            filewide.update(rules)
    return inline, filewide, module_override


def _module_path_for(path: Path) -> str | None:
    """Dotted path relative to the ``repro`` package, or None when the
    file does not live under one (fixtures use a pragma instead)."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    rel = parts[parts.index("repro") + 1 :]
    if not rel:
        return None
    rel[-1] = rel[-1].removesuffix(".py")
    return ".".join(rel)


class _AliasTable:
    """Alias-resolved dotted names for imports in one file."""

    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    def visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._names[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self._names[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted source path of a Name/Attribute chain, or None."""
        chain: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self._names.get(current.id, current.id)
        chain.append(base)
        return ".".join(reversed(chain))


def _is_set_expr(node: ast.expr, aliases: _AliasTable) -> bool:
    """Is this expression syntactically a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = aliases.resolve(node.func)
        return resolved in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, aliases) or _is_set_expr(
            node.right, aliases
        )
    return False


def _receiver_tokens(node: ast.expr) -> set[str]:
    """Identifiers appearing anywhere in a call-receiver chain."""
    tokens: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
    return tokens


class _FileChecker(ast.NodeVisitor):
    def __init__(
        self,
        path: Path,
        display_path: str,
        lines: Sequence[str],
        module: str | None,
        known_modules: set[str],
    ) -> None:
        self.path = path
        self.display_path = display_path
        self.lines = lines
        self.module = module
        self.module_top = module.split(".")[0] if module else None
        self.known_modules = known_modules
        self.aliases = _AliasTable()
        self.findings: list[Finding] = []
        # numpy-RNG rule exempts the one module whose job is seeding.
        self.is_rng_module = module == "sim.rng"
        self.in_telemetry = bool(module and self.module_top == "telemetry")

    # -- plumbing ----------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        source = (
            self.lines[lineno - 1].strip() if lineno <= len(self.lines) else ""
        )
        self.findings.append(
            Finding(
                rule=rule,
                path=self.display_path,
                line=lineno,
                col=col + 1,
                message=message,
                source_line=source,
            )
        )

    # -- imports: aliases + DET002/DET003 + layering -----------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.aliases.visit_import(node)
        for alias in node.names:
            top = alias.name.split(".")[0]
            if top == "random":
                self._emit(
                    "DET002", node, f"import of stdlib random ({alias.name})"
                )
            elif top in _ENTROPY_MODULES:
                self._emit("DET003", node, f"import of {alias.name}")
            self._check_layering(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.aliases.visit_import_from(node)
        module = node.module or ""
        top = module.split(".")[0]
        if top == "random":
            self._emit("DET002", node, "import from stdlib random")
        elif top in _ENTROPY_MODULES:
            self._emit("DET003", node, f"import from {module}")
        elif module == "numpy.random" and not self.is_rng_module:
            self._emit(
                "DET004",
                node,
                "import from numpy.random outside sim/rng.py",
            )
        for target in self._from_import_targets(node):
            self._check_layering(node, target)
        self.generic_visit(node)

    def _from_import_targets(self, node: ast.ImportFrom) -> Iterable[str]:
        """Absolute dotted modules a ``from X import y`` pulls in."""
        if node.level:
            if self.module is None:
                return []
            package = ["repro"] + self.module.split(".")[:-1]
            package = package[: len(package) - (node.level - 1)]
            base = ".".join(package + ([node.module] if node.module else []))
        else:
            base = node.module or ""
        if not base:
            return []
        targets = []
        for alias in node.names:
            candidate = f"{base}.{alias.name}"
            rel = candidate.removeprefix("repro.")
            # `from repro.sim import kernel` imports the submodule;
            # `from repro.sim.kernel import Simulator` imports a symbol.
            if candidate != rel and rel in self.known_modules:
                targets.append(candidate)
            else:
                targets.append(base)
        return targets

    def _check_layering(self, node: ast.AST, imported: str) -> None:
        if self.module is None or self.module_top is None:
            return
        if imported == "repro" or not imported.startswith("repro."):
            return
        rel = imported.removeprefix("repro.")
        rel_top = rel.split(".")[0]
        if self.in_telemetry and (
            rel in KERNEL_SUBMODULES
            or (rel_top == "sim" and not import_allowed("telemetry", rel))
        ):
            self._emit(
                "LAY002",
                node,
                f"telemetry imports {imported} (only the passive "
                "sim.trace data module is allowed)",
            )
            return
        if not import_allowed(self.module_top, rel):
            self._emit(
                "LAY001",
                node,
                f"layer '{self.module_top}' may not import repro.{rel}",
            )

    # -- calls: DET001/003/004/006, LAY003, PAS001/002 ---------------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.aliases.resolve(node.func)
        if resolved is not None:
            if resolved in _WALL_CLOCK_CALLS:
                self._emit("DET001", node, f"wall-clock read {resolved}()")
            elif resolved in _ENTROPY_CALLS or resolved.startswith("secrets."):
                self._emit("DET003", node, f"entropy source {resolved}()")
            elif resolved.startswith("random."):
                self._emit("DET002", node, f"stdlib random call {resolved}()")
            elif (
                resolved.startswith("numpy.random.")
                and not self.is_rng_module
            ):
                self._emit(
                    "DET004",
                    node,
                    f"{resolved}() outside sim/rng.py — use "
                    "RngRegistry.stream(name)",
                )
            if resolved in {"sorted", "min", "max"}:
                self._check_sort_key(node)
            if resolved == "sum" and node.args and _is_set_expr(
                node.args[0], self.aliases
            ):
                self._emit(
                    "DET007",
                    node,
                    "sum() over a set expression accumulates floats in "
                    "hash order",
                )
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "sort":
                self._check_sort_key(node)
            if (
                self.in_telemetry
                and node.func.attr in SCHEDULING_CALLS
            ):
                self._emit(
                    "LAY003",
                    node,
                    f"telemetry calls scheduling API .{node.func.attr}()",
                )
            self._check_instrument_args(node)
        self.generic_visit(node)

    def _check_sort_key(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            if (
                isinstance(value, ast.Name)
                and value.id in _UNSTABLE_SORT_KEYS
            ):
                self._emit(
                    "DET006",
                    node,
                    f"sort keyed on {value.id}() is not stable across runs",
                )

    def _check_instrument_args(self, node: ast.Call) -> None:
        assert isinstance(node.func, ast.Attribute)
        attr = node.func.attr
        if attr in _INSTRUMENT_ATTRS_ALWAYS:
            pass
        elif attr in _INSTRUMENT_ATTRS_TOKENED:
            if not (_receiver_tokens(node.func.value) & _TELEMETRY_TOKENS):
                return
        else:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.NamedExpr):
                    self._emit(
                        "PAS001",
                        sub,
                        f"walrus assignment inside .{attr}() argument",
                    )
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATORS
                ):
                    self._emit(
                        "PAS002",
                        sub,
                        f".{sub.func.attr}() mutation inside .{attr}() "
                        "argument",
                    )

    # -- iteration: DET005 -------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            self._check_iterable(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def _check_iterable(self, iterable: ast.expr) -> None:
        if _is_set_expr(iterable, self.aliases):
            self._emit(
                "DET005",
                iterable,
                "iteration over a set expression visits elements in hash "
                "order — wrap in sorted()",
            )


def check_file(
    path: Path,
    *,
    display_path: str | None = None,
    known_modules: set[str] | None = None,
) -> list[Finding]:
    """Run every rule over one file; suppressions already applied."""
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    inline, filewide, module_override = _parse_pragmas(lines)
    if module_override is not None:
        module = module_override.removeprefix("repro.")
    else:
        module = _module_path_for(path)
    checker = _FileChecker(
        path,
        display_path or path.as_posix(),
        lines,
        module,
        known_modules or set(),
    )
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        raise SyntaxError(f"{path}: {error}") from error
    checker.visit(tree)
    kept = []
    for finding in checker.findings:
        allowed = inline.get(finding.line, set()) | filewide
        if "*" in allowed or finding.rule in allowed:
            continue
        kept.append(finding)
    return kept


def _collect_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def check_paths(
    paths: Iterable[str | Path], *, root: Path | None = None
) -> list[Finding]:
    """Check every ``.py`` file under ``paths``.

    ``root`` (default: CWD) anchors the repo-relative display paths so
    baseline entries do not depend on where the tool is invoked from.
    """
    root = (root or Path.cwd()).resolve()
    files = _collect_files(paths)
    known = {
        mod
        for file in files
        if (mod := _module_path_for(file)) is not None
    }
    findings: list[Finding] = []
    for file in files:
        resolved = file.resolve()
        try:
            display = resolved.relative_to(root).as_posix()
        except ValueError:
            display = file.as_posix()
        findings.extend(
            check_file(file, display_path=display, known_modules=known)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
