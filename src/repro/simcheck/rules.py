"""The analysis passes behind ``python -m repro.simcheck``.

Two layers share one parse of the tree:

* a **per-file** AST walk (determinism, layering, passivity — the
  PR 3 rules; see :data:`repro.simcheck.findings.RULES` and
  docs/SIMCHECK.md), and
* a **whole-program** pass over the call graph built by
  :mod:`repro.simcheck.callgraph` (hot-path complexity, unit/dimension
  mixing, pool-worker safety — the PERF/UNIT/PAR families in
  :mod:`repro.simcheck.perf_rules` / ``unit_rules`` / ``par_rules``).

Both layers are purely syntactic — import aliases are resolved
(``import time as _time`` still trips DET001) but there is no real
type inference, so rules flag *expressions that are sets*, *names
that read as rates*, *calls the graph can actually resolve*.  That
keeps the tool fast, zero-dependency, and conservative; the runtime
replay sanitizer (:mod:`repro.sim.replay`) is the dynamic backstop
for what a syntactic pass cannot see.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.simcheck.callgraph import (
    AliasTable,
    ModuleInfo,
    Program,
    build_program,
    parse_module,
)
from repro.simcheck.findings import Finding
from repro.simcheck.layering import (
    KERNEL_SUBMODULES,
    SCHEDULING_CALLS,
    import_allowed,
)
from repro.simcheck.par_rules import check_program_par
from repro.simcheck.perf_rules import check_program_perf
from repro.simcheck.unit_rules import check_module_units

#: Wall-clock reads (dotted, alias-resolved) flagged by DET001.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.thread_time",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Ambient entropy (DET003).
_ENTROPY_CALLS = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}
_ENTROPY_MODULES = {"secrets"}

#: Identity/repr sort keys (DET006).
_UNSTABLE_SORT_KEYS = {"id", "repr"}

#: Methods that mutate their receiver (PAS002).
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
    "write",
}

#: Attribute names that mark a call as a telemetry instrument mutation.
#: ``inc``/``record``/``record_changed`` are distinctive enough on any
#: receiver; the generic names additionally require a telemetry-ish
#: token somewhere in the receiver chain.
_INSTRUMENT_ATTRS_ALWAYS = {"inc", "record", "record_changed"}
_INSTRUMENT_ATTRS_TOKENED = {"set", "update", "emit", "event", "observe"}
_TELEMETRY_TOKENS = {
    "telemetry",
    "registry",
    "metrics",
    "counter",
    "gauge",
    "series",
    "histogram",
    "hist",
    "instrument",
    "trace",
    "tracer",
    "_tm",
    "tm",
    "sanitizer",
}

def _is_set_expr(node: ast.expr, aliases: AliasTable) -> bool:
    """Is this expression syntactically a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = aliases.resolve(node.func)
        return resolved in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, aliases) or _is_set_expr(
            node.right, aliases
        )
    return False


def _receiver_tokens(node: ast.expr) -> set[str]:
    """Identifiers appearing anywhere in a call-receiver chain."""
    tokens: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
    return tokens


class _FileChecker(ast.NodeVisitor):
    def __init__(
        self,
        path: Path,
        display_path: str,
        lines: Sequence[str],
        module: str | None,
        known_modules: set[str],
    ) -> None:
        self.path = path
        self.display_path = display_path
        self.lines = lines
        self.module = module
        self.module_top = module.split(".")[0] if module else None
        self.known_modules = known_modules
        self.aliases = AliasTable()
        self.findings: list[Finding] = []
        # numpy-RNG rule exempts the one module whose job is seeding.
        self.is_rng_module = module == "sim.rng"
        self.in_telemetry = bool(module and self.module_top == "telemetry")

    # -- plumbing ----------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        source = (
            self.lines[lineno - 1].strip() if lineno <= len(self.lines) else ""
        )
        self.findings.append(
            Finding(
                rule=rule,
                path=self.display_path,
                line=lineno,
                col=col + 1,
                message=message,
                source_line=source,
            )
        )

    # -- imports: aliases + DET002/DET003 + layering -----------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.aliases.visit_import(node)
        for alias in node.names:
            top = alias.name.split(".")[0]
            if top == "random":
                self._emit(
                    "DET002", node, f"import of stdlib random ({alias.name})"
                )
            elif top in _ENTROPY_MODULES:
                self._emit("DET003", node, f"import of {alias.name}")
            self._check_layering(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.aliases.visit_import_from(node, self.module)
        module = node.module or ""
        top = module.split(".")[0]
        if top == "random":
            self._emit("DET002", node, "import from stdlib random")
        elif top in _ENTROPY_MODULES:
            self._emit("DET003", node, f"import from {module}")
        elif module == "numpy.random" and not self.is_rng_module:
            self._emit(
                "DET004",
                node,
                "import from numpy.random outside sim/rng.py",
            )
        for target in self._from_import_targets(node):
            self._check_layering(node, target)
        self.generic_visit(node)

    def _from_import_targets(self, node: ast.ImportFrom) -> Iterable[str]:
        """Absolute dotted modules a ``from X import y`` pulls in."""
        if node.level:
            if self.module is None:
                return []
            package = ["repro"] + self.module.split(".")[:-1]
            package = package[: len(package) - (node.level - 1)]
            base = ".".join(package + ([node.module] if node.module else []))
        else:
            base = node.module or ""
        if not base:
            return []
        targets = []
        for alias in node.names:
            candidate = f"{base}.{alias.name}"
            rel = candidate.removeprefix("repro.")
            # `from repro.sim import kernel` imports the submodule;
            # `from repro.sim.kernel import Simulator` imports a symbol.
            if candidate != rel and rel in self.known_modules:
                targets.append(candidate)
            else:
                targets.append(base)
        return targets

    def _check_layering(self, node: ast.AST, imported: str) -> None:
        if self.module is None or self.module_top is None:
            return
        if imported == "repro" or not imported.startswith("repro."):
            return
        rel = imported.removeprefix("repro.")
        rel_top = rel.split(".")[0]
        if self.in_telemetry and (
            rel in KERNEL_SUBMODULES
            or (rel_top == "sim" and not import_allowed("telemetry", rel))
        ):
            self._emit(
                "LAY002",
                node,
                f"telemetry imports {imported} (only the passive "
                "sim.trace data module is allowed)",
            )
            return
        if not import_allowed(self.module_top, rel):
            self._emit(
                "LAY001",
                node,
                f"layer '{self.module_top}' may not import repro.{rel}",
            )

    # -- calls: DET001/003/004/006, LAY003, PAS001/002 ---------------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.aliases.resolve(node.func)
        if resolved is not None:
            if resolved in _WALL_CLOCK_CALLS:
                self._emit("DET001", node, f"wall-clock read {resolved}()")
            elif resolved in _ENTROPY_CALLS or resolved.startswith("secrets."):
                self._emit("DET003", node, f"entropy source {resolved}()")
            elif resolved.startswith("random."):
                self._emit("DET002", node, f"stdlib random call {resolved}()")
            elif (
                resolved.startswith("numpy.random.")
                and not self.is_rng_module
            ):
                self._emit(
                    "DET004",
                    node,
                    f"{resolved}() outside sim/rng.py — use "
                    "RngRegistry.stream(name)",
                )
            if resolved in {"sorted", "min", "max"}:
                self._check_sort_key(node)
            if resolved == "sum" and node.args and _is_set_expr(
                node.args[0], self.aliases
            ):
                self._emit(
                    "DET007",
                    node,
                    "sum() over a set expression accumulates floats in "
                    "hash order",
                )
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "sort":
                self._check_sort_key(node)
            if (
                self.in_telemetry
                and node.func.attr in SCHEDULING_CALLS
            ):
                self._emit(
                    "LAY003",
                    node,
                    f"telemetry calls scheduling API .{node.func.attr}()",
                )
            self._check_instrument_args(node)
        self.generic_visit(node)

    def _check_sort_key(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            if (
                isinstance(value, ast.Name)
                and value.id in _UNSTABLE_SORT_KEYS
            ):
                self._emit(
                    "DET006",
                    node,
                    f"sort keyed on {value.id}() is not stable across runs",
                )

    def _check_instrument_args(self, node: ast.Call) -> None:
        assert isinstance(node.func, ast.Attribute)
        attr = node.func.attr
        if attr in _INSTRUMENT_ATTRS_ALWAYS:
            pass
        elif attr in _INSTRUMENT_ATTRS_TOKENED:
            if not (_receiver_tokens(node.func.value) & _TELEMETRY_TOKENS):
                return
        else:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.NamedExpr):
                    self._emit(
                        "PAS001",
                        sub,
                        f"walrus assignment inside .{attr}() argument",
                    )
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATORS
                ):
                    self._emit(
                        "PAS002",
                        sub,
                        f".{sub.func.attr}() mutation inside .{attr}() "
                        "argument",
                    )

    # -- iteration: DET005 -------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            self._check_iterable(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def _check_iterable(self, iterable: ast.expr) -> None:
        if _is_set_expr(iterable, self.aliases):
            self._emit(
                "DET005",
                iterable,
                "iteration over a set expression visits elements in hash "
                "order — wrap in sorted()",
            )


def _apply_pragmas(
    findings: Iterable[Finding], module: ModuleInfo
) -> list[Finding]:
    """Drop findings suppressed by the module's pragmas."""
    kept: list[Finding] = []
    for finding in findings:
        allowed = (
            module.inline_pragmas.get(finding.line, set())
            | module.filewide_pragmas
        )
        if "*" in allowed or finding.rule in allowed:
            continue
        kept.append(finding)
    return kept


def _check_modules(
    modules: list[ModuleInfo], extra_known: set[str] | None = None
) -> tuple[list[Finding], Program]:
    """Run every rule layer over the already-parsed modules."""
    program = build_program(modules)
    known = {m.module for m in modules if m.module_declared}
    known |= extra_known or set()
    findings: list[Finding] = []
    by_path: dict[str, ModuleInfo] = {}
    for module in modules:
        by_path[module.display_path] = module
        checker = _FileChecker(
            module.path,
            module.display_path,
            module.lines,
            module.module if module.module_declared else None,
            known,
        )
        checker.visit(module.tree)
        findings.extend(
            _apply_pragmas(
                checker.findings + check_module_units(module, program),
                module,
            )
        )
    for finding in check_program_perf(program) + check_program_par(program):
        module = by_path.get(finding.path)
        if module is None or _apply_pragmas([finding], module):
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, program


def check_file(
    path: Path,
    *,
    display_path: str | None = None,
    known_modules: set[str] | None = None,
) -> list[Finding]:
    """Run every rule over one file (single-module program);
    suppressions already applied.

    ``known_modules`` augments the layering pass's view of which
    ``repro`` submodules exist (directory runs compute it themselves).
    """
    module = parse_module(path, display_path=display_path)
    findings, _ = _check_modules([module], extra_known=known_modules)
    return findings


def _collect_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def analyze_paths(
    paths: Iterable[str | Path], *, root: Path | None = None
) -> tuple[list[Finding], Program]:
    """Check every ``.py`` file under ``paths`` and return the findings
    together with the annotated call-graph :class:`Program`.

    ``root`` (default: CWD) anchors the repo-relative display paths so
    baseline entries do not depend on where the tool is invoked from.
    """
    root = (root or Path.cwd()).resolve()
    modules: list[ModuleInfo] = []
    for file in _collect_files(paths):
        resolved = file.resolve()
        try:
            display = resolved.relative_to(root).as_posix()
        except ValueError:
            display = file.as_posix()
        modules.append(parse_module(file, display_path=display))
    return _check_modules(modules)


def check_paths(
    paths: Iterable[str | Path], *, root: Path | None = None
) -> list[Finding]:
    """Check every ``.py`` file under ``paths`` (findings only)."""
    return analyze_paths(paths, root=root)[0]
