"""Baseline handling: grandfathered findings that may only shrink.

A baseline entry identifies a finding by ``(rule, path, stripped
source line)`` — deliberately *not* the line number, so unrelated
edits above a grandfathered finding do not invalidate the baseline.
The contract is ratchet-shaped: a finding not in the baseline is
**new** (CI fails), and a baseline entry with no matching finding is
**stale** (CI also fails, forcing the entry's removal), so the
baseline can never silently accumulate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.simcheck.findings import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """The committed set of grandfathered findings."""

    entries: list[dict[str, str]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')!r}"
            )
        entries = data.get("findings", [])
        for entry in entries:
            missing = {"rule", "path", "line"} - set(entry)
            if missing:
                raise ValueError(
                    f"{path}: baseline entry missing {sorted(missing)}: {entry}"
                )
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(
            entries=[
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "line": finding.source_line,
                }
                for finding in findings
            ]
        )

    def keys(self) -> list[tuple[str, str, str]]:
        return [
            (entry["rule"], entry["path"], entry["line"])
            for entry in self.entries
        ]

    def write(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": sorted(
                self.entries,
                key=lambda e: (e["path"], e["rule"], e["line"]),
            ),
        }
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )


@dataclass
class BaselineMatch:
    """Outcome of reconciling findings against a baseline."""

    new: list[Finding]
    grandfathered: list[Finding]
    stale: list[tuple[str, str, str]]

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


def match_baseline(
    findings: list[Finding], baseline: Baseline
) -> BaselineMatch:
    """Split findings into new vs. grandfathered, and report baseline
    entries that no longer match anything (stale).

    Matching is multiset-style: two identical findings need two
    baseline entries.
    """
    budget: dict[tuple[str, str, str], int] = {}
    for key in baseline.keys():
        budget[key] = budget.get(key, 0) + 1
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = [key for key, count in sorted(budget.items()) for _ in range(count)]
    return BaselineMatch(new=new, grandfathered=grandfathered, stale=stale)
