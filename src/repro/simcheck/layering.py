"""The module dependency DAG.

Each top-level module of the ``repro`` package is a layer; a module may
import only the layers listed for it here.  Entries may name a specific
submodule (``"sim.trace"``) to carve out a narrower allowance than the
whole layer: ``telemetry`` may import the passive ``sim.trace`` data
container but never the kernel, the RNG registry, or the event queue —
that separation is what makes "telemetry cannot perturb a run" an
architectural property instead of a testing hope.

``__init__`` and ``__main__`` sit above everything (they are the public
API surface and the CLI); ``scenarios`` is the assembly layer just
below them, and ``fidelity`` (the paper-table harness and run-health
detectors) consumes finished runs on top of it.  ``simcheck`` itself
depends on nothing but ``errors`` so it can never be contaminated by
the code it audits.
"""

from __future__ import annotations

#: module (top-level segment under ``repro``) -> importable layers.
#: A value of ``None`` means "anything" (top-of-stack modules).
ALLOWED_IMPORTS: dict[str, set[str] | None] = {
    "errors": set(),
    "units": set(),
    "simcheck": {"errors"},
    "check": {"errors", "simcheck"},
    "telemetry": {"errors", "units", "sim.trace"},
    "sim": {"errors", "units", "telemetry"},
    "topology": {"errors", "units", "sim.rng"},
    "routing": {"errors", "units", "topology"},
    "flows": {"errors", "units", "sim", "telemetry"},
    "mac": {"errors", "units", "sim", "telemetry", "flows", "topology"},
    "buffers": {"errors", "units", "telemetry", "flows", "topology"},
    "stack": {
        "errors",
        "units",
        "sim",
        "telemetry",
        "flows",
        "topology",
        "mac",
        "buffers",
    },
    "baselines": {"errors", "units", "flows", "topology", "routing", "buffers"},
    "core": {
        "errors",
        "units",
        "sim",
        "telemetry",
        "flows",
        "topology",
        "routing",
        "mac",
        "buffers",
        "stack",
    },
    "faults": {
        "errors",
        "units",
        "sim",
        "telemetry",
        "flows",
        "topology",
        "mac",
        "buffers",
        "stack",
        "core",
    },
    "analysis": {
        "errors",
        "units",
        "telemetry",
        "flows",
        "topology",
        "routing",
    },
    "churn": {
        "errors",
        "units",
        "sim",
        "telemetry",
        "flows",
        "topology",
        "routing",
        "mac",
        "buffers",
        "stack",
        "core",
    },
    "scenarios": {
        "errors",
        "units",
        "sim",
        "telemetry",
        "flows",
        "topology",
        "routing",
        "mac",
        "buffers",
        "stack",
        "core",
        "baselines",
        "faults",
        "churn",
        "analysis",
    },
    "fidelity": {
        "errors",
        "units",
        "telemetry",
        "flows",
        "topology",
        "routing",
        "core",
        "analysis",
        "scenarios",
    },
    "fuzz": {
        "errors",
        "units",
        "sim",
        "telemetry",
        "flows",
        "topology",
        "routing",
        "mac",
        "buffers",
        "stack",
        "core",
        "faults",
        "churn",
        "analysis",
        "scenarios",
        "fidelity",
    },
    # The observability plane consumes finished and *in-flight* runs
    # from above scenarios/fidelity, but — like telemetry — it may
    # never import the kernel: it reaches the simulator only through
    # the duck-typed monitor handle the runner passes it, which is
    # what keeps "observing a run cannot perturb it" architectural.
    # Service mode earns two narrow additions: ``faults`` (the control
    # plane builds FaultEvents for the runner-owned injector to apply)
    # and ``sim.replay`` (the passive digest sanitizer it hands *into*
    # run_scenario) — still no ``sim.kernel``.
    "obs": {
        "errors",
        "units",
        "telemetry",
        "flows",
        "topology",
        "routing",
        "core",
        "faults",
        "analysis",
        "scenarios",
        "fidelity",
        "sim.replay",
    },
    "__init__": None,
    "__main__": None,
}

#: telemetry -> these sim submodules is the separation the replay
#: sanitizer and the golden-digest tests rest on; it gets its own rule
#: id (LAY002) so the finding explains itself.
KERNEL_SUBMODULES = {"sim.kernel", "sim.rng", "sim.event", "sim.replay"}

#: Scheduling attributes telemetry code may never call (LAY003).
SCHEDULING_CALLS = {"call_at", "call_later", "every", "schedule"}


def import_allowed(importer_top: str, imported: str) -> bool:
    """May ``importer_top`` (layer) import ``imported`` (dotted path
    relative to ``repro``, e.g. ``"sim.kernel"``)?"""
    if importer_top not in ALLOWED_IMPORTS:
        return True  # unknown module: no layering opinion
    allowed = ALLOWED_IMPORTS[importer_top]
    if allowed is None:
        return True  # __init__/__main__ are explicitly unrestricted
    imported_top = imported.split(".")[0]
    if imported_top == importer_top:
        return True  # intra-layer imports are free
    if imported in allowed or imported_top in allowed:
        return True
    # A narrower submodule allowance ("sim.trace") admits exactly that
    # subtree.
    return any(
        imported == entry or imported.startswith(entry + ".")
        for entry in allowed
        if "." in entry
    )
