"""PERF rules: complexity lints on hot-path functions.

These rules only fire on functions the call graph proves reachable
from a kernel scheduling registration (``sim.every``/``call_at``/
``timer`` — see :mod:`repro.simcheck.callgraph`), because that is
where a quadratic scan or per-event allocation multiplies by the event
count.  Every finding carries the call chain from the registration
site as evidence.

* **PERF001** — nested iteration over node/link/flow/clique-style
  collections where the inner iterable does not depend on the outer
  loop: a latent O(n^2) that an index precomputation removes.  Inner
  loops that *do* consume the outer element (``for l in
  neighbors(node)``) are linear fan-out and are not flagged; ``while``
  loops never qualify (fixed-point solvers iterate until convergence
  by design).
* **PERF002** — a derive/build/cliques-style call inside a loop whose
  arguments do not depend on the loop: loop-invariant recomputation
  (e.g. re-running Bron–Kerbosch per round).
* **PERF003** — a list/dict/set literal or comprehension allocated
  inside two nested collection loops: a container rebuilt per element
  per event.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.simcheck.callgraph import FunctionInfo, ModuleInfo, Program
from repro.simcheck.findings import Finding, finding_at

#: Identifier words that mark an iterable/target as a simulation-scale
#: collection (nodes, links, flows, cliques, and their members).
COLLECTION_WORDS = {
    "node",
    "nodes",
    "link",
    "links",
    "flow",
    "flows",
    "clique",
    "cliques",
    "neighbor",
    "neighbors",
    "member",
    "members",
}

#: Callee-name words that mark a call as a full (re)derivation.
EXPENSIVE_WORDS = {
    "cliques",
    "build",
    "rebuild",
    "derive",
    "recompute",
    "compute",
}

_WORD_RE = re.compile(r"[a-z]+")


def words_of(name: str) -> set[str]:
    """Lower-case identifier words (``sorted_link_ids`` -> {sorted,
    link, ids})."""
    return set(_WORD_RE.findall(name.lower()))


def _names_in(node: ast.AST) -> set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


def _identifier_words(node: ast.AST) -> set[str]:
    tokens: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens |= words_of(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens |= words_of(sub.attr)
    return tokens


def _assigned_names(body: Iterable[ast.stmt]) -> set[str]:
    """Names (re)bound anywhere in a loop body — a conservative "this
    iterable may be loop-dependent" signal."""
    names: set[str] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    names |= _names_in(target)
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                names |= _names_in(sub.target)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                names |= _names_in(sub.target)
            elif isinstance(sub, ast.NamedExpr):
                names |= _names_in(sub.target)
            elif isinstance(sub, ast.withitem) and sub.optional_vars:
                names |= _names_in(sub.optional_vars)
    return names


@dataclass
class _Loop:
    """One enclosing loop while scanning a function body."""

    is_for: bool  # For or comprehension generator (not while)
    lineno: int
    target_names: set[str] = field(default_factory=set)
    assigned: set[str] = field(default_factory=set)
    collectionish: bool = False


def _make_for_loop(
    target: ast.expr, iterable: ast.expr, body: list[ast.stmt], lineno: int
) -> _Loop:
    tokens = _identifier_words(target) | _identifier_words(iterable)
    return _Loop(
        is_for=True,
        lineno=lineno,
        target_names=_names_in(target),
        assigned=_assigned_names(body),
        collectionish=bool(tokens & COLLECTION_WORDS),
    )


def _make_comp_loop(gen: ast.comprehension) -> _Loop:
    tokens = _identifier_words(gen.target) | _identifier_words(gen.iter)
    return _Loop(
        is_for=True,
        lineno=getattr(gen.iter, "lineno", 1),
        target_names=_names_in(gen.target),
        assigned=set(),
        collectionish=bool(tokens & COLLECTION_WORDS),
    )


class _HotScanner:
    """Scan one hot function; loops are tracked as an explicit stack so
    comprehension generators count as loop levels."""

    def __init__(
        self, info: FunctionInfo, module: ModuleInfo, via: str
    ) -> None:
        self.info = info
        self.module = module
        self.via = via
        self.loops: list[_Loop] = []
        self.findings: list[Finding] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            finding_at(
                rule,
                node,
                path=self.module.display_path,
                lines=self.module.lines,
                message=message,
                via=self.via,
            )
        )

    # -- rule checks --------------------------------------------------------

    def _check_perf001(self, node: ast.AST, loop: _Loop, iterable: ast.expr) -> None:
        if not loop.collectionish:
            return
        iter_names = _names_in(iterable)
        for outer in reversed(self.loops):
            if iter_names & (outer.target_names | outer.assigned):
                # The iterable consumes a name this enclosing loop binds
                # or produces: linear fan-out, not an independent rescan
                # (and any loop further out is shadowed by this binding).
                return
            if outer.is_for and outer.collectionish:
                self._emit(
                    "PERF001",
                    node,
                    "nested collection iteration independent of the "
                    f"outer loop (line {outer.lineno}) — latent O(n^2) "
                    "on the hot path; precompute an index once",
                )
                return

    def _check_perf002(self, node: ast.Call) -> None:
        if not self.loops:
            return
        callee = node.func
        name = (
            callee.attr
            if isinstance(callee, ast.Attribute)
            else callee.id
            if isinstance(callee, ast.Name)
            else None
        )
        if name is None or not (words_of(name) & EXPENSIVE_WORDS):
            return
        inner = self.loops[-1]
        arg_names: set[str] = set()
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            arg_names |= _names_in(arg)
        if arg_names & (inner.target_names | inner.assigned):
            return
        self._emit(
            "PERF002",
            node,
            f"{name}() is recomputed every iteration of the loop at "
            f"line {inner.lineno} but its arguments do not depend on "
            "the loop — hoist it out",
        )

    def _check_perf003(self, node: ast.expr) -> None:
        collection_loops = [
            loop for loop in self.loops if loop.is_for and loop.collectionish
        ]
        if len(collection_loops) < 2:
            return
        # A container whose contents consume the loop targets is the
        # result being built, not churn; only loop-independent
        # allocations (scratch buffers, rebuilt lookups) are flagged.
        bound: set[str] = set()
        for loop in self.loops:
            bound |= loop.target_names | loop.assigned
        if _names_in(node) & bound:
            return
        self._emit(
            "PERF003",
            node,
            "container allocated inside nested collection loops "
            f"(lines {collection_loops[-2].lineno} and "
            f"{collection_loops[-1].lineno}) — rebuilt per element per "
            "event; hoist or reuse it",
        )

    # -- traversal ----------------------------------------------------------

    def scan(self) -> list[Finding]:
        for stmt in self.info.node.body:
            self._visit(stmt)
        return self.findings

    def _visit_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are their own FunctionInfo
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._visit(node.iter)  # evaluated once, outside this loop
            loop = _make_for_loop(
                node.target, node.iter, node.body + node.orelse, node.lineno
            )
            self._check_perf001(node, loop, node.iter)
            self.loops.append(loop)
            for stmt in node.body + node.orelse:
                self._visit(stmt)
            self.loops.pop()
            return
        if isinstance(node, ast.While):
            # The test re-evaluates per iteration; while never counts
            # as a collection loop (fixed-point solvers are exempt).
            self.loops.append(_Loop(is_for=False, lineno=node.lineno))
            self._visit(node.test)
            for stmt in node.body + node.orelse:
                self._visit(stmt)
            self.loops.pop()
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            if not isinstance(node, ast.GeneratorExp):
                self._check_perf003(node)
            self._visit_comprehension(node)
            return
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            self._check_perf003(node)
            self._visit_children(node)
            return
        if isinstance(node, ast.Call):
            self._check_perf002(node)
            self._visit_children(node)
            return
        self._visit_children(node)

    def _visit_comprehension(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        pushed = 0
        for gen in node.generators:
            self._visit(gen.iter)  # outer gens' scope applies, not this one's
            loop = _make_comp_loop(gen)
            self._check_perf001(gen.iter, loop, gen.iter)
            self.loops.append(loop)
            pushed += 1
            for cond in gen.ifs:
                self._visit(cond)
        if isinstance(node, ast.DictComp):
            self._visit(node.key)
            self._visit(node.value)
        else:
            self._visit(node.elt)
        for _ in range(pushed):
            self.loops.pop()


def check_program_perf(program: Program) -> list[Finding]:
    """Run the PERF rules over every hot-path function."""
    findings: list[Finding] = []
    for qualname in sorted(program.hot_chains):
        info = program.functions.get(qualname)
        if info is None:
            continue
        module = program.modules.get(info.module)
        if module is None:
            continue
        via = program.describe_chain(qualname)
        findings.extend(_HotScanner(info, module, via).scan())
    return findings
