"""Whole-program call-graph construction over the ``repro`` package.

The per-file AST pass (:mod:`repro.simcheck.rules`) can reject local
hazards — a wall-clock read, a set iteration — but the properties the
scale work depends on are *global*: "this nested loop runs on the hot
path", "this function executes inside a sweep-pool worker".  This
module parses every source file once, indexes functions, classes and
import aliases, resolves intra-package calls (including one level of
attribute-type inference for ``self.attr.method()`` and re-export
chains through ``__init__`` modules), and classifies each function:

* **hot** — transitively reachable from a callback registered with the
  kernel's scheduling API (``call_at``/``call_later``/``every``/
  ``timer``/``schedule``), i.e. code the event loop dispatches.  The
  PERF rules only fire here, and every finding carries the evidence
  chain back to the registration site.
* **worker** — transitively reachable from a callable handed to a
  process-pool dispatch (``pool.map``/``imap``/``apply_async``/
  ``executor.submit``).  The PAR rules use this to flag module-level
  mutable state written inside a worker.

The builder is purely syntactic and deliberately conservative: calls
through stored callables (e.g. ``NodeServices`` fields) and dynamic
dispatch it cannot resolve are simply absent from the graph, so the
classification under-approximates reachability rather than guessing.
The annotated graph exports as JSON or DOT via
``python -m repro.simcheck --graph-out``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Scheduling attributes whose callable arguments become hot roots.
SCHEDULING_ATTRS = {"call_at", "call_later", "every", "schedule", "timer"}

#: Pool-dispatch attributes whose callable arguments become worker
#: roots (the receiver must look like a pool/executor, see
#: :func:`_receiver_tokens`).
POOL_DISPATCH_ATTRS = {
    "map",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "map_async",
    "submit",
}

#: Receiver-name tokens that mark a dispatch receiver as a pool.
POOL_RECEIVER_TOKENS = {"pool", "executor"}

_PRAGMA_RE = re.compile(
    r"#\s*simcheck:\s*(allow-file|allow|module)\b\s*(?:\[([^\]]*)\])?\s*(\S*)"
)


def parse_pragmas(
    lines: Sequence[str],
) -> tuple[dict[int, set[str]], set[str], str | None]:
    """Extract suppression pragmas and the module override.

    Returns ``(line -> allowed rules, file-wide allowed rules,
    module override)``; the rule set ``{"*"}`` allows everything.
    """
    inline: dict[int, set[str]] = {}
    filewide: set[str] = set()
    module_override: str | None = None
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        kind, rules_text, tail = match.groups()
        if kind == "module":
            module_override = tail or None
            continue
        rules = {part.strip() for part in (rules_text or "*").split(",")}
        rules.discard("")
        if kind == "allow":
            inline.setdefault(lineno, set()).update(rules)
        else:
            filewide.update(rules)
    return inline, filewide, module_override


def module_path_for(path: Path) -> str | None:
    """Dotted path relative to the ``repro`` package, or None when the
    file does not live under one (fixtures use a pragma instead)."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    rel = parts[parts.index("repro") + 1 :]
    if not rel:
        return None
    rel[-1] = rel[-1].removesuffix(".py")
    return ".".join(rel)


class AliasTable:
    """Alias-resolved dotted names for imports in one file."""

    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    @property
    def names(self) -> dict[str, str]:
        return self._names

    def visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._names[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_import_from(self, node: ast.ImportFrom, module: str | None) -> None:
        if node.level:
            # Relative import: resolve against the importing module.
            if module is None:
                return
            package = ["repro"] + module.split(".")[:-1]
            package = package[: len(package) - (node.level - 1)]
            base = ".".join(package + ([node.module] if node.module else []))
        elif node.module is not None:
            base = node.module
        else:
            return
        for alias in node.names:
            self._names[alias.asname or alias.name] = f"{base}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted source path of a Name/Attribute chain, or None."""
        chain: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self._names.get(current.id, current.id)
        chain.append(base)
        return ".".join(reversed(chain))


def _receiver_tokens(node: ast.expr) -> set[str]:
    """Identifiers appearing anywhere in a call-receiver chain."""
    tokens: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
    return tokens


@dataclass
class FunctionInfo:
    """One function or method in the program."""

    qualname: str  # e.g. "mac.fluid.FluidMac._round"
    module: str  # e.g. "mac.fluid"
    name: str
    cls: str | None  # owning class qualname, or None
    path: str  # display path of the defining file
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_local: bool = False  # nested inside another function
    calls: list[str] = field(default_factory=list)  # resolved callees
    refs: list[str] = field(default_factory=list)  # callables passed on
    locals_defined: set[str] = field(default_factory=set)  # nested defs

    def add_call(self, qualname: str) -> None:
        if qualname not in self.calls:
            self.calls.append(qualname)

    def add_ref(self, qualname: str) -> None:
        if qualname not in self.refs:
            self.refs.append(qualname)


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, inferred attribute types."""

    qualname: str
    module: str
    name: str
    lineno: int
    bases: list[str] = field(default_factory=list)  # resolved dotted names
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    fields: list[str] = field(default_factory=list)  # AnnAssign order


@dataclass
class ModuleInfo:
    """One parsed source file."""

    module: str  # repro-relative dotted path
    path: Path
    display_path: str
    lines: list[str]
    tree: ast.Module
    aliases: AliasTable
    inline_pragmas: dict[int, set[str]]
    filewide_pragmas: set[str]
    #: False when the module identity fell back to the file stem (no
    #: repro-relative path, no ``module <name>`` pragma) — such
    #: names are local labels, not known repro submodules.
    module_declared: bool = True
    mutable_globals: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class RootSite:
    """Where a hot/worker root was registered."""

    qualname: str  # the registered callable
    registered_by: str  # qualname of the registering function
    api: str  # e.g. "every", "map"
    path: str
    lineno: int


_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "collections.defaultdict",
    "collections.deque",
    "collections.Counter",
    "collections.OrderedDict",
}


def _strip_repro(dotted: str) -> str:
    return dotted.removeprefix("repro.") if dotted.startswith("repro.") else dotted


class Program:
    """The indexed whole program: modules, functions, classes, edges,
    and the hot/worker classification with evidence chains."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: qualname -> chain of qualnames from a registration site
        #: (first element describes the root registration).
        self.hot_chains: dict[str, tuple[str, ...]] = {}
        self.worker_chains: dict[str, tuple[str, ...]] = {}
        self.hot_roots: list[RootSite] = []
        self.worker_roots: list[RootSite] = []

    # --- symbol resolution -------------------------------------------------

    def resolve_symbol(self, dotted: str, _seen: frozenset[str] = frozenset()) -> str | None:
        """Resolve a repro-relative dotted name to a function or class
        qualname, following re-export chains (``from repro.mac.fluid
        import FluidMac`` in ``mac/__init__`` makes ``mac.FluidMac``
        resolve to ``mac.fluid.FluidMac``)."""
        dotted = _strip_repro(dotted)
        if dotted in _seen or len(_seen) > 20:
            return None  # re-export cycle (or pathological chain)
        seen = _seen | {dotted}
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # Try every split "module prefix . first . rest", longest
        # module prefix first, and follow that module's import aliases.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            head = ".".join(parts[:cut])
            module = self.modules.get(head) or self.modules.get(f"{head}.__init__")
            if module is None:
                continue
            first = parts[cut]
            rest = parts[cut + 1 :]
            target = module.aliases.names.get(first)
            if target is None:
                continue
            target = _strip_repro(target)
            if not rest:
                resolved = self.resolve_symbol(target, seen)
                if resolved is not None:
                    return resolved
                continue
            if target in self.modules or f"{target}.__init__" in self.modules:
                # The alias names a module: keep walking into it.
                resolved = self.resolve_symbol(".".join([target] + rest), seen)
                if resolved is not None:
                    return resolved
                continue
            # The alias names a symbol; the only attribute access we can
            # follow is a method on a re-exported class (guarding here
            # is what keeps `from .shrink import shrink`-style aliases,
            # where a symbol shadows its module, from expanding forever).
            symbol = self.resolve_symbol(target, seen)
            if symbol is not None and symbol in self.classes and len(rest) == 1:
                method = self.method_on(symbol, rest[0])
                if method is not None:
                    return method
        return None

    def method_on(
        self, cls_qualname: str, name: str, _seen: frozenset[str] = frozenset()
    ) -> str | None:
        """Look up ``name`` on a class or (depth-first) its bases."""
        if cls_qualname in _seen:
            return None
        cls = self.classes.get(cls_qualname)
        if cls is None:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            resolved = self.resolve_symbol(base)
            if resolved is None and "." not in base:
                # A bare name no import introduced: a base defined in
                # the same module as the subclass.
                local = f"{cls.module}.{base}"
                if local in self.classes:
                    resolved = local
            if resolved is None or resolved not in self.classes:
                continue
            found = self.method_on(resolved, name, _seen | {cls_qualname})
            if found is not None:
                return found
        return None

    # --- classification ----------------------------------------------------

    def hot_chain(self, qualname: str) -> tuple[str, ...] | None:
        return self.hot_chains.get(qualname)

    def describe_chain(self, qualname: str) -> str:
        """Human-readable hot-path evidence for a function."""
        chain = self.hot_chains.get(qualname)
        if not chain:
            return ""
        return " -> ".join(chain)

    def _propagate(
        self, roots: list[RootSite]
    ) -> dict[str, tuple[str, ...]]:
        chains: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for root in roots:
            if root.qualname in chains:
                continue
            chains[root.qualname] = (
                f"{root.api}@{root.path}:{root.lineno}",
                root.qualname,
            )
            frontier.append(root.qualname)
        while frontier:
            current = frontier.pop(0)
            info = self.functions.get(current)
            if info is None:
                continue
            base = chains[current]
            for callee in info.calls + info.refs:
                if callee in chains:
                    continue
                chains[callee] = base + (callee,)
                frontier.append(callee)
        return chains

    def classify(self) -> None:
        """(Re)compute hot/worker reachability from the root sites."""
        self.hot_chains = self._propagate(self.hot_roots)
        self.worker_chains = self._propagate(self.worker_roots)

    # --- export ------------------------------------------------------------

    def to_json(self) -> dict[str, object]:
        functions = []
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            functions.append(
                {
                    "qualname": qualname,
                    "path": info.path,
                    "line": info.lineno,
                    "hot": qualname in self.hot_chains,
                    "worker": qualname in self.worker_chains,
                    "hot_chain": list(self.hot_chains.get(qualname, ())),
                    "calls": sorted(info.calls),
                    "refs": sorted(info.refs),
                }
            )
        return {
            "modules": sorted(self.modules),
            "functions": functions,
            "hot_roots": [
                {
                    "qualname": root.qualname,
                    "api": root.api,
                    "registered_by": root.registered_by,
                    "path": root.path,
                    "line": root.lineno,
                }
                for root in self.hot_roots
            ],
            "worker_roots": [
                {
                    "qualname": root.qualname,
                    "api": root.api,
                    "registered_by": root.registered_by,
                    "path": root.path,
                    "line": root.lineno,
                }
                for root in self.worker_roots
            ],
        }

    def to_dot(self) -> str:
        """Graphviz DOT rendering: hot nodes red, worker nodes blue."""
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
        for qualname in sorted(self.functions):
            attrs = []
            if qualname in self.hot_chains:
                attrs.append('color="red"')
            if qualname in self.worker_chains:
                attrs.append('style="filled" fillcolor="lightblue"')
            suffix = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f'  "{qualname}"{suffix};')
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            for callee in sorted(set(info.calls)):
                lines.append(f'  "{qualname}" -> "{callee}";')
            for callee in sorted(set(info.refs) - set(info.calls)):
                lines.append(f'  "{qualname}" -> "{callee}" [style=dashed];')
        lines.append("}")
        return "\n".join(lines) + "\n"


# --- pass 1: declarations --------------------------------------------------


def _iter_defs(
    body: Iterable[ast.stmt],
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef]:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield stmt


def _is_mutable_literal(node: ast.expr, aliases: AliasTable) -> bool:
    if isinstance(
        node,
        (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        resolved = aliases.resolve(node.func)
        return resolved in _MUTABLE_FACTORIES
    return False


def _collect_module(program: Program, module: ModuleInfo) -> None:
    """Index the module's functions, classes and mutable globals."""
    mod = module.module
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Import):
            module.aliases.visit_import(stmt)
        elif isinstance(stmt, ast.ImportFrom):
            module.aliases.visit_import_from(stmt, mod)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and _is_mutable_literal(
                    stmt.value, module.aliases
                ):
                    module.mutable_globals.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.value is not None
                and _is_mutable_literal(stmt.value, module.aliases)
            ):
                module.mutable_globals.add(stmt.target.id)
    for node in _iter_defs(module.tree.body):
        if isinstance(node, ast.ClassDef):
            _collect_class(program, module, node)
        else:
            _collect_function(program, module, node, cls=None, is_local=False)


def _collect_class(
    program: Program, module: ModuleInfo, node: ast.ClassDef
) -> None:
    qualname = f"{module.module}.{node.name}"
    info = ClassInfo(
        qualname=qualname, module=module.module, name=node.name, lineno=node.lineno
    )
    for base in node.bases:
        resolved = module.aliases.resolve(base)
        if resolved is not None:
            info.bases.append(_strip_repro(resolved))
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.fields.append(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = _collect_function(
                program, module, stmt, cls=qualname, is_local=False
            )
            info.methods[stmt.name] = method.qualname
    program.classes[qualname] = info


def _collect_function(
    program: Program,
    module: ModuleInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    cls: str | None,
    is_local: bool,
    parent: str | None = None,
) -> FunctionInfo:
    owner = parent or cls or module.module
    qualname = f"{owner}.{node.name}"
    info = FunctionInfo(
        qualname=qualname,
        module=module.module,
        name=node.name,
        cls=cls,
        path=module.display_path,
        lineno=node.lineno,
        node=node,
        is_local=is_local,
    )
    program.functions[qualname] = info
    # Nested defs become their own (local) functions; the parent notes
    # their names so references resolve and PAR001 can spot them.
    for child in ast.walk(node):
        if child is node:
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _innermost_enclosing(node, child) is node:
                info.locals_defined.add(child.name)
                _collect_function(
                    program,
                    module,
                    child,
                    cls=cls,
                    is_local=True,
                    parent=qualname,
                )
        elif isinstance(child, ast.ClassDef):
            if _innermost_enclosing(node, child) is node:
                info.locals_defined.add(child.name)
    return info


def _innermost_enclosing(root: ast.AST, target: ast.AST) -> ast.AST:
    """The innermost function def under ``root`` that contains
    ``target`` (or ``root`` itself when directly nested)."""
    best = root
    stack: list[tuple[ast.AST, ast.AST]] = [(root, root)]
    while stack:
        node, owner = stack.pop()
        if node is target:
            best = owner
            break
        next_owner = (
            node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not root
            else owner
        )
        for child in ast.iter_child_nodes(node):
            stack.append((child, next_owner))
    return best


# --- pass 2: attribute types and edges ------------------------------------


class _TypeContext:
    """Name -> class-qualname typing for one function body."""

    def __init__(
        self,
        program: Program,
        module: ModuleInfo,
        info: FunctionInfo,
    ) -> None:
        self.program = program
        self.module = module
        self.info = info
        self.local_types: dict[str, str] = {}
        node = info.node
        for arg in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        ):
            if arg.annotation is None:
                continue
            annotated = self._annotation_class(arg.annotation)
            if annotated is not None:
                self.local_types[arg.arg] = annotated

    def _annotation_class(self, annotation: ast.expr) -> str | None:
        # Unwrap Optional-ish unions and string annotations shallowly.
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            dotted = annotation.value.strip().strip('"')
            return self.program.resolve_symbol(dotted) if dotted else None
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return self._annotation_class(annotation.left)
        resolved = self.module.aliases.resolve(annotation)
        if resolved is None:
            return None
        qualname = self.program.resolve_symbol(resolved)
        if qualname is not None and qualname in self.program.classes:
            return qualname
        return None

    def class_of(self, node: ast.expr) -> str | None:
        """Class qualname an expression evaluates to, if inferable."""
        if isinstance(node, ast.Name):
            return self.local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base: str | None
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                base = self.info.cls
            else:
                base = self.class_of(node.value)
            if base is None:
                return None
            cls = self.program.classes.get(base)
            if cls is None:
                return None
            return self._attr_type(base, node.attr)
        if isinstance(node, ast.Call):
            resolved = self.resolve_callable(node.func)
            if resolved is not None and resolved in self.program.classes:
                return resolved
        return None

    def _attr_type(
        self, cls_qualname: str, attr: str, _seen: frozenset[str] = frozenset()
    ) -> str | None:
        if cls_qualname in _seen:
            return None
        cls = self.program.classes.get(cls_qualname)
        if cls is None:
            return None
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        for base in cls.bases:
            resolved = self.program.resolve_symbol(base)
            if resolved is None:
                continue
            found = self._attr_type(resolved, attr, _seen | {cls_qualname})
            if found is not None:
                return found
        return None

    def resolve_callable(self, func: ast.expr) -> str | None:
        """Function or class qualname an expression refers to."""
        program = self.program
        if isinstance(func, ast.Name):
            if func.id in self.info.locals_defined:
                return program.resolve_symbol(f"{self.info.qualname}.{func.id}")
            resolved = self.module.aliases.resolve(func)
            if resolved is not None:
                qualname = program.resolve_symbol(resolved)
                if qualname is not None:
                    return qualname
            # A bare name in this module's namespace.
            return program.resolve_symbol(f"{self.module.module}.{func.id}")
        if isinstance(func, ast.Attribute):
            # self.method() / self.attr.method() / var.method()
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                if self.info.cls is not None:
                    method = program.method_on(self.info.cls, func.attr)
                    if method is not None:
                        return method
            owner = self.class_of(func.value)
            if owner is not None:
                return program.method_on(owner, func.attr)
            resolved = self.module.aliases.resolve(func)
            if resolved is not None:
                return program.resolve_symbol(resolved)
        return None


def _collect_attr_types(program: Program, module: ModuleInfo) -> None:
    for cls in list(program.classes.values()):
        if cls.module != module.module:
            continue
        for method_qualname in cls.methods.values():
            method = program.functions[method_qualname]
            ctx = _TypeContext(program, module, method)
            for stmt in ast.walk(method.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        inferred = ctx.class_of(stmt.value)
                        if inferred is not None:
                            cls.attr_types.setdefault(target.attr, inferred)


def _collect_edges(program: Program, module: ModuleInfo) -> None:
    for info in list(program.functions.values()):
        if info.module != module.module:
            continue
        ctx = _TypeContext(program, module, info)
        _walk_function_edges(program, module, info, ctx)


def iter_own_nodes(info: FunctionInfo) -> Iterator[ast.AST]:
    """Walk the function body without descending into nested defs
    (those are their own FunctionInfo)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(info.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _walk_function_edges(
    program: Program,
    module: ModuleInfo,
    info: FunctionInfo,
    ctx: _TypeContext,
) -> None:
    # Track simple local instance types: x = Cls(...), x = self.attr
    for node in iter_own_nodes(info):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                inferred = ctx.class_of(node.value)
                if inferred is not None:
                    ctx.local_types[target.id] = inferred
    for node in iter_own_nodes(info):
        if isinstance(node, ast.Call):
            _record_call(program, module, info, ctx, node)


def _callable_ref(ctx: _TypeContext, arg: ast.expr) -> str | None:
    """Resolve a non-call argument expression to a function qualname."""
    if isinstance(arg, (ast.Name, ast.Attribute)):
        resolved = ctx.resolve_callable(arg)
        if resolved is not None and resolved in ctx.program.functions:
            return resolved
    return None


def _record_call(
    program: Program,
    module: ModuleInfo,
    info: FunctionInfo,
    ctx: _TypeContext,
    node: ast.Call,
) -> None:
    resolved = ctx.resolve_callable(node.func)
    if resolved is not None:
        if resolved in program.classes:
            init = program.method_on(resolved, "__init__")
            if init is not None:
                info.add_call(init)
        elif resolved in program.functions:
            info.add_call(resolved)
    # Callable references passed as arguments.
    arg_refs: list[str] = []
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        ref = _callable_ref(ctx, arg)
        if ref is not None:
            arg_refs.append(ref)
            info.add_ref(ref)
    if not arg_refs:
        return
    # Scheduling registration => hot roots; pool dispatch => worker roots.
    api: str | None = None
    kind: str | None = None
    if isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        if attr in SCHEDULING_ATTRS:
            api, kind = attr, "hot"
        elif attr in POOL_DISPATCH_ATTRS and (
            _receiver_tokens(node.func.value) & POOL_RECEIVER_TOKENS
        ):
            api, kind = attr, "worker"
    elif isinstance(node.func, ast.Name) and node.func.id == "Timer":
        api, kind = "Timer", "hot"
    if api is None:
        return
    roots = program.hot_roots if kind == "hot" else program.worker_roots
    for ref in arg_refs:
        roots.append(
            RootSite(
                qualname=ref,
                registered_by=info.qualname,
                api=api,
                path=module.display_path,
                lineno=node.lineno,
            )
        )


# --- entry points ----------------------------------------------------------


def parse_module(
    path: Path,
    *,
    display_path: str | None = None,
) -> ModuleInfo:
    """Parse one source file into a :class:`ModuleInfo`.

    Raises:
        SyntaxError: when the file does not parse (annotated with the
            path, matching the per-file checker's behavior).
    """
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    inline, filewide, module_override = parse_pragmas(lines)
    declared = True
    if module_override is not None:
        module = _strip_repro(module_override)
    else:
        derived = module_path_for(path)
        if derived is None:
            module, declared = path.stem, False
        else:
            module = derived
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        raise SyntaxError(f"{path}: {error}") from error
    return ModuleInfo(
        module=module,
        path=path,
        display_path=display_path or path.as_posix(),
        lines=lines,
        tree=tree,
        aliases=AliasTable(),
        inline_pragmas=inline,
        filewide_pragmas=filewide,
        module_declared=declared,
    )


def build_program(modules: Iterable[ModuleInfo]) -> Program:
    """Index modules, resolve edges, and classify hot/worker."""
    program = Program()
    ordered = list(modules)
    for module in ordered:
        program.modules[module.module] = module
    for module in ordered:
        _collect_module(program, module)
    # Attribute types need every class known; run as a separate phase,
    # twice, so `self.x = param` typing can chain one level through
    # classes declared later in the walk order.
    for _ in range(2):
        for module in ordered:
            _collect_attr_types(program, module)
    for module in ordered:
        _collect_edges(program, module)
    program.classify()
    return program


def write_graph(program: Program, path: Path) -> None:
    """Export the annotated call graph (DOT for ``.dot``/``.gv``
    suffixes, JSON otherwise)."""
    if path.suffix in {".dot", ".gv"}:
        path.write_text(program.to_dot(), encoding="utf-8")
    else:
        path.write_text(
            json.dumps(program.to_json(), indent=2) + "\n", encoding="utf-8"
        )
