"""CLI: ``python -m repro.simcheck src/``.

Exit codes: 0 — clean (no findings beyond the baseline, no stale
baseline entries); 1 — new findings and/or stale baseline entries;
2 — usage or parse error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.simcheck.baseline import Baseline, match_baseline
from repro.simcheck.callgraph import write_graph
from repro.simcheck.findings import Finding, RULES
from repro.simcheck.rules import analyze_paths

DEFAULT_BASELINE = "simcheck-baseline.json"


def _github_annotation(finding: Finding, *, new: bool) -> str:
    """One ``::error``/``::notice`` workflow command per finding; GitHub
    renders it inline on the PR diff.  Newlines are not allowed in the
    message, so the call-chain evidence joins on ' | '."""
    level = "error" if new else "notice"
    message = finding.message
    if finding.via:
        message += f" | via {finding.via}"
    message = message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    return (
        f"::{level} file={finding.path},line={finding.line},"
        f"col={finding.col},title={finding.rule}::{message}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simcheck", description=__doc__
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/"], help="files or directories"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE}; a missing "
        "file means an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current findings",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="github emits ::error workflow annotations for new "
        "findings (and ::notice for grandfathered ones)",
    )
    parser.add_argument(
        "--graph-out",
        metavar="PATH",
        help="export the annotated call graph (DOT for .dot/.gv, "
        "JSON otherwise)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0

    for raw in args.paths:
        if not Path(raw).exists():
            print(f"error: no such path: {raw}", file=sys.stderr)
            return 2

    try:
        findings, program = analyze_paths(args.paths)
    except SyntaxError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.graph_out:
        write_graph(program, Path(args.graph_out))
        hot = len(program.hot_chains)
        workers = len(program.worker_chains)
        print(
            f"simcheck: wrote call graph ({len(program.functions)} "
            f"functions, {hot} hot, {workers} worker) to {args.graph_out}"
        )

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        Baseline.from_findings(findings).write(baseline_path)
        print(
            f"simcheck: wrote {len(findings)} finding(s) to {baseline_path}"
        )
        return 0

    if args.no_baseline or not baseline_path.exists():
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    match = match_baseline(findings, baseline)

    if args.format == "github":
        for finding in match.new:
            print(_github_annotation(finding, new=True))
        for finding in match.grandfathered:
            print(_github_annotation(finding, new=False))
        for rule, path, line in match.stale:
            print(
                f"::error file={path},title=stale-baseline::stale "
                f"baseline entry {rule} (no longer matches: {line!r})"
            )
        _print_stale_hint(match.stale, args)
        return 0 if match.clean else 1

    if args.format == "json":
        print(
            json.dumps(
                {
                    "new": [vars(f) for f in match.new],
                    "grandfathered": [vars(f) for f in match.grandfathered],
                    "stale": [
                        {"rule": rule, "path": path, "line": line}
                        for rule, path, line in match.stale
                    ],
                },
                indent=2,
            )
        )
    else:
        for finding in match.new:
            print(finding.render())
        for rule, path, line in match.stale:
            print(
                f"{path}: stale baseline entry {rule} "
                f"(no longer matches: {line!r})"
            )
        _print_stale_hint(match.stale, args)
        summary = (
            f"simcheck: {len(match.new)} new finding(s), "
            f"{len(match.grandfathered)} grandfathered, "
            f"{len(match.stale)} stale baseline entr(y/ies)"
        )
        print(summary)
    return 0 if match.clean else 1


def _print_stale_hint(
    stale: list[tuple[str, str, str]], args: object
) -> None:
    """A fixed finding leaves its baseline entry stale; print the exact
    command that drops the listed entries so the fix ratchets in."""
    if not stale:
        return
    paths = " ".join(getattr(args, "paths", []) or [])
    baseline = getattr(args, "baseline", DEFAULT_BASELINE)
    command = f"python -m repro.simcheck {paths}".rstrip()
    if baseline != DEFAULT_BASELINE:
        command += f" --baseline {baseline}"
    command += " --update-baseline"
    print(
        f"simcheck: {len(stale)} baseline entr(y/ies) no longer match "
        "— the findings were fixed. Ratchet them out by rerunning:\n"
        f"    {command}\n"
        "which will drop exactly these entries:"
    )
    for rule, path, line in stale:
        print(f"    - {rule} @ {path}: {line!r}")


if __name__ == "__main__":
    raise SystemExit(main())
