"""CLI: ``python -m repro.simcheck src/``.

Exit codes: 0 — clean (no findings beyond the baseline, no stale
baseline entries); 1 — new findings and/or stale baseline entries;
2 — usage or parse error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.simcheck.baseline import Baseline, match_baseline
from repro.simcheck.findings import RULES
from repro.simcheck.rules import check_paths

DEFAULT_BASELINE = "simcheck-baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simcheck", description=__doc__
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/"], help="files or directories"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE}; a missing "
        "file means an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current findings",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0

    for raw in args.paths:
        if not Path(raw).exists():
            print(f"error: no such path: {raw}", file=sys.stderr)
            return 2

    try:
        findings = check_paths(args.paths)
    except SyntaxError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        Baseline.from_findings(findings).write(baseline_path)
        print(
            f"simcheck: wrote {len(findings)} finding(s) to {baseline_path}"
        )
        return 0

    if args.no_baseline or not baseline_path.exists():
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    match = match_baseline(findings, baseline)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "new": [vars(f) for f in match.new],
                    "grandfathered": [vars(f) for f in match.grandfathered],
                    "stale": [
                        {"rule": rule, "path": path, "line": line}
                        for rule, path, line in match.stale
                    ],
                },
                indent=2,
            )
        )
    else:
        for finding in match.new:
            print(finding.render())
        for rule, path, line in match.stale:
            print(
                f"{path}: stale baseline entry {rule} "
                f"(no longer matches: {line!r})"
            )
        summary = (
            f"simcheck: {len(match.new)} new finding(s), "
            f"{len(match.grandfathered)} grandfathered, "
            f"{len(match.stale)} stale baseline entr(y/ies)"
        )
        print(summary)
    return 0 if match.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
