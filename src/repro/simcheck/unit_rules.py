"""UNIT rules: dimension inference over seconds / bits / bits-per-second.

The simulator keeps every quantity in base units (seconds, bits,
bits/second — see :mod:`repro.units`), so unit errors do not fail
loudly: they show up as a figure that is off by 1e6.  This pass infers
dimensions *syntactically* — from ``repro.units`` constants, from
identifier words (``slot_time``, ``rate_bps``, ``payload_bytes``),
and from call-site names (``transmission_time(...)`` returns seconds)
— and propagates them through arithmetic as exponent pairs
``(seconds, bits)``: TIME=(1,0), SIZE=(0,1), RATE=(-1,1).  Multiplying
adds exponents, dividing subtracts; anything unknown stays unknown and
suppresses checks, so only contradictions between two *positively
inferred* dimensions are reported.

* **UNIT001** — ``+``/``-`` between two expressions with different
  inferred dimensions (adding seconds to bits/second).  Bare numeric
  literals are never an operand (``duration + 5`` is fine; the 5 takes
  the dimension of the context).
* **UNIT002** — a bare numeric literal with magnitude >= 1000 passed
  to a rate-dimensioned parameter (``data_rate=11e6``): spell it
  ``11 * MBPS`` so the magnitude is auditable.  Limited to rates
  because seconds-valued parameters legitimately take small bare
  numbers (the base unit) and sizes take 1024-style literals.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.simcheck.callgraph import ModuleInfo, Program
from repro.simcheck.findings import Finding, finding_at
from repro.simcheck.perf_rules import words_of

#: Exponent pair: (seconds exponent, bits exponent).
Dim = tuple[int, int]

TIME: Dim = (1, 0)
SIZE: Dim = (0, 1)
RATE: Dim = (-1, 1)

#: repro.units constant -> dimension.
UNITS_CONSTANTS: dict[str, Dim] = {
    "SECONDS": TIME,
    "MILLISECONDS": TIME,
    "MICROSECONDS": TIME,
    "BITS": SIZE,
    "BYTES": SIZE,
    "KILOBITS": SIZE,
    "MEGABITS": SIZE,
    "BPS": RATE,
    "KBPS": RATE,
    "MBPS": RATE,
}

TIME_WORDS = {
    "second",
    "seconds",
    "sec",
    "secs",
    "time",
    "duration",
    "interval",
    "timeout",
    "delay",
    "latency",
    "deadline",
    "period",
    "airtime",
    "sifs",
    "difs",
    "eifs",
    "preamble",
}
RATE_WORDS = {"rate", "rates", "bps", "kbps", "mbps", "bandwidth", "throughput", "goodput"}
SIZE_WORDS = {"bit", "bits", "byte", "bytes", "kilobits", "megabits", "size", "mtu"}

#: Words that mark a name as a *count* of units rather than a quantity
#: — ``timeout_slack_slots`` is a number of slots, not a time, even
#: though "timeout" is a time word.  A count word defeats inference.
COUNT_WORDS = {
    "slots",
    "count",
    "counts",
    "num",
    "number",
    "retries",
    "attempts",
    "limit",
}

#: Parameter-name words that exempt a name from UNIT002 even when a
#: rate word is present ("capacity" parameters take counts/pps values
#: whose natural spelling is a bare number).
UNIT002_EXEMPT_WORDS = {"capacity"}

_DIM_NAMES = {TIME: "seconds", SIZE: "bits", RATE: "bits/second"}


def _dim_name(dim: Dim) -> str:
    return _DIM_NAMES.get(dim, f"s^{dim[0]}*bit^{dim[1]}")


def dim_of_name(name: str) -> Dim | None:
    """Dimension suggested by an identifier, or None.

    ``x_per_y`` names divide: the words left of ``per`` over the words
    right of it (``bits_per_second`` -> RATE); if either side is
    unknown the whole name is unknown (``packets_per_second`` returns
    packets/s, which is *not* bits/s).  Without ``per``, the words must
    agree on exactly one dimension (``rate_interval`` is contradictory
    -> unknown).
    """
    lowered = name.lower()
    parts = lowered.split("_")
    if "per" in parts:
        cut = parts.index("per")
        left = dim_of_name("_".join(parts[:cut]))
        right = dim_of_name("_".join(parts[cut + 1 :]))
        if left is None or right is None:
            return None
        return (left[0] - right[0], left[1] - right[1])
    words = words_of(lowered)
    if words & COUNT_WORDS:
        return None
    candidates: set[Dim] = set()
    if words & TIME_WORDS:
        candidates.add(TIME)
    if words & RATE_WORDS:
        candidates.add(RATE)
    if words & SIZE_WORDS:
        candidates.add(SIZE)
    if len(candidates) == 1:
        return candidates.pop()
    return None


def _is_numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, (int, float))


def _literal_value(node: ast.expr) -> float | None:
    sign = 1.0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        sign = -1.0 if isinstance(node.op, ast.USub) else 1.0
        node = node.operand
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return sign * float(node.value)
    return None


class _UnitChecker:
    """One pass over one module, in source order, with a per-scope
    environment of inferred local dimensions."""

    def __init__(self, module: ModuleInfo, program: Program) -> None:
        self.module = module
        self.program = program
        self.findings: list[Finding] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            finding_at(
                rule,
                node,
                path=self.module.display_path,
                lines=self.module.lines,
                message=message,
            )
        )

    # -- dimension inference ------------------------------------------------

    def _units_constant_dim(self, node: ast.expr) -> Dim | None:
        resolved = self.module.aliases.resolve(node)
        if resolved is None:
            return None
        parts = resolved.split(".")
        leaf = parts[-1]
        if leaf not in UNITS_CONSTANTS:
            return None
        if "units" in parts or self.module.module == "units":
            return UNITS_CONSTANTS[leaf]
        return None

    def dim_of(self, node: ast.expr, env: dict[str, Dim]) -> Dim | None:
        if _is_numeric_literal(node):
            return (0, 0)  # dimensionless scalar
        constant = self._units_constant_dim(node) if isinstance(
            node, (ast.Name, ast.Attribute)
        ) else None
        if constant is not None:
            return constant
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return dim_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return dim_of_name(node.attr)
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if name is None:
                return None
            return dim_of_name(name)
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            return self.dim_of(node.operand, env)
        if isinstance(node, ast.BinOp):
            left = self.dim_of(node.left, env)
            right = self.dim_of(node.right, env)
            if isinstance(node.op, ast.Mult):
                if left is None or right is None:
                    return None
                return (left[0] + right[0], left[1] + right[1])
            if isinstance(node.op, ast.Div):
                if left is None or right is None:
                    return None
                return (left[0] - right[0], left[1] - right[1])
            if isinstance(node.op, (ast.Add, ast.Sub)):
                # The checked case; the result dimension is whichever
                # side knows one (after UNIT001 they must agree).
                for side, side_node in ((left, node.left), (right, node.right)):
                    if side is not None and not _is_numeric_literal(side_node):
                        return side
                return None
        return None

    # -- UNIT001 ------------------------------------------------------------

    def _check_binop(self, node: ast.BinOp, env: dict[str, Dim]) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        if _is_numeric_literal(node.left) or _is_numeric_literal(node.right):
            return  # a bare scalar takes the dimension of its context
        left = self.dim_of(node.left, env)
        right = self.dim_of(node.right, env)
        if left is None or right is None or left == right:
            return
        if left == (0, 0) or right == (0, 0):
            return  # dimensionless products (ratios) combine freely
        op = "+" if isinstance(node.op, ast.Add) else "-"
        self._emit(
            "UNIT001",
            node,
            f"'{op}' mixes {_dim_name(left)} with {_dim_name(right)}; "
            "convert explicitly before combining",
        )

    # -- UNIT002 ------------------------------------------------------------

    def _callee_params(self, func: ast.expr) -> list[str] | None:
        """Positional parameter names of the resolved callee."""
        resolved = self.module.aliases.resolve(func)
        if resolved is None:
            return None
        qualname = self.program.resolve_symbol(resolved)
        if qualname is None and "." not in resolved:
            # A bare name that no import introduced: a same-module def.
            local = f"{self.module.module}.{resolved}"
            if local in self.program.functions or local in self.program.classes:
                qualname = local
        if qualname is None:
            return None
        if qualname in self.program.classes:
            cls = self.program.classes[qualname]
            if cls.fields:
                return list(cls.fields)  # dataclass field order
            init = self.program.method_on(qualname, "__init__")
            if init is None:
                return None
            info = self.program.functions[init]
            args = info.node.args
            names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
            return names[1:]  # drop self
        if qualname in self.program.functions:
            info = self.program.functions[qualname]
            args = info.node.args
            return [a.arg for a in list(args.posonlyargs) + list(args.args)]
        return None

    def _check_call(self, node: ast.Call) -> None:
        named: list[tuple[str, ast.expr]] = [
            (kw.arg, kw.value) for kw in node.keywords if kw.arg is not None
        ]
        if any(_is_numeric_literal(arg) for arg in node.args):
            params = self._callee_params(node.func)
            if params is not None:
                named.extend(
                    (params[i], arg)
                    for i, arg in enumerate(node.args)
                    if i < len(params)
                )
        for param, value in named:
            magnitude = _literal_value(value)
            if magnitude is None or abs(magnitude) < 1000:
                continue
            if words_of(param) & UNIT002_EXEMPT_WORDS:
                continue
            if dim_of_name(param) != RATE:
                continue
            self._emit(
                "UNIT002",
                value,
                f"bare literal {magnitude:g} passed to rate parameter "
                f"'{param}'; spell it with a units constant "
                "(e.g. 11 * MBPS)",
            )

    # -- traversal ----------------------------------------------------------

    def check(self) -> list[Finding]:
        self._walk_body(self.module.tree.body, {})
        return self.findings

    def _seed_env(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, Dim]:
        env: dict[str, Dim] = {}
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            dim = dim_of_name(arg.arg)
            if dim is not None:
                env[arg.arg] = dim
        return env

    def _walk_body(
        self, body: Iterable[ast.stmt], env: dict[str, Dim]
    ) -> None:
        for stmt in body:
            self._walk_stmt(stmt, env)

    def _walk_stmt(self, stmt: ast.stmt, env: dict[str, Dim]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_body(stmt.body, self._seed_env(stmt))
            return
        if isinstance(stmt, ast.ClassDef):
            self._walk_body(stmt.body, {})
            return
        self._walk_expr_tree(stmt, env)
        # Bind simple local assignments so later lines see the dim.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                dim = self.dim_of(stmt.value, env)
                if dim is not None and dim != (0, 0):
                    env[target.id] = dim
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                dim = self.dim_of(stmt.value, env)
                if dim is not None and dim != (0, 0):
                    env[stmt.target.id] = dim
        # Recurse into compound statements in source order.
        for child_body in _compound_bodies(stmt):
            self._walk_body(child_body, env)

    def _walk_expr_tree(self, stmt: ast.stmt, env: dict[str, Dim]) -> None:
        """Check every expression directly under this statement (not
        those inside nested statement bodies)."""
        for node in _own_expressions(stmt):
            if isinstance(node, ast.BinOp):
                self._check_binop(node, env)
            elif isinstance(node, ast.Call):
                self._check_call(node)


def _compound_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    for case in getattr(stmt, "cases", []) or []:
        bodies.append(case.body)
    return bodies


def _own_expressions(stmt: ast.stmt) -> Iterable[ast.expr]:
    """Expressions belonging to this statement, excluding nested
    statement bodies (those recurse via :func:`_compound_bodies`)."""
    pending: list[ast.AST] = []
    for field_name, value in ast.iter_fields(stmt):
        if field_name in {"body", "orelse", "finalbody", "handlers", "cases"}:
            continue
        if isinstance(value, ast.expr):
            pending.append(value)
        elif isinstance(value, list):
            pending.extend(v for v in value if isinstance(v, ast.expr))
    seen: list[ast.expr] = []
    while pending:
        node = pending.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.expr):
            seen.append(node)
        pending.extend(ast.iter_child_nodes(node))
    return seen


def check_module_units(module: ModuleInfo, program: Program) -> list[Finding]:
    """Run UNIT001/UNIT002 over one module."""
    return _UnitChecker(module, program).check()
