"""PAR rules: sweep-pool worker-boundary safety.

The sweep engine runs scenario points in a spawn-context process pool
(:mod:`repro.scenarios.sweep`), so two things silently break runs:

* **PAR001** — a lambda, nested function, or locally-defined class
  handed to a pool dispatch (``pool.map``/``imap``/``apply_async``/
  ``executor.submit``).  Spawned workers import the task by qualified
  name; locals cannot be pickled, and the failure surfaces as an
  opaque ``PicklingError`` deep inside multiprocessing.  Flagged at
  the dispatch site, in any function (the dispatch itself proves the
  boundary crossing).
* **PAR002** — a write to module-level mutable state from a function
  the call graph shows is reachable inside a worker.  Each worker
  mutates its own copy; the parent process never observes the write,
  so the "shared" accumulator is silently empty.  Findings carry the
  chain from the dispatch site as evidence.
"""

from __future__ import annotations

import ast

from repro.simcheck.callgraph import (
    POOL_DISPATCH_ATTRS,
    POOL_RECEIVER_TOKENS,
    FunctionInfo,
    ModuleInfo,
    Program,
    _receiver_tokens,
    iter_own_nodes,
)
from repro.simcheck.findings import Finding, finding_at

#: Methods that mutate their receiver in place.
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}


def _emit(
    findings: list[Finding],
    rule: str,
    module: ModuleInfo,
    node: ast.AST,
    message: str,
    via: str = "",
) -> None:
    findings.append(
        finding_at(
            rule,
            node,
            path=module.display_path,
            lines=module.lines,
            message=message,
            via=via,
        )
    )


# -- PAR001: unpicklable callables at dispatch sites ------------------------


def _check_dispatch_args(
    findings: list[Finding],
    module: ModuleInfo,
    info: FunctionInfo,
    node: ast.Call,
) -> None:
    if not isinstance(node.func, ast.Attribute):
        return
    if node.func.attr not in POOL_DISPATCH_ATTRS:
        return
    if not (_receiver_tokens(node.func.value) & POOL_RECEIVER_TOKENS):
        return
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Lambda):
                _emit(
                    findings,
                    "PAR001",
                    module,
                    sub,
                    f"lambda passed to pool .{node.func.attr}(); spawn "
                    "workers unpickle tasks by qualified name — use a "
                    "module-level function",
                )
        if isinstance(arg, ast.Name) and arg.id in info.locals_defined:
            _emit(
                findings,
                "PAR001",
                module,
                arg,
                f"locally-defined '{arg.id}' passed to pool "
                f".{node.func.attr}(); nested functions/classes cannot "
                "be pickled — move it to module level",
            )


# -- PAR002: module-state writes inside workers -----------------------------


def _root_name(node: ast.expr) -> str | None:
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    return current.id if isinstance(current, ast.Name) else None


def _check_worker_writes(
    findings: list[Finding],
    module: ModuleInfo,
    info: FunctionInfo,
    via: str,
) -> None:
    declared_global: set[str] = set()
    mutable = module.mutable_globals
    local_shadows = {
        a.arg
        for a in (
            list(info.node.args.posonlyargs)
            + list(info.node.args.args)
            + list(info.node.args.kwonlyargs)
        )
    }

    def is_module_state(name: str | None) -> bool:
        if name is None or name in local_shadows:
            return False
        return name in declared_global or name in mutable

    for node in iter_own_nodes(info):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in iter_own_nodes(info):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in declared_global:
                        _emit(
                            findings,
                            "PAR002",
                            module,
                            node,
                            f"worker rebinds module global '{target.id}'; "
                            "the parent process never sees it — return "
                            "the value instead",
                            via,
                        )
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _root_name(target)
                    if is_module_state(root):
                        _emit(
                            findings,
                            "PAR002",
                            module,
                            node,
                            f"worker writes into module-level '{root}'; "
                            "each worker mutates its own copy — return "
                            "results to the parent",
                            via,
                        )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                root = _root_name(node.func.value)
                if is_module_state(root) and isinstance(
                    node.func.value, ast.Name
                ):
                    _emit(
                        findings,
                        "PAR002",
                        module,
                        node,
                        f"worker mutates module-level '{root}' via "
                        f".{node.func.attr}(); the write stays in the "
                        "worker process — return results instead",
                        via,
                    )


def check_program_par(program: Program) -> list[Finding]:
    """Run PAR001 over every dispatch site and PAR002 over every
    worker-reachable function."""
    findings: list[Finding] = []
    for qualname in sorted(program.functions):
        info = program.functions[qualname]
        module = program.modules.get(info.module)
        if module is None:
            continue
        for node in iter_own_nodes(info):
            if isinstance(node, ast.Call):
                _check_dispatch_args(findings, module, info, node)
    for qualname in sorted(program.worker_chains):
        info = program.functions.get(qualname)
        if info is None:
            continue
        module = program.modules.get(info.module)
        if module is None:
            continue
        via = " -> ".join(program.worker_chains[qualname])
        _check_worker_writes(findings, module, info, via)
    return findings
