"""Finding records and the rule catalogue."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Sequence

#: Every rule simcheck knows, with the one-line rationale shown by
#: ``--list-rules`` (the long form lives in docs/SIMCHECK.md).
RULES: dict[str, str] = {
    "DET001": (
        "wall-clock read (time.time/monotonic/perf_counter, datetime.now, "
        "...) in simulation code; simulated time comes from Simulator.now"
    ),
    "DET002": (
        "stdlib `random` used; draw from a named stream via sim.rng so "
        "consumers cannot perturb each other"
    ),
    "DET003": (
        "ambient entropy source (os.urandom, secrets, uuid.uuid1/uuid4); "
        "runs must be a pure function of (model, seed)"
    ),
    "DET004": (
        "numpy RNG constructed or drawn outside sim/rng.py; route draws "
        "through RngRegistry named streams"
    ),
    "DET005": (
        "iteration over a set expression; set order is hash-dependent — "
        "wrap in sorted() or iterate an ordered container"
    ),
    "DET006": (
        "sorting keyed on id()/repr(); identity and repr order are not "
        "stable across runs — use a semantic key "
        "(telemetry.stable_instrument_key for instruments)"
    ),
    "DET007": (
        "float accumulation (sum) over a set expression; addition order "
        "is hash-dependent — sum a sorted sequence"
    ),
    "LAY001": (
        "module dependency DAG violation; see the layer table in "
        "docs/SIMCHECK.md"
    ),
    "LAY002": (
        "telemetry imports the simulation kernel (sim.kernel/sim.rng/"
        "sim.event); telemetry must stay passively below the kernel "
        "(only the sim.trace data module is allowed)"
    ),
    "LAY003": (
        "telemetry code calls a scheduling API (call_at/call_later/every/"
        "schedule); telemetry may never schedule simulation events"
    ),
    "PAS001": (
        "assignment expression (walrus) inside a telemetry instrument "
        "call; instrument arguments must be side-effect-free"
    ),
    "PAS002": (
        "mutating method call inside a telemetry instrument argument; "
        "disabling telemetry must not change program state"
    ),
    "PERF001": (
        "nested iteration over node/link/flow/clique collections on a "
        "hot-path function where the inner iterable is independent of "
        "the outer loop — latent O(n^2); precompute an index "
        "(e.g. topology.cliques.clique_index_positions)"
    ),
    "PERF002": (
        "loop-invariant recomputation on a hot path: a derive/build/"
        "cliques-style call inside a loop whose arguments do not depend "
        "on the loop — hoist it out or maintain it incrementally"
    ),
    "PERF003": (
        "list/dict/set allocation inside nested collection loops on a "
        "hot-path function; the container is rebuilt per element per "
        "event — hoist or reuse it"
    ),
    "UNIT001": (
        "arithmetic mixes dimensions (seconds vs bits vs bits/second) "
        "inferred from repro.units constructors and parameter names; "
        "convert explicitly before combining"
    ),
    "UNIT002": (
        "bare numeric literal passed to a rate-dimensioned parameter; "
        "spell it with a units constant (e.g. 11 * MBPS) so the "
        "magnitude is auditable"
    ),
    "PAR001": (
        "lambda or locally-defined callable handed to a process-pool "
        "dispatch; it cannot be pickled across the worker boundary — "
        "use a module-level function"
    ),
    "PAR002": (
        "write to module-level mutable state from code reachable inside "
        "a pool worker; workers get a copy, the parent never sees the "
        "write — return results instead"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    col: int
    message: str
    source_line: str  # stripped text of the offending line
    via: str = ""  # call-chain evidence (whole-program rules only)

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across unrelated line-number churn
        (and across call-chain churn — ``via`` is evidence, not identity)."""
        return (self.rule, self.path, self.source_line)

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.via:
            text += f"\n    via {self.via}"
        return text


def finding_at(
    rule: str,
    node: ast.AST,
    *,
    path: str,
    lines: Sequence[str],
    message: str,
    via: str = "",
) -> Finding:
    """Build a Finding anchored at an AST node of a known file."""
    lineno = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    source = lines[lineno - 1].strip() if lineno <= len(lines) else ""
    return Finding(
        rule=rule,
        path=path,
        line=lineno,
        col=col + 1,
        message=message,
        source_line=source,
        via=via,
    )
