"""Finding records and the rule catalogue."""

from __future__ import annotations

from dataclasses import dataclass

#: Every rule simcheck knows, with the one-line rationale shown by
#: ``--list-rules`` (the long form lives in docs/DETERMINISM.md).
RULES: dict[str, str] = {
    "DET001": (
        "wall-clock read (time.time/monotonic/perf_counter, datetime.now, "
        "...) in simulation code; simulated time comes from Simulator.now"
    ),
    "DET002": (
        "stdlib `random` used; draw from a named stream via sim.rng so "
        "consumers cannot perturb each other"
    ),
    "DET003": (
        "ambient entropy source (os.urandom, secrets, uuid.uuid1/uuid4); "
        "runs must be a pure function of (model, seed)"
    ),
    "DET004": (
        "numpy RNG constructed or drawn outside sim/rng.py; route draws "
        "through RngRegistry named streams"
    ),
    "DET005": (
        "iteration over a set expression; set order is hash-dependent — "
        "wrap in sorted() or iterate an ordered container"
    ),
    "DET006": (
        "sorting keyed on id()/repr(); identity and repr order are not "
        "stable across runs — use a semantic key "
        "(telemetry.stable_instrument_key for instruments)"
    ),
    "DET007": (
        "float accumulation (sum) over a set expression; addition order "
        "is hash-dependent — sum a sorted sequence"
    ),
    "LAY001": (
        "module dependency DAG violation; see the layer table in "
        "docs/DETERMINISM.md"
    ),
    "LAY002": (
        "telemetry imports the simulation kernel (sim.kernel/sim.rng/"
        "sim.event); telemetry must stay passively below the kernel "
        "(only the sim.trace data module is allowed)"
    ),
    "LAY003": (
        "telemetry code calls a scheduling API (call_at/call_later/every/"
        "schedule); telemetry may never schedule simulation events"
    ),
    "PAS001": (
        "assignment expression (walrus) inside a telemetry instrument "
        "call; instrument arguments must be side-effect-free"
    ),
    "PAS002": (
        "mutating method call inside a telemetry instrument argument; "
        "disabling telemetry must not change program state"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    col: int
    message: str
    source_line: str  # stripped text of the offending line

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across unrelated line-number churn."""
        return (self.rule, self.path, self.source_line)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
