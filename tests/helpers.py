"""Shared test fixtures: minimal upper layers for driving the MAC."""

from __future__ import annotations

import itertools
from collections import deque

from repro.flows.packet import Packet
from repro.mac.base import NodeServices


class SaturatedSender:
    """Upper layer with an infinite backlog toward fixed next hops.

    ``targets`` maps next-hop node id to a flow id; dequeue cycles
    through them round-robin.  Used to drive the MAC at saturation.
    """

    def __init__(self, node_id: int, targets: dict[int, int], *, packet_bytes=1024):
        self.node_id = node_id
        self._targets = list(targets.items())
        self._cycle = itertools.cycle(self._targets) if self._targets else None
        self.packet_bytes = packet_bytes
        self.sent = 0
        self.received: list[Packet] = []
        self.dropped: list[Packet] = []
        self.overheard: list[tuple[int, dict]] = []
        self.broadcasts: list[tuple[object, int]] = []

    def dequeue(self):
        if self._cycle is None:
            return None
        next_hop, flow_id = next(self._cycle)
        self.sent += 1
        packet = Packet(
            flow_id=flow_id,
            source=self.node_id,
            destination=next_hop,
            size_bytes=self.packet_bytes,
            created_at=0.0,
        )
        return packet, next_hop

    def services(self) -> NodeServices:
        return NodeServices(
            dequeue=self.dequeue,
            on_data_received=lambda packet, sender: self.received.append(packet),
            on_overhear=lambda sender, states: self.overheard.append((sender, states)),
            on_packet_dropped=lambda packet, nh: self.dropped.append(packet),
            on_broadcast_received=lambda payload, sender: self.broadcasts.append(
                (payload, sender)
            ),
        )


class QueueNode:
    """Upper layer with explicit FIFO queues per next hop.

    Implements both the pull interface (``dequeue``) and the fluid
    batch accessors, so it works on either MAC substrate.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.queues: dict[int, deque[Packet]] = {}
        self.received: list[Packet] = []
        self.dropped: list[Packet] = []

    def push(self, packet: Packet, next_hop: int) -> None:
        self.queues.setdefault(next_hop, deque()).append(packet)

    def dequeue(self):
        for next_hop in sorted(self.queues):
            queue = self.queues[next_hop]
            if queue:
                return queue.popleft(), next_hop
        return None

    def dequeue_for(self, next_hop: int):
        queue = self.queues.get(next_hop)
        if queue:
            return queue.popleft()
        return None

    def eligible_links(self):
        return {
            (self.node_id, next_hop): len(queue)
            for next_hop, queue in self.queues.items()
            if queue
        }

    def has_pending(self) -> bool:
        return any(self.queues.values())

    def services(self) -> NodeServices:
        return NodeServices(
            dequeue=self.dequeue,
            on_data_received=lambda packet, sender: self.received.append(packet),
            on_packet_dropped=lambda packet, nh: self.dropped.append(packet),
            eligible_links=self.eligible_links,
            dequeue_for=self.dequeue_for,
            has_pending=self.has_pending,
        )


def idle_services(node_id: int) -> NodeServices:
    """Services of a node that never transmits (pure sink/relay-less)."""
    sink = SaturatedSender(node_id, {})
    return sink.services(), sink
