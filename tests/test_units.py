"""Unit tests for unit conversions."""

import pytest

from repro.units import (
    MBPS,
    MICROSECONDS,
    MILLISECONDS,
    bits,
    packets_per_second,
    pps_to_bps,
    transmission_time,
)


def test_time_constants():
    assert MILLISECONDS == 1e-3
    assert MICROSECONDS == 1e-6


def test_bits():
    assert bits(1) == 8
    assert bits(1024) == 8192


def test_transmission_time():
    # 1024 bytes at 11 Mbps.
    assert transmission_time(1024, 11 * MBPS) == pytest.approx(8192 / 11e6)
    with pytest.raises(ValueError):
        transmission_time(10, 0)


def test_packets_per_second_roundtrip():
    rate_bps = pps_to_bps(800, 1024)
    assert rate_bps == pytest.approx(800 * 8192)
    assert packets_per_second(rate_bps, 1024) == pytest.approx(800)
    with pytest.raises(ValueError):
        packets_per_second(1e6, 0)
