"""Tests for the fluid substrate's allocation cache and idle-skip.

The cache memoizes the water-filling solve on the quantized demand
vector; the dirty/idle pair lets fully quiescent rounds return without
polling any node.  Both are pure optimizations — these tests pin that
runs with and without them are identical, that the counters move, and
that the substrate wakes correctly when demand reappears.
"""

from repro.flows.packet import Packet
from repro.mac.fluid import FluidMac, waterfill_links
from repro.sim.kernel import Simulator
from repro.topology.builders import random_topology
from repro.topology.cliques import maximal_cliques
from repro.topology.contention import ContentionGraph
from repro.topology.network import Topology

from helpers import QueueNode


def _line_topology(n: int, spacing: float = 200.0) -> Topology:
    topology = Topology()
    topology.add_nodes([(index * spacing, 0.0) for index in range(n)])
    return topology


def _packet(flow_id: int, source: int, destination: int) -> Packet:
    return Packet(
        flow_id=flow_id,
        source=source,
        destination=destination,
        size_bytes=1024,
        created_at=0.0,
    )


def _run_dense(alloc_cache: bool, backlog: int = 40):
    topology = random_topology(12, width=900.0, height=900.0, seed=4)
    sim = Simulator(seed=1)
    mac = FluidMac(sim, topology, capacity_pps=500.0, alloc_cache=alloc_cache)
    nodes = {}
    for node_id in topology.node_ids:
        nodes[node_id] = QueueNode(node_id)
        mac.attach_node(node_id, nodes[node_id].services())
    mac.start()
    flow_id = 0
    for node_id in topology.node_ids:
        for neighbor in sorted(topology.neighbors(node_id)):
            flow_id += 1
            for _ in range(backlog):
                nodes[node_id].push(_packet(flow_id, node_id, neighbor), neighbor)
    sim.run(until=1.0)
    received = {
        node_id: [packet.flow_id for packet in node.received]
        for node_id, node in nodes.items()
    }
    occupancy = {
        node_id: mac.occupancy_snapshot(node_id) for node_id in nodes
    }
    return received, occupancy, mac


def test_alloc_cache_is_transparent():
    cached_rx, cached_occ, cached_mac = _run_dense(alloc_cache=True)
    plain_rx, plain_occ, plain_mac = _run_dense(alloc_cache=False)
    assert cached_rx == plain_rx
    assert cached_occ == plain_occ
    assert cached_mac.packets_transferred == plain_mac.packets_transferred
    assert cached_mac.alloc_cache_hits > 0
    assert plain_mac.alloc_cache_hits == 0
    assert plain_mac.alloc_cache_misses == 0


def test_idle_rounds_are_skipped_and_backlog_wakes():
    topology = _line_topology(2)
    sim = Simulator(seed=1)
    mac = FluidMac(sim, topology, capacity_pps=500.0)
    nodes = {0: QueueNode(0), 1: QueueNode(1)}
    mac.attach_node(0, nodes[0].services())
    mac.attach_node(1, nodes[1].services())
    mac.start()
    for _ in range(5):
        nodes[0].push(_packet(1, 0, 1), 1)
    sim.run(until=2.0)
    assert len(nodes[1].received) == 5
    # The 5-packet backlog drains in the first round; nearly all of the
    # remaining ~99 rounds must have been skipped.
    assert mac.rounds_skipped > 50

    # New demand plus the notify_backlog call every admission path
    # makes must wake the round machinery back up.
    skipped_before = mac.rounds_skipped
    nodes[0].push(_packet(1, 0, 1), 1)
    mac.notify_backlog(0)
    sim.run(until=2.1)
    assert len(nodes[1].received) == 6
    assert mac.rounds_skipped >= skipped_before  # skips resume after drain


def test_idle_skip_requires_has_pending_everywhere():
    # A node without a has_pending probe makes the network unprovably
    # quiescent; the substrate must then keep polling every round.
    topology = _line_topology(2)
    sim = Simulator(seed=1)
    mac = FluidMac(sim, topology, capacity_pps=500.0)
    probed = QueueNode(0)
    blind = QueueNode(1)
    blind_services = blind.services()
    blind_services.has_pending = None
    mac.attach_node(0, probed.services())
    mac.attach_node(1, blind_services)
    mac.start()
    sim.run(until=1.0)
    assert mac.rounds_skipped == 0


def test_demand_clamp_does_not_change_allocation():
    # Clamping a clique member's demand at the clique capacity is a
    # pure cache-key normalization: the solve is bit-identical.
    topology = random_topology(10, width=700.0, height=700.0, seed=7)
    cliques = maximal_cliques(ContentionGraph(topology))
    capacity = 500.0
    deep = {}
    clamped = {}
    for node_id in topology.node_ids:
        for neighbor in sorted(topology.neighbors(node_id)):
            deep[(node_id, neighbor)] = 4_000.0 + node_id
            clamped[(node_id, neighbor)] = capacity
    assert waterfill_links(deep, cliques, capacity) == waterfill_links(
        clamped, cliques, capacity
    )


def test_cache_counters_reach_telemetry():
    from repro.telemetry import Telemetry

    topology = _line_topology(2)
    sim = Simulator(seed=1, telemetry=Telemetry(enabled=True))
    mac = FluidMac(sim, topology, capacity_pps=500.0)
    nodes = {0: QueueNode(0), 1: QueueNode(1)}
    mac.attach_node(0, nodes[0].services())
    mac.attach_node(1, nodes[1].services())
    mac.start()
    for _ in range(30):
        nodes[0].push(_packet(1, 0, 1), 1)
    sim.run(until=1.0)
    names = {metric.name for metric in sim.telemetry.registry.instruments()}
    assert "mac.alloc_cache_hits" in names
    assert "mac.rounds_skipped" in names
