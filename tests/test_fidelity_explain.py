"""Per-flow rate explainers: bottleneck attribution, condition dwell,
and the reference-gap arithmetic."""

import pytest

from repro.errors import AnalysisError, ConfigError
from repro.fidelity.explain import explain_all, explain_flow, run_and_explain
from repro.scenarios.figures import figure3
from repro.scenarios.results import RunResult
from repro.scenarios.runner import run_scenario
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def figure3_result():
    telemetry = Telemetry(enabled=True)
    return run_scenario(
        figure3(),
        protocol="gmp",
        substrate="fluid",
        duration=20.0,
        seed=1,
        telemetry=telemetry,
        rate_interval=1.0,
    )


def test_explain_names_clique_condition_and_gap(figure3_result):
    explanation = explain_flow(figure3_result, 2)
    # All three figure-3 flows share the one chain clique.
    assert explanation.bottleneck_clique is not None
    assert explanation.bottleneck_links  # member links are surfaced
    assert not explanation.desire_limited
    assert explanation.reference_rate > 0
    assert explanation.gap == pytest.approx(
        explanation.measured_rate - explanation.reference_rate
    )
    assert explanation.active_condition in (
        "bandwidth_saturated", "buffer_saturated"
    )
    assert explanation.path[0][0] == 1  # flow 2 starts at node 1
    assert explanation.path[-1][1] == 3
    # Path links carry per-state dwell seconds toward the destination.
    assert explanation.condition_dwell
    for states in explanation.condition_dwell.values():
        assert all(seconds >= 0 for seconds in states.values())


def test_narrative_mentions_the_key_facts(figure3_result):
    text = explain_flow(figure3_result, 2).narrative()
    assert "flow 2" in text
    assert "clique" in text
    assert "maxmin" in text
    assert "condition" in text


def test_explain_all_covers_every_flow(figure3_result):
    explanations = explain_all(figure3_result)
    assert [e.flow_id for e in explanations] == sorted(
        figure3_result.flow_rates
    )


def test_explanation_serializes_to_json(figure3_result):
    payload = explain_flow(figure3_result, 1).to_json()
    assert payload["flow_id"] == 1
    assert isinstance(payload["bottleneck_clique"], list)
    assert payload["path"]
    assert isinstance(payload["condition_dwell"], dict)


def test_unknown_flow_raises(figure3_result):
    with pytest.raises(AnalysisError, match="unknown flow"):
        explain_flow(figure3_result, 99)


def test_run_without_reference_cannot_be_explained():
    bare = RunResult(
        scenario="bare",
        protocol="802.11",
        substrate="fluid",
        duration=10.0,
        warmup=3.0,
        seed=1,
        flow_rates={1: 50.0},
        hop_counts={1: 1},
        effective_throughput=50.0,
    )
    with pytest.raises(AnalysisError, match="maxmin_solution"):
        explain_flow(bare, 1)


def test_run_and_explain_validates_scenario_name():
    with pytest.raises(ConfigError, match="unknown scenario"):
        run_and_explain("figure99", 1)


def test_run_and_explain_single_flow():
    explanations = run_and_explain(
        "figure3", 2, substrate="fluid", duration=10.0, seed=1
    )
    assert len(explanations) == 1
    assert explanations[0].flow_id == 2
