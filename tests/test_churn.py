"""Dynamic-workload tests: churn spec parsing, deterministic trace
building, the adversary's phase lock, GMP's dynamic flow lifecycle
(graft / teardown / post-departure audit), and the end-to-end churn
acceptance scenarios (conservation + replay on figure3, resilience
under back-to-back crashes combined with churn)."""

import pytest

from repro.analysis.resilience import min_rate_dip, per_arrival_convergence
from repro.churn import (
    ChurnSpec,
    build_trace,
    parse_churn_spec,
    routable_pairs,
)
from repro.churn.adversary import (
    ARRIVAL_PHASE,
    DEPARTURE_PHASE,
    rank_contending_pairs,
)
from repro.churn.spec import FlowArrival, FlowDeparture, replace
from repro.core.config import GmpConfig
from repro.core.protocol import GmpProtocol
from repro.core.virtual import GrandVirtualNetwork
from repro.errors import ChurnError, ConfigError, ProtocolError
from repro.faults import parse_fault_spec
from repro.flows.flow import Flow, FlowSet
from repro.routing.link_state import link_state_routes
from repro.scenarios.figures import figure3
from repro.scenarios.runner import replay_check, run_scenario
from repro.sim.rng import RngRegistry
from repro.topology.builders import chain_topology

FAST = GmpConfig(period=0.5, additive_increase=4.0)


def chain_routes(nodes=4, flows=None):
    topology = chain_topology(nodes)
    routes = link_state_routes(topology)
    flows = FlowSet(
        flows
        if flows is not None
        else [Flow(flow_id=1, source=0, destination=nodes - 1)]
    )
    return routes, flows


# --- spec parsing ----------------------------------------------------------------


def test_parse_round_trips_through_to_text():
    spec = parse_churn_spec(
        "poisson:rate=0.3,mean_hold=6,hold=exp,max_flows=4,traffic=cbr"
    )
    assert spec.model == "poisson"
    assert spec.rate == pytest.approx(0.3)
    assert spec.mean_hold == pytest.approx(6.0)
    assert spec.hold == "exp"
    assert spec.max_flows == 4
    assert spec.traffic == "cbr"
    assert parse_churn_spec(spec.to_text()) == spec


def test_parse_adversary_round_trips():
    spec = parse_churn_spec("adversary:burst=3,on=2,off=1")
    assert spec.model == "adversary"
    assert (spec.burst, spec.on_periods, spec.off_periods) == (3, 2, 1)
    assert parse_churn_spec(spec.to_text()) == spec


def test_to_text_omits_defaults():
    assert ChurnSpec().to_text() == "poisson"


def test_parse_rejects_malformed_specs():
    for text in (
        "tsunami:rate=1",  # unknown model
        "poisson:rate",  # missing value
        "poisson:flux=1",  # unknown key
        "poisson:rate=fast",  # bad number
        "poisson:rate=0",  # non-positive rate
        "poisson:hold=pareto,alpha=1.0",  # infinite-mean Pareto
        "poisson:start=5,stop=5",  # empty window
        "adversary:burst=0",  # degenerate wave
    ):
        with pytest.raises(ChurnError):
            parse_churn_spec(text)


def test_spec_validates_traffic_model():
    with pytest.raises(ChurnError, match="traffic"):
        ChurnSpec(traffic="telepathy")


# --- trace building --------------------------------------------------------------


def test_routable_pairs_excludes_static_pairs():
    routes, flows = chain_routes(3)
    pairs = routable_pairs(routes, FlowSet([Flow(flow_id=1, source=0, destination=2)]))
    assert (0, 2) not in pairs
    assert (2, 0) in pairs and (0, 1) in pairs


def trace_key(trace):
    return [
        (
            e.at,
            e.flow.flow_id if isinstance(e, FlowArrival) else e.flow_id,
            isinstance(e, FlowDeparture),
        )
        for e in trace.events
    ]


def test_trace_is_a_pure_function_of_the_seed():
    routes, flows = chain_routes()
    spec = ChurnSpec(rate=0.5, mean_hold=5.0, hold="pareto", alpha=1.5)
    first = build_trace(
        spec, routes=routes, flows=flows, duration=60.0, rng=RngRegistry(7)
    )
    second = build_trace(
        spec, routes=routes, flows=flows, duration=60.0, rng=RngRegistry(7)
    )
    third = build_trace(
        spec, routes=routes, flows=flows, duration=60.0, rng=RngRegistry(8)
    )
    assert trace_key(first) == trace_key(second)
    assert trace_key(first) != trace_key(third)


def test_trace_respects_cap_window_and_ordering():
    routes, flows = chain_routes()
    spec = ChurnSpec(rate=3.0, mean_hold=20.0, hold="exp", max_flows=2)
    trace = build_trace(
        spec, routes=routes, flows=flows, duration=30.0, rng=RngRegistry(1)
    )
    assert trace.skipped_at_cap > 0
    assert all(event.at < 30.0 for event in trace.events)
    departures = {d.flow_id: d.at for d in trace.departures()}
    for arrival in trace.arrivals():
        departed = departures.get(arrival.flow.flow_id)
        assert departed is None or departed > arrival.at
    # Churned flow ids start above the static ids.
    assert min(a.flow.flow_id for a in trace.arrivals()) == 2


def test_trace_include_static_retires_scenario_flows():
    routes, flows = chain_routes()
    spec = ChurnSpec(rate=0.2, mean_hold=4.0, hold="exp", include_static=True)
    trace = build_trace(
        spec, routes=routes, flows=flows, duration=100.0, rng=RngRegistry(3)
    )
    assert any(d.flow_id == 1 for d in trace.departures())


def test_trace_needs_a_routable_pair():
    topology = chain_topology(2)
    routes = link_state_routes(topology)
    flows = FlowSet(
        [
            Flow(flow_id=1, source=0, destination=1),
            Flow(flow_id=2, source=1, destination=0),
        ]
    )
    with pytest.raises(ChurnError, match="no routable"):
        build_trace(
            ChurnSpec(), routes=routes, flows=flows, duration=10.0, rng=RngRegistry(1)
        )


# --- the adversary ---------------------------------------------------------------


def test_adversary_waves_are_phase_locked_to_the_period():
    routes, flows = chain_routes(5)
    spec = ChurnSpec(model="adversary", burst=2, on_periods=2, off_periods=2)
    period = 2.0
    trace = build_trace(
        spec, routes=routes, flows=flows, duration=20.0, rng=RngRegistry(1), period=period
    )
    arrival_times = sorted({a.at for a in trace.arrivals()})
    wave_gap = (spec.on_periods + spec.off_periods) * period
    assert arrival_times[0] == pytest.approx(ARRIVAL_PHASE * period)
    assert arrival_times[1] == pytest.approx(arrival_times[0] + wave_gap)
    lifetime = spec.on_periods * period - DEPARTURE_PHASE * period
    for departure in trace.departures():
        arrival = next(
            a for a in trace.arrivals() if a.flow.flow_id == departure.flow_id
        )
        assert departure.at - arrival.at == pytest.approx(lifetime)
    # No randomness: two builds agree even under different seeds.
    again = build_trace(
        spec, routes=routes, flows=flows, duration=20.0, rng=RngRegistry(99), period=period
    )
    assert trace_key(trace) == trace_key(again)


def test_adversary_targets_the_contended_pairs_first():
    routes, flows = chain_routes(5)  # static flow 0 -> 4 covers the whole chain
    ranked = rank_contending_pairs(routes, flows)

    def overlap(pair):
        links = {
            tuple(sorted(link)) for link in routes.path_links(pair[0], pair[1])
        }
        static = {
            tuple(sorted(link)) for link in routes.path_links(0, 4)
        }
        return len(links & static)

    assert overlap(ranked[0]) >= overlap(ranked[-1])
    assert overlap(ranked[0]) > 0


# --- GMP dynamic flow lifecycle --------------------------------------------------


def test_gvn_add_and_remove_flow_is_clean():
    chain = chain_topology(5)
    routes = link_state_routes(chain)
    flows = FlowSet([Flow(flow_id=1, source=0, destination=4)])
    gvn = GrandVirtualNetwork(routes, flows)
    late = Flow(flow_id=2, source=2, destination=4)
    gvn.add_flow(late)
    assert gvn.knows_flow(2)
    assert 2 in gvn.local_flows(2, 4)
    gvn.remove_flow(late)
    assert not gvn.knows_flow(2)
    assert gvn.flow_residue(2) == []
    # Flow 1's structure survives the removal untouched.
    assert gvn.virtual_links(4) == [(0, 1), (1, 2), (2, 3), (3, 4)]


def test_gvn_refcounts_shared_virtual_links():
    chain = chain_topology(4)
    routes = link_state_routes(chain)
    flows = FlowSet(
        [
            Flow(flow_id=1, source=0, destination=3),
            Flow(flow_id=2, source=1, destination=3),
        ]
    )
    gvn = GrandVirtualNetwork(routes, flows)
    gvn.remove_flow(flows.get(2))
    # Links (1,2) and (2,3) are still carried by flow 1.
    assert gvn.virtual_links(3) == [(0, 1), (1, 2), (2, 3)]
    assert gvn.flow_residue(2) == []


def gmp_fixture():
    from repro.mac.fluid import FluidMac
    from repro.sim.kernel import Simulator

    topology = chain_topology(4)
    routes = link_state_routes(topology)
    flows = FlowSet([Flow(flow_id=1, source=0, destination=3)])
    sim = Simulator()
    mac = FluidMac(sim, topology, capacity_pps=100.0)
    protocol = GmpProtocol(sim, topology, routes, flows, mac, stacks={})
    return sim, flows, protocol


def test_gmp_add_then_remove_flow_audits_clean():
    from repro.flows.traffic import CbrSource

    sim, flows, protocol = gmp_fixture()
    protocol.register_source(1, CbrSource(sim, flows.get(1), lambda p: True))
    late = Flow(flow_id=2, source=1, destination=3)
    protocol.add_flow(late, CbrSource(sim, late, lambda p: True))
    assert 2 in flows
    protocol.remove_flow(2)
    assert 2 not in flows
    assert protocol.departure_audit(2) == []
    # The history keeps answering for the archived flow.
    assert protocol.limit_history(2)[-1] is None


def test_gmp_remove_unknown_flow_raises():
    _sim, _flows, protocol = gmp_fixture()
    with pytest.raises(ProtocolError, match="unknown flow"):
        protocol.remove_flow(99)


# --- runner integration ----------------------------------------------------------


def churn_run(**overrides):
    kwargs = dict(
        protocol="gmp",
        substrate="fluid",
        duration=40.0,
        seed=3,
        gmp_config=FAST,
        churn=ChurnSpec(
            rate=0.25, mean_hold=6.0, hold="exp", max_flows=3, traffic="cbr"
        ),
    )
    kwargs.update(overrides)
    return run_scenario(figure3(), **kwargs)


def test_churn_run_reports_and_conserves():
    scenario = figure3()
    static_count = len(scenario.flows)
    result = run_scenario(
        scenario,
        protocol="gmp",
        substrate="fluid",
        duration=40.0,
        seed=3,
        gmp_config=FAST,
        churn=ChurnSpec(
            rate=0.25, mean_hold=6.0, hold="exp", max_flows=3, traffic="cbr"
        ),
    )
    report = result.extras["churn"]
    assert report.arrivals > 0
    assert report.clean  # honest departures leave zero GMP state behind
    assert result.extras["invariants"].violations() == []
    # The caller's scenario object is not consumed by the churn run.
    assert len(scenario.flows) == static_count
    # Every flow that ever existed is measured and sampled.
    for flow_id, (arrival, departure) in result.flow_lifetimes.items():
        assert flow_id in result.flow_rates
        assert 0.0 <= arrival < departure <= result.duration
    lengths = {len(series) for series in result.interval_rates.values()}
    assert lengths == {len(result.interval_bounds)}
    # Per-arrival convergence is computed for churned arrivals only.
    convergence = result.extras["per_arrival_convergence"]
    assert set(convergence) == {
        fid for fid, (start, _) in result.flow_lifetimes.items() if start > 0.0
    }


def test_churn_run_replays_bit_for_bit():
    report, _first, _second = replay_check(
        figure3(),
        protocol="gmp",
        substrate="fluid",
        duration=20.0,
        seed=5,
        gmp_config=FAST,
        churn=ChurnSpec(rate=0.3, mean_hold=5.0, hold="exp", traffic="cbr"),
    )
    assert report.matched, report.render()


def test_planted_leak_is_caught_by_the_departure_audit():
    leaky = replace(
        ChurnSpec(rate=0.4, mean_hold=4.0, hold="exp", traffic="cbr"),
        leak_departed_state=True,
    )
    result = churn_run(churn=leaky)
    report = result.extras["churn"]
    assert report.departures > 0
    assert not report.clean
    messages = [line for lines in report.residues.values() for line in lines]
    assert any("still" in line for line in messages)


def test_churn_rejects_the_2pp_baseline():
    with pytest.raises(ConfigError, match="churn"):
        churn_run(protocol="2pp")


def test_adversary_churn_runs_clean_end_to_end():
    result = churn_run(
        churn=ChurnSpec(
            model="adversary", burst=2, on_periods=2, off_periods=2, traffic="cbr"
        ),
        duration=30.0,
    )
    report = result.extras["churn"]
    assert report.arrivals > 0
    assert report.clean
    assert result.extras["invariants"].violations() == []


# --- resilience under churn + back-to-back faults --------------------------------


def test_back_to_back_crashes_with_churn_stay_conservative():
    """Two crash/recover cycles of relay node 2 while flows churn: the
    run must stay packet-conservative, tear every departure down
    cleanly, and still produce per-arrival convergence data."""
    faults = parse_fault_spec("crash:2@10;recover:2@16;crash:2@24;recover:2@30")
    result = churn_run(duration=48.0, faults=faults, seed=7)
    report = result.extras["churn"]
    assert result.extras["invariants"].violations() == []
    assert report.clean
    fault_log = [text for _when, text in result.extras["faults"]]
    assert sum("crash" in text for text in fault_log) == 2
    assert sum("recover" in text for text in fault_log) == 2
    # Resilience metrics stay computable on the static flows' series.
    static_series = {
        fid: series
        for fid, series in result.interval_rates.items()
        if result.flow_lifetimes.get(fid, (0.0, 0.0))[0] == 0.0
    }
    dip = min_rate_dip(
        static_series,
        result.rate_interval,
        start=11.0,
        end=16.0,
        bounds=result.interval_bounds,
    )
    assert dip < 5.0  # a flow through the dead relay went silent
    convergence = result.extras["per_arrival_convergence"]
    assert isinstance(convergence, dict)


# --- per-arrival convergence (unit) ----------------------------------------------


def test_per_arrival_convergence_measures_from_arrival():
    rates = {5: [0.0, 0.0, 0.0, 60.0, 90.0, 100.0, 98.0, 101.0, 99.0, 100.0]}
    settled = per_arrival_convergence(
        rates, 1.0, lifetimes={5: (3.0, 10.0)}
    )
    # Level = mean of the last ceil(0.25 * 7) = 2 in-life samples
    # (99.5); the first three consecutive in-band samples are windows
    # 4..6, so the flow settled at t=5 — two seconds after arriving.
    assert settled == {5: pytest.approx(2.0)}


def test_per_arrival_convergence_none_for_short_or_dead_flows():
    rates = {
        1: [0.0] * 10,
        2: [0.0] * 8 + [50.0, 50.0],
    }
    settled = per_arrival_convergence(
        rates, 1.0, lifetimes={1: (0.0, 10.0), 2: (8.0, 10.0)}
    )
    assert settled == {1: None, 2: None}  # never got going / too short


def test_per_arrival_convergence_validates_inputs():
    from repro.errors import AnalysisError

    with pytest.raises(AnalysisError):
        per_arrival_convergence({}, 1.0, lifetimes={1: (0.0, 5.0)}, hold=0)
    with pytest.raises(AnalysisError, match="no rate series"):
        per_arrival_convergence(
            {2: [1.0, 2.0]}, 1.0, lifetimes={1: (0.0, 2.0)}
        )
