"""PAR001: locals handed across the worker boundary."""


def run_lambda(pool, points):
    return pool.map(lambda point: point * 2, points)


def run_local(pool, points):
    def simulate(point):
        return point * 2

    return pool.map(simulate, points)
