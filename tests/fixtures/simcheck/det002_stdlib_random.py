"""Fixture: DET002 — stdlib random import."""

import random  # line 3: DET002


def draw() -> float:
    return random.random()  # line 7: DET002 (call)
