"""Fixture: LAY003 — telemetry code scheduling a simulation event."""
# simcheck: module repro.telemetry.bad_scheduler


def flush_later(sim, flush) -> None:
    sim.call_later(1.0, flush)  # line 6: LAY003
