"""Fixture: DET005 — iteration over a set expression."""


def spread(active, alloc) -> list:
    out = []
    for link in active - set(alloc):  # line 6: DET005
        out.append(link)
    return out
