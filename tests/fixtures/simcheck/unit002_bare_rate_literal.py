"""UNIT002: bare large literals passed to rate-dimensioned parameters."""


def configure(data_rate, label):
    return (data_rate, label)


def scenario():
    keyword = configure(data_rate=11000000.0, label="phy")
    positional = configure(2000000, "basic")
    return (keyword, positional)
