"""Fixture: LAY001 — a lower layer importing an upper layer."""
# simcheck: module repro.routing.bad_import

from repro.scenarios.runner import run_scenario  # line 4: LAY001

__all__ = ["run_scenario"]
