"""PERF002: loop-invariant recomputation inside a hot loop."""


def build_cliques(graph):
    return [graph]


class Planner:
    def __init__(self, sim, graph, flows):
        self.sim = sim
        self.graph = graph
        self.flows = flows
        self.sim.every(1.0, self._round)

    def _round(self):
        totals = []
        for flow in self.flows:
            cliques = build_cliques(self.graph)
            totals.append(len(cliques) + flow)
        return totals
