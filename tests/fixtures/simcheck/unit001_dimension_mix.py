"""UNIT001: adding seconds to bits/second."""

from repro.units import MBPS, SECONDS


def window():
    interval = 2 * SECONDS
    speed = 11 * MBPS
    return interval + speed
