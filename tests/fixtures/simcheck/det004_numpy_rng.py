"""Fixture: DET004 — numpy RNG constructed outside sim/rng.py."""

import numpy as np


def build(seed: int):
    return np.random.default_rng(seed)  # line 7: DET004
