"""Fixture: PAS002 — mutating method call inside an instrument argument."""


def drain(counter, queue) -> None:
    counter.inc(queue.pop())  # line 5: PAS002
