"""Fixture: DET006 — sorting keyed on id()/repr()."""


def order(instruments) -> list:
    return sorted(instruments, key=repr)  # line 5: DET006
