"""Fixture: PAS001 — walrus assignment inside an instrument call."""


def sample(telemetry, queue) -> None:
    telemetry.event(0.0, "buffer.len", n=(depth := len(queue)))  # line 5: PAS001
    print(depth)
