"""Fixture: DET003 — ambient entropy source."""

import os


def token() -> bytes:
    return os.urandom(16)  # line 7: DET003
