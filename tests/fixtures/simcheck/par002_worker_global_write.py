"""PAR002: worker-side writes to module-level state."""

RESULTS = []
TOTAL = 0


def simulate(point):
    global TOTAL
    TOTAL = TOTAL + point
    RESULTS.append(point)
    return point


def run(pool, points):
    return pool.map(simulate, points)
