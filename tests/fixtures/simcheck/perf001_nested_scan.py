"""PERF001: inner loop rescans a collection independent of the outer."""


class Monitor:
    def __init__(self, sim, nodes, links):
        self.sim = sim
        self.nodes = nodes
        self.links = links
        self.sim.every(1.0, self._round)

    def _round(self):
        total = 0
        for node in self.nodes:
            for link in self.links:
                total += link[0] + node
        return total
