"""PERF003: container allocated inside nested collection loops."""


class Auditor:
    def __init__(self, sim, nodes):
        self.sim = sim
        self.nodes = nodes
        self.sim.every(1.0, self._tick)

    def _tick(self):
        busy = 0
        for node in self.nodes:
            for neighbor in node.peers:
                scratch = []
                scratch.append(neighbor)
                busy += len(scratch)
        return busy
