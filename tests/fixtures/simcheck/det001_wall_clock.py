"""Fixture: DET001 — wall-clock read in simulation code."""

import time as _time


def handler() -> float:
    return _time.monotonic()  # line 7: DET001
