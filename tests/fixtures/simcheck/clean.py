"""Fixture: patterns simcheck must NOT flag, plus suppression pragmas."""
# simcheck: module repro.telemetry.clean

import time as _time  # importing time is fine; calling it is not


def ordered(active, alloc) -> list:
    # sorted() over a set expression is the sanctioned fix for DET005.
    return [link for link in sorted(active - set(alloc))]


def membership(alloc, link) -> bool:
    # Building/consulting sets without iterating them is fine.
    return link in {(_a, _b) for _a, _b in alloc}


def suppressed() -> float:
    return _time.monotonic()  # simcheck: allow[DET001] fixture suppression


def semantic_sort(instruments) -> list:
    return sorted(instruments, key=lambda i: (i.kind, i.name))
