"""Fixture: DET007 — float accumulation over a set expression."""


def total(rates) -> float:
    return sum({round(rate, 3) for rate in rates})  # line 5: DET007
