"""Fixture: LAY002 — telemetry importing the simulation kernel."""
# simcheck: module repro.telemetry.bad_kernel_import

from repro.sim.kernel import Simulator  # line 4: LAY002

__all__ = ["Simulator"]
