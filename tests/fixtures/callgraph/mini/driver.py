# simcheck: module mini.driver
from mini.metrics import measure


class Base:
    def poll(self):
        return 0


class Child(Base):
    pass


class Driver:
    def __init__(self, sim):
        self.sim = sim
        self.child = Child()
        self.sim.every(1.0, self._tick)

    def _tick(self):
        self.child.poll()
        return measure(3)
