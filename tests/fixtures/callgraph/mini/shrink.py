# simcheck: module mini.shrink


def shrink(values):
    return values[:1]
