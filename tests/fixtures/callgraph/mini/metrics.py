# simcheck: module mini.metrics


def measure(depth):
    return helper(depth)


def helper(depth):
    if depth <= 0:
        return 0
    return measure(depth - 1)
