# simcheck: module mini.sweeper
from mini.metrics import measure


def simulate(point):
    return measure(point)


def run_points(pool, points):
    return pool.map(simulate, points)
