# simcheck: module mini.__init__
from mini.driver import Driver
from mini.shrink import shrink

__all__ = ["Driver", "shrink"]
